#include "datasets/export.hpp"

#include "datasets/schema.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "telemetry/aggregator.hpp"
#include "util/text_table.hpp"

namespace exawatt::datasets {

std::size_t export_jobs(const std::string& path,
                        const std::vector<workload::Job>& jobs) {
  util::CsvWriter csv(path,
                      {"allocation_id", "class", "node_count", "project",
                       "domain", "app", "submit", "begin_time", "end_time",
                       "key", "node_ranges"});
  EXA_CHECK(csv.ok(), "cannot open " + path);
  std::size_t rows = 0;
  for (const auto& j : jobs) {
    if (j.start < 0) continue;  // only completed allocations, as the log
    std::vector<std::pair<std::int32_t, int>> ranges;
    ranges.reserve(j.nodes.size());
    for (const auto& r : j.nodes) ranges.emplace_back(r.first, r.count);
    csv.add_row({std::to_string(j.id), std::to_string(j.sched_class),
                 std::to_string(j.node_count), std::to_string(j.project),
                 std::to_string(j.domain), std::to_string(j.app),
                 std::to_string(j.submit), std::to_string(j.start),
                 std::to_string(j.end), std::to_string(j.key),
                 encode_ranges(ranges)});
    ++rows;
  }
  return rows;
}

std::size_t export_xid_log(const std::string& path,
                           const std::vector<failures::GpuFailureEvent>& log) {
  util::CsvWriter csv(path,
                      {"timestamp", "xid", "xid_name", "node", "slot",
                       "allocation_id", "project", "domain", "temp_c",
                       "z_score"});
  EXA_CHECK(csv.ok(), "cannot open " + path);
  for (const auto& ev : log) {
    csv.add_row({std::to_string(ev.time),
                 std::to_string(static_cast<int>(ev.type)),
                 failures::xid_name(ev.type), std::to_string(ev.node),
                 std::to_string(ev.slot), std::to_string(ev.job),
                 std::to_string(ev.project), std::to_string(ev.domain),
                 util::fmt_double(ev.temp_c, 3),
                 util::fmt_double(ev.z_score, 4)});
  }
  return log.size();
}

std::size_t export_cluster_series(const std::string& path,
                                  const ts::Frame& cluster) {
  EXA_CHECK(cluster.has("input_power_w"), "cluster frame missing power");
  util::CsvWriter csv(path, {"timestamp", "sum_inp", "cpu_power_w",
                             "gpu_power_w", "alloc_nodes"});
  EXA_CHECK(csv.ok(), "cannot open " + path);
  for (std::size_t i = 0; i < cluster.rows(); ++i) {
    csv.add_row({static_cast<double>(cluster.time_at(i)),
                 cluster.at("input_power_w")[i], cluster.at("cpu_power_w")[i],
                 cluster.at("gpu_power_w")[i], cluster.at("alloc_nodes")[i]});
  }
  return cluster.rows();
}

std::size_t export_job_power(
    const std::string& path,
    const std::vector<power::JobPowerSummary>& summaries) {
  util::CsvWriter csv(
      path, {"allocation_id", "class", "num_nodes", "mean_sum_inp",
             "max_sum_inp", "energy", "gpu_energy", "begin_runtime_s",
             "job_domain", "account"});
  EXA_CHECK(csv.ok(), "cannot open " + path);
  for (const auto& s : summaries) {
    // GPU share of energy approximated from the component means.
    const double gpu_energy =
        s.mean_power_w > 0.0
            ? s.energy_j * (s.mean_gpu_node_w * s.node_count) /
                  (s.mean_power_w * 0.94)
            : 0.0;
    csv.add_row({std::to_string(s.id), std::to_string(s.sched_class),
                 std::to_string(s.node_count),
                 util::fmt_double(s.mean_power_w, 3),
                 util::fmt_double(s.max_power_w, 3),
                 util::fmt_double(s.energy_j, 3),
                 util::fmt_double(gpu_energy, 3),
                 util::fmt_double(s.runtime_s, 1), std::to_string(s.domain),
                 std::to_string(s.project)});
  }
  return summaries.size();
}


std::size_t export_node_aggregates(const std::string& path,
                                   const telemetry::Archive& archive,
                                   const std::vector<machine::NodeId>& nodes,
                                   const std::vector<int>& channels,
                                   util::TimeRange window,
                                   util::TimeSec agg_window) {
  util::CsvWriter csv(path, {"timestamp", "node", "channel", "count", "min",
                             "max", "mean", "std"});
  EXA_CHECK(csv.ok(), "cannot open " + path);
  std::size_t rows = 0;
  for (machine::NodeId n : nodes) {
    for (int ch : channels) {
      const auto stat = telemetry::aggregate_metric(
          archive, telemetry::metric_id(n, ch), window, agg_window);
      for (std::size_t w = 0; w < stat.size(); ++w) {
        if (stat[w].count == 0) continue;  // telemetry hole
        csv.add_row({static_cast<double>(stat.time_at(w)),
                     static_cast<double>(n), static_cast<double>(ch),
                     static_cast<double>(stat[w].count), stat[w].min,
                     stat[w].max, stat[w].mean, stat[w].std});
        ++rows;
      }
    }
  }
  return rows;
}

std::size_t export_archive_store(const std::string& dir,
                                 const telemetry::Archive& archive,
                                 store::StoreOptions options) {
  store::Store out = store::Store::open(dir, options);
  std::size_t events = 0;
  std::vector<telemetry::MetricEvent> batch;
  batch.reserve(options.segment_events);
  archive.scan([&](const telemetry::MetricEvent& ev) {
    // Flush at day boundaries so the store's day-partitions mirror the
    // archive's, not just its contents.
    if (!batch.empty() &&
        (batch.size() >= options.segment_events ||
         ev.t / util::kDay != batch.front().t / util::kDay)) {
      out.append(std::move(batch));
      batch.clear();
    }
    batch.push_back(ev);
    ++events;
  });
  out.append(std::move(batch));
  out.flush();
  return events;
}

}  // namespace exawatt::datasets

