#include "datasets/schema.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace exawatt::datasets {

std::string encode_ranges(
    const std::vector<std::pair<std::int32_t, int>>& ranges) {
  std::string out;
  char buf[32];
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s%d:%d", i ? ";" : "", ranges[i].first,
                  ranges[i].second);
    out += buf;
  }
  return out;
}

std::vector<std::pair<std::int32_t, int>> decode_ranges(
    const std::string& encoded) {
  std::vector<std::pair<std::int32_t, int>> out;
  std::size_t pos = 0;
  while (pos < encoded.size()) {
    const std::size_t colon = encoded.find(':', pos);
    EXA_CHECK(colon != std::string::npos, "malformed range list");
    std::size_t semi = encoded.find(';', colon);
    if (semi == std::string::npos) semi = encoded.size();
    const auto first = static_cast<std::int32_t>(
        std::strtol(encoded.substr(pos, colon - pos).c_str(), nullptr, 10));
    const auto count = static_cast<int>(std::strtol(
        encoded.substr(colon + 1, semi - colon - 1).c_str(), nullptr, 10));
    EXA_CHECK(count > 0, "range count must be positive");
    out.emplace_back(first, count);
    pos = semi + 1;
  }
  return out;
}

}  // namespace exawatt::datasets
