#pragma once

#include <string>
#include <vector>

#include "failures/generator.hpp"
#include "ts/series.hpp"
#include "workload/job.hpp"

namespace exawatt::datasets {

/// Re-import the exported datasets so analyses can run from files — the
/// decoupling a production deployment needs (collect on the machine,
/// analyze elsewhere), and the hook for loading *real* telemetry exports.

/// Dataset C+D -> scheduled jobs (start/end/node ranges populated).
[[nodiscard]] std::vector<workload::Job> import_jobs(const std::string& path);

/// Dataset E -> failure events.
[[nodiscard]] std::vector<failures::GpuFailureEvent> import_xid_log(
    const std::string& path);

/// Dataset 1 -> the cluster input-power series (regular grid inferred
/// from the first two timestamps).
[[nodiscard]] ts::Series import_cluster_power(const std::string& path);

}  // namespace exawatt::datasets
