#include "datasets/import.hpp"

#include "datasets/schema.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace exawatt::datasets {

std::vector<workload::Job> import_jobs(const std::string& path) {
  util::CsvReader csv(path);
  EXA_CHECK(csv.ok(), "cannot read " + path);
  const std::size_t c_id = csv.column("allocation_id");
  const std::size_t c_class = csv.column("class");
  const std::size_t c_nodes = csv.column("node_count");
  const std::size_t c_project = csv.column("project");
  const std::size_t c_domain = csv.column("domain");
  const std::size_t c_app = csv.column("app");
  const std::size_t c_submit = csv.column("submit");
  const std::size_t c_begin = csv.column("begin_time");
  const std::size_t c_end = csv.column("end_time");
  const std::size_t c_key = csv.column("key");
  const std::size_t c_ranges = csv.column("node_ranges");

  std::vector<workload::Job> jobs;
  jobs.reserve(csv.rows());
  for (std::size_t r = 0; r < csv.rows(); ++r) {
    workload::Job j;
    j.id = static_cast<workload::JobId>(csv.number(r, c_id));
    j.sched_class = static_cast<int>(csv.number(r, c_class));
    j.node_count = static_cast<int>(csv.number(r, c_nodes));
    j.project = static_cast<std::uint32_t>(csv.number(r, c_project));
    j.domain = static_cast<std::uint16_t>(csv.number(r, c_domain));
    j.app = static_cast<std::uint16_t>(csv.number(r, c_app));
    j.submit = static_cast<util::TimeSec>(csv.number(r, c_submit));
    j.start = static_cast<util::TimeSec>(csv.number(r, c_begin));
    j.end = static_cast<util::TimeSec>(csv.number(r, c_end));
    // strtod loses precision on 64-bit keys; parse the text directly.
    j.key = std::strtoull(csv.text(r, c_key).c_str(), nullptr, 10);
    j.natural_runtime = j.end - j.start;
    j.requested_walltime = j.natural_runtime;
    for (const auto& [first, count] : decode_ranges(csv.text(r, c_ranges))) {
      j.nodes.push_back({first, count});
    }
    jobs.push_back(std::move(j));
  }
  return jobs;
}

std::vector<failures::GpuFailureEvent> import_xid_log(
    const std::string& path) {
  util::CsvReader csv(path);
  EXA_CHECK(csv.ok(), "cannot read " + path);
  const std::size_t c_t = csv.column("timestamp");
  const std::size_t c_xid = csv.column("xid");
  const std::size_t c_node = csv.column("node");
  const std::size_t c_slot = csv.column("slot");
  const std::size_t c_job = csv.column("allocation_id");
  const std::size_t c_project = csv.column("project");
  const std::size_t c_domain = csv.column("domain");
  const std::size_t c_temp = csv.column("temp_c");
  const std::size_t c_z = csv.column("z_score");

  std::vector<failures::GpuFailureEvent> log;
  log.reserve(csv.rows());
  for (std::size_t r = 0; r < csv.rows(); ++r) {
    failures::GpuFailureEvent ev;
    ev.time = static_cast<util::TimeSec>(csv.number(r, c_t));
    const int type = static_cast<int>(csv.number(r, c_xid));
    EXA_CHECK(type >= 0 &&
                  type < static_cast<int>(failures::kXidTypeCount),
              "bad XID ordinal in " + path);
    ev.type = static_cast<failures::XidType>(type);
    ev.node = static_cast<machine::NodeId>(csv.number(r, c_node));
    ev.slot = static_cast<int>(csv.number(r, c_slot));
    ev.job = static_cast<workload::JobId>(csv.number(r, c_job));
    ev.project = static_cast<std::uint32_t>(csv.number(r, c_project));
    ev.domain = static_cast<std::uint16_t>(csv.number(r, c_domain));
    ev.temp_c = csv.number(r, c_temp);
    ev.z_score = csv.number(r, c_z);
    log.push_back(ev);
  }
  return log;
}

ts::Series import_cluster_power(const std::string& path) {
  util::CsvReader csv(path);
  EXA_CHECK(csv.ok(), "cannot read " + path);
  EXA_CHECK(csv.rows() >= 2, "cluster series needs at least two rows");
  const std::size_t c_t = csv.column("timestamp");
  const std::size_t c_p = csv.column("sum_inp");
  const auto start = static_cast<util::TimeSec>(csv.number(0, c_t));
  const auto dt = static_cast<util::TimeSec>(csv.number(1, c_t)) - start;
  EXA_CHECK(dt > 0, "cluster series timestamps must increase");
  std::vector<double> values(csv.rows());
  for (std::size_t r = 0; r < csv.rows(); ++r) {
    EXA_CHECK(static_cast<util::TimeSec>(csv.number(r, c_t)) ==
                  start + dt * static_cast<util::TimeSec>(r),
              "cluster series grid must be regular");
    values[r] = csv.number(r, c_p);
  }
  return ts::Series(start, dt, std::move(values));
}

}  // namespace exawatt::datasets
