#pragma once

#include <string>
#include <vector>

#include "failures/generator.hpp"
#include "store/store.hpp"
#include "telemetry/archive.hpp"
#include "power/job_power.hpp"
#include "ts/frame.hpp"
#include "workload/job.hpp"

namespace exawatt::datasets {

/// Dataset C+D: the job allocation history (one row per job; Dataset D's
/// per-node allocation is carried as a compact range list). Returns rows
/// written.
std::size_t export_jobs(const std::string& path,
                        const std::vector<workload::Job>& jobs);

/// Dataset E: the GPU XID error log.
std::size_t export_xid_log(const std::string& path,
                           const std::vector<failures::GpuFailureEvent>& log);

/// Datasets 1+2: cluster power / component time series from a cluster
/// frame (input_power_w, cpu_power_w, gpu_power_w, alloc_nodes columns).
std::size_t export_cluster_series(const std::string& path,
                                  const ts::Frame& cluster);

/// Datasets 5+7: job-level power & energy summaries.
std::size_t export_job_power(
    const std::string& path,
    const std::vector<power::JobPowerSummary>& summaries);

/// Dataset 0: per-node 10-second aggregates (count/min/max/mean/std) of
/// selected channels, read back from a telemetry archive — the paper's
/// foundational preprocessed dataset. One row per (node, channel,
/// window); empty windows (telemetry holes) are skipped.
std::size_t export_node_aggregates(
    const std::string& path, const telemetry::Archive& archive,
    const std::vector<machine::NodeId>& nodes,
    const std::vector<int>& channels, util::TimeRange window,
    util::TimeSec agg_window = 10);

/// Dataset A at full 1 Hz fidelity: drain an in-memory archive into a
/// crash-safe columnar store at `dir` (sealed segments + manifest replace
/// the CSV round-trip; ~50× smaller and directly re-queryable). Returns
/// events written.
std::size_t export_archive_store(const std::string& dir,
                                 const telemetry::Archive& archive,
                                 store::StoreOptions options = {});

}  // namespace exawatt::datasets
