#include "power/power_aware_scheduler.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "power/component.hpp"
#include "power/job_power.hpp"
#include "util/check.hpp"
#include "workload/free_list.hpp"

namespace exawatt::power {

namespace {
struct Release {
  util::TimeSec end;
  std::size_t job;
  bool operator>(const Release& o) const { return end > o.end; }
};
}  // namespace

PowerAwareScheduler::PowerAwareScheduler(machine::MachineScale scale,
                                         PowerAwareOptions options)
    : scale_(scale), options_(options) {
  EXA_CHECK(scale_.nodes > 0, "scheduler needs a machine");
}

PowerAwareStats PowerAwareScheduler::run(std::vector<workload::Job>& jobs,
                                         util::TimeSec horizon) {
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXA_CHECK(jobs[i - 1].submit <= jobs[i].submit,
              "jobs must be sorted by submit time");
  }
  PowerAwareStats stats;
  workload::FreeList free_list(scale_.nodes);
  std::priority_queue<Release, std::vector<Release>, std::greater<>> running;
  std::deque<std::size_t> pending;
  double total_wait = 0.0;
  double busy_node_seconds = 0.0;
  const util::TimeSec sim_begin = jobs.empty() ? 0 : jobs.front().submit;

  // Power accounting: idle floor for the whole machine, plus the delta
  // between each running job's estimated peak and its nodes' idle draw.
  const double idle_node_w = node_input_power_w({});
  const double idle_floor_w = idle_node_w * static_cast<double>(scale_.nodes);
  double committed_w = idle_floor_w;
  const bool budgeted = options_.cluster_cap_w > 0.0;

  // Per-job peak estimates (computed once; jobs vector is stable here).
  std::vector<double> peak_delta(jobs.size(), 0.0);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    peak_delta[i] = estimated_peak_power_w(jobs[i]) -
                    idle_node_w * static_cast<double>(jobs[i].node_count);
    if (peak_delta[i] < 0.0) peak_delta[i] = 0.0;
  }

  auto fits_budget = [&](std::size_t idx) {
    if (!budgeted) return true;
    return committed_w + peak_delta[idx] <= options_.cluster_cap_w;
  };

  auto start_job = [&](std::size_t idx, util::TimeSec now) {
    workload::Job& j = jobs[idx];
    j.nodes = free_list.allocate(j.node_count);
    j.start = now;
    const util::TimeSec run =
        std::min(j.natural_runtime, j.requested_walltime);
    j.end = std::min(now + run, horizon);
    running.push({j.end, idx});
    ++stats.base.scheduled;
    total_wait += static_cast<double>(now - j.submit);
    busy_node_seconds +=
        static_cast<double>(j.node_count) * static_cast<double>(j.end - now);
    committed_w += peak_delta[idx];
    stats.peak_committed_w = std::max(stats.peak_committed_w, committed_w);
  };

  auto try_schedule = [&](util::TimeSec now) {
    while (!pending.empty()) {
      const std::size_t head = pending.front();
      const bool head_fits_nodes =
          jobs[head].node_count <= free_list.free_nodes();
      const bool head_fits_power = !options_.strict || fits_budget(head);
      if (head_fits_nodes && head_fits_power) {
        pending.pop_front();
        start_job(head, now);
        continue;
      }
      if (head_fits_nodes && !head_fits_power) ++stats.power_blocked;

      // Shadow reservation for the head (node dimension only; the power
      // dimension frees as jobs end, modelled by the same release walk).
      util::TimeSec shadow = horizon;
      int extra_at_shadow = 0;
      {
        auto copy = running;
        int avail = free_list.free_nodes();
        double power_avail =
            budgeted ? options_.cluster_cap_w - committed_w : 1e18;
        while (!copy.empty()) {
          const Release r = copy.top();
          copy.pop();
          avail += jobs[r.job].node_count;
          power_avail += peak_delta[r.job];
          if (avail >= jobs[head].node_count &&
              (!options_.strict || power_avail >= peak_delta[head])) {
            shadow = r.end;
            extra_at_shadow = avail - jobs[head].node_count;
            break;
          }
        }
      }
      int spare_now = free_list.free_nodes();
      int reserved_extra = extra_at_shadow;
      std::size_t scanned = 0;
      for (auto it = pending.begin() + 1;
           it != pending.end() && scanned < 256 && spare_now > 0; ++scanned) {
        workload::Job& j = jobs[*it];
        const std::size_t idx = *it;
        const bool fits_now = j.node_count <= spare_now;
        const bool ends_before_shadow =
            now + j.requested_walltime <= shadow;
        const bool within_spare = j.node_count <= reserved_extra;
        const bool power_ok = fits_budget(idx);
        if (fits_now && power_ok && (ends_before_shadow || within_spare)) {
          it = pending.erase(it);
          start_job(idx, now);
          ++stats.base.backfilled;
          spare_now = free_list.free_nodes();
          if (!ends_before_shadow) reserved_extra -= jobs[idx].node_count;
        } else {
          if (fits_now && !power_ok) ++stats.power_blocked;
          ++it;
        }
      }
      break;
    }
  };

  auto drain_until = [&](util::TimeSec t) {
    while (!running.empty() && running.top().end <= t) {
      const Release r = running.top();
      running.pop();
      free_list.release(jobs[r.job].nodes);
      committed_w -= peak_delta[r.job];
      if (r.end < horizon) try_schedule(r.end);
    }
  };

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    drain_until(jobs[i].submit);
    pending.push_back(i);
    stats.base.max_queue_depth =
        std::max(stats.base.max_queue_depth, pending.size());
    try_schedule(jobs[i].submit);
  }
  drain_until(horizon);

  stats.base.unscheduled = pending.size();
  for (std::size_t idx : pending) {
    jobs[idx].start = -1;
    jobs[idx].end = -1;
  }
  if (stats.base.scheduled > 0) {
    stats.base.mean_wait_s =
        total_wait / static_cast<double>(stats.base.scheduled);
  }
  const double capacity = static_cast<double>(scale_.nodes) *
                          static_cast<double>(horizon - sim_begin);
  if (capacity > 0.0) stats.base.utilization = busy_node_seconds / capacity;
  return stats;
}

}  // namespace exawatt::power
