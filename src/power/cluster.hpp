#pragma once

#include <vector>

#include "machine/spec.hpp"
#include "ts/frame.hpp"
#include "workload/job.hpp"

namespace exawatt::power {

/// Options for the job-centric cluster power roll-up (Datasets 1-2).
struct ClusterSeriesOptions {
  util::TimeSec dt = 10;  ///< window width (10 s for short-range studies,
                          ///< 600 s for year-long trends)
  int subsamples = 1;     ///< app-model evaluations averaged per window
};

/// Cluster-level power time series computed directly from the scheduled
/// job list — the fast path that makes year-scale sweeps tractable
/// (DESIGN.md §4). Returned frame columns:
///   input_power_w  total wall power of all nodes (allocated + idle)
///   cpu_power_w    total CPU DC power
///   gpu_power_w    total GPU DC power
///   alloc_nodes    nodes allocated to running jobs
[[nodiscard]] ts::Frame cluster_power_frame(
    const std::vector<workload::Job>& jobs, machine::MachineScale scale,
    util::TimeRange range, ClusterSeriesOptions options = {});

}  // namespace exawatt::power
