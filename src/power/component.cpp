#include "power/component.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace exawatt::power {

using machine::SummitSpec;

double gpu_power_w(double util) {
  util = std::clamp(util, 0.0, 1.0);
  return SummitSpec::kGpuIdleW +
         (SummitSpec::kGpuTdpW - SummitSpec::kGpuIdleW) * util;
}

double cpu_power_w(double util) {
  util = std::clamp(util, 0.0, 1.0);
  return SummitSpec::kCpuIdleW +
         (SummitSpec::kCpuTdpW - SummitSpec::kCpuIdleW) * util;
}

double input_power_w(double dc_w) {
  return dc_w / SummitSpec::kPsuEfficiency;
}

double node_cpu_power_w(const workload::Utilization& u) {
  return SummitSpec::kCpusPerNode * cpu_power_w(u.cpu);
}

double node_gpu_power_w(const workload::Utilization& u) {
  return SummitSpec::kGpusPerNode * gpu_power_w(u.gpu);
}

double node_input_power_w(const workload::Utilization& u) {
  const double dc =
      SummitSpec::kNodeOverheadW + node_cpu_power_w(u) + node_gpu_power_w(u);
  return input_power_w(dc);
}

FleetVariability::FleetVariability(machine::MachineScale scale,
                                   std::uint64_t seed)
    : scale_(scale) {
  EXA_CHECK(scale_.nodes > 0, "fleet needs nodes");
  const auto nodes = static_cast<std::size_t>(scale_.nodes);
  gpu_factor_.resize(nodes * SummitSpec::kGpusPerNode);
  cpu_factor_.resize(nodes * SummitSpec::kCpusPerNode);
  util::Rng master(seed);
  for (std::size_t n = 0; n < nodes; ++n) {
    util::Rng rng = master.substream(0x90eaULL, n);
    for (int g = 0; g < SummitSpec::kGpusPerNode; ++g) {
      gpu_factor_[n * SummitSpec::kGpusPerNode + static_cast<std::size_t>(g)] =
          rng.lognormal(0.0, 0.05);
    }
    for (int c = 0; c < SummitSpec::kCpusPerNode; ++c) {
      cpu_factor_[n * SummitSpec::kCpusPerNode + static_cast<std::size_t>(c)] =
          rng.lognormal(0.0, 0.04);
    }
  }
}

double FleetVariability::gpu_power_factor(machine::NodeId node,
                                          int slot) const {
  EXA_CHECK(node >= 0 && node < scale_.nodes, "node out of range");
  EXA_CHECK(slot >= 0 && slot < SummitSpec::kGpusPerNode, "slot out of range");
  return gpu_factor_[static_cast<std::size_t>(node) * SummitSpec::kGpusPerNode +
                     static_cast<std::size_t>(slot)];
}

double FleetVariability::cpu_power_factor(machine::NodeId node,
                                          int socket) const {
  EXA_CHECK(node >= 0 && node < scale_.nodes, "node out of range");
  EXA_CHECK(socket >= 0 && socket < SummitSpec::kCpusPerNode,
            "socket out of range");
  return cpu_factor_[static_cast<std::size_t>(node) * SummitSpec::kCpusPerNode +
                     static_cast<std::size_t>(socket)];
}

}  // namespace exawatt::power
