#pragma once

#include "machine/spec.hpp"
#include "util/sim_time.hpp"
#include "workload/job.hpp"
#include "workload/scheduler.hpp"

namespace exawatt::power {

/// Power-aware batch scheduling — the paper's concluding suggestion
/// ("aggressive power and energy aware ... scheduling policies can have
/// impact even on HPC deployments like Summit that impose no power
/// constraints"). Same FCFS + EASY backfill as workload::Scheduler, plus
/// a cluster power budget: a job may start only while the sum of running
/// jobs' estimated peak powers (plus the idle floor) stays under the cap.
///
/// The point of the ablation (bench_ab_power_cap) is to quantify the
/// trade: how much peak shaving costs in queue wait and utilization.
struct PowerAwareOptions {
  /// Total cluster input-power budget (W). <= 0 disables the budget and
  /// degenerates to the baseline scheduler.
  double cluster_cap_w = 0.0;
  /// When true, the head-of-queue reservation also respects the budget
  /// (strict); when false, only backfill is budget-gated (advisory).
  bool strict = true;
};

struct PowerAwareStats {
  workload::SchedulerStats base;
  double peak_committed_w = 0.0;  ///< max concurrent estimated peak power
  std::size_t power_blocked = 0;  ///< start attempts deferred by the budget
};

class PowerAwareScheduler {
 public:
  PowerAwareScheduler(machine::MachineScale scale, PowerAwareOptions options);

  /// Assign start/end times and node ranges in place (same contract as
  /// workload::Scheduler::run).
  PowerAwareStats run(std::vector<workload::Job>& jobs,
                      util::TimeSec horizon);

 private:
  machine::MachineScale scale_;
  PowerAwareOptions options_;
};

}  // namespace exawatt::power
