#pragma once

#include <cstdint>

#include "machine/spec.hpp"
#include "machine/topology.hpp"
#include "util/rng.hpp"
#include "workload/app_model.hpp"

namespace exawatt::power {

/// DC power draw of one V100 at a given utilization (0..1), before
/// per-chip manufacturing variability. Near-linear in utilization — the
/// paper's exemplar job shows a monotonic, near-linear power-temperature
/// relation riding on a near-linear utilization-power curve.
[[nodiscard]] double gpu_power_w(double util);

/// DC power draw of one POWER9 package at a given utilization.
[[nodiscard]] double cpu_power_w(double util);

/// DC -> wall conversion through the node's power supplies.
[[nodiscard]] double input_power_w(double dc_w);

/// Mean per-node input power (W) for a job running at mean utilization u,
/// with variability averaged out — the job-centric fast path used for
/// cluster- and job-level aggregates.
[[nodiscard]] double node_input_power_w(const workload::Utilization& u);

/// Mean per-node CPU-only / GPU-only DC power (the paper's Figure 9 axes:
/// per-node CPU power = 2 sockets, per-node GPU power = 6 devices).
[[nodiscard]] double node_cpu_power_w(const workload::Utilization& u);
[[nodiscard]] double node_gpu_power_w(const workload::Utilization& u);

/// Per-chip manufacturing variability factors for the whole fleet,
/// deterministic in (seed, node, slot). Power factors are tight (~5%
/// sigma); the paper attributes part of its observed spread to exactly
/// this variation.
class FleetVariability {
 public:
  FleetVariability(machine::MachineScale scale, std::uint64_t seed);

  [[nodiscard]] const machine::MachineScale& scale() const { return scale_; }

  /// Multiplicative power factor for GPU (node, slot 0..5).
  [[nodiscard]] double gpu_power_factor(machine::NodeId node, int slot) const;
  /// Multiplicative power factor for CPU (node, socket 0..1).
  [[nodiscard]] double cpu_power_factor(machine::NodeId node, int socket) const;

 private:
  machine::MachineScale scale_;
  std::vector<double> gpu_factor_;  ///< nodes * 6
  std::vector<double> cpu_factor_;  ///< nodes * 2
};

}  // namespace exawatt::power
