#include "power/cluster.hpp"

#include <algorithm>

#include "power/job_power.hpp"
#include "ts/partition.hpp"
#include "util/check.hpp"

namespace exawatt::power {

using machine::SummitSpec;

namespace {

/// Serial roll-up over one (partition-sized) range; the parallel driver
/// below stitches partitions back together (mini-Dask: disjoint time
/// chunks are independent, so no synchronization is needed).
struct PartitionColumns {
  std::vector<double> input;
  std::vector<double> cpu;
  std::vector<double> gpu;
  std::vector<double> alloc;
};

PartitionColumns rollup_range(const std::vector<workload::Job>& jobs,
                              util::TimeRange range,
                              const ClusterSeriesOptions& options) {
  const auto n = static_cast<std::size_t>(
      (range.duration() + options.dt - 1) / options.dt);

  PartitionColumns out;
  auto& input = out.input;
  auto& cpu = out.cpu;
  auto& gpu = out.gpu;
  auto& alloc = out.alloc;
  input.assign(n, 0.0);
  cpu.assign(n, 0.0);
  gpu.assign(n, 0.0);
  alloc.assign(n, 0.0);

  const workload::Utilization idle{};
  const double idle_input = node_input_power_w(idle);
  const double idle_cpu = node_cpu_power_w(idle);
  const double idle_gpu = node_gpu_power_w(idle);

  for (const auto& job : jobs) {
    if (job.start < 0) continue;
    const util::TimeRange overlap = range.clamp(job.interval());
    if (overlap.duration() <= 0) continue;
    const double nodes = job.node_count;
    auto w0 = static_cast<std::size_t>((overlap.begin - range.begin) /
                                       options.dt);
    for (util::TimeSec t = range.begin +
                           options.dt * static_cast<util::TimeSec>(w0);
         t < overlap.end; t += options.dt, ++w0) {
      if (w0 >= n) break;
      // Fraction of this window the job actually covers (first/last
      // windows may be partial).
      const util::TimeSec cov_begin = std::max(t, overlap.begin);
      const util::TimeSec cov_end = std::min(t + options.dt, overlap.end);
      const double cover = static_cast<double>(cov_end - cov_begin) /
                           static_cast<double>(options.dt);
      if (cover <= 0.0) continue;
      double in_acc = 0.0;
      double cpu_acc = 0.0;
      double gpu_acc = 0.0;
      for (int s = 0; s < options.subsamples; ++s) {
        const util::TimeSec ts =
            cov_begin + (cov_end - cov_begin) *
                            static_cast<util::TimeSec>(2 * s + 1) /
                            static_cast<util::TimeSec>(2 * options.subsamples);
        const workload::Utilization u = job_utilization(job, ts);
        in_acc += node_input_power_w(u);
        cpu_acc += node_cpu_power_w(u);
        gpu_acc += node_gpu_power_w(u);
      }
      // Allocated nodes contribute their delta over the idle baseline
      // (the baseline for the whole machine is added once below).
      const double weight = cover * nodes / options.subsamples;
      input[w0] += weight * in_acc - cover * nodes * idle_input;
      cpu[w0] += weight * cpu_acc - cover * nodes * idle_cpu;
      gpu[w0] += weight * gpu_acc - cover * nodes * idle_gpu;
      alloc[w0] += cover * nodes;
    }
  }

  return out;
}

}  // namespace

ts::Frame cluster_power_frame(const std::vector<workload::Job>& jobs,
                              machine::MachineScale scale,
                              util::TimeRange range,
                              ClusterSeriesOptions options) {
  EXA_CHECK(options.dt > 0, "cluster series dt must be positive");
  EXA_CHECK(options.subsamples >= 1, "need at least one subsample");
  EXA_CHECK(range.duration() > 0, "cluster series range must be non-empty");
  const auto n = static_cast<std::size_t>(
      (range.duration() + options.dt - 1) / options.dt);

  // Partition the grid into day-aligned chunks and roll up in parallel.
  // Chunks must be multiples of dt so partition grids stay phase-aligned.
  const util::TimeSec chunk =
      std::max<util::TimeSec>(options.dt,
                              (util::kDay / options.dt) * options.dt);
  const auto parts = ts::partition_range(range, chunk);
  const auto results = ts::partitioned_map(parts, [&](const ts::Partition& p) {
    return rollup_range(jobs, p.range, options);
  });

  std::vector<double> input(n, 0.0);
  std::vector<double> cpu(n, 0.0);
  std::vector<double> gpu(n, 0.0);
  std::vector<double> alloc(n, 0.0);
  std::size_t offset = 0;
  for (const auto& r : results) {
    std::copy(r.input.begin(), r.input.end(),
              input.begin() + static_cast<std::ptrdiff_t>(offset));
    std::copy(r.cpu.begin(), r.cpu.end(),
              cpu.begin() + static_cast<std::ptrdiff_t>(offset));
    std::copy(r.gpu.begin(), r.gpu.end(),
              gpu.begin() + static_cast<std::ptrdiff_t>(offset));
    std::copy(r.alloc.begin(), r.alloc.end(),
              alloc.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += r.input.size();
  }
  EXA_CHECK(offset == n, "partition stitching mismatch");

  // Idle baseline for the whole machine; partition roll-ups contributed
  // the *delta* over idle for the nodes their jobs cover.
  const workload::Utilization idle{};
  const double idle_input = node_input_power_w(idle);
  const double idle_cpu = node_cpu_power_w(idle);
  const double idle_gpu = node_gpu_power_w(idle);
  const double total_nodes = scale.nodes;
  for (std::size_t i = 0; i < n; ++i) {
    input[i] += total_nodes * idle_input;
    cpu[i] += total_nodes * idle_cpu;
    gpu[i] += total_nodes * idle_gpu;
  }

  ts::Frame frame(range.begin, options.dt, n);
  frame.set("input_power_w", std::move(input));
  frame.set("cpu_power_w", std::move(cpu));
  frame.set("gpu_power_w", std::move(gpu));
  frame.set("alloc_nodes", std::move(alloc));
  return frame;
}

}  // namespace exawatt::power
