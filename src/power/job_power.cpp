#include "power/job_power.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/welford.hpp"
#include "workload/app_model.hpp"

namespace exawatt::power {

using machine::SummitSpec;

workload::Utilization job_utilization(const workload::Job& job,
                                      util::TimeSec t) {
  if (job.start < 0 || t < job.start || t >= job.end) return {};
  const auto& app = workload::app_catalog()[job.app];
  return workload::evaluate_app(app, t - job.start, job.key);
}

double job_node_input_w(const workload::Job& job, util::TimeSec t) {
  return node_input_power_w(job_utilization(job, t));
}

ts::Series job_power_series(const workload::Job& job, util::TimeSec dt,
                            int subsamples) {
  EXA_CHECK(dt > 0, "job series dt must be positive");
  EXA_CHECK(subsamples >= 1, "need at least one subsample");
  if (job.start < 0 || job.end <= job.start) {
    return ts::Series(job.start, dt, {});
  }
  const auto n = static_cast<std::size_t>((job.end - job.start + dt - 1) / dt);
  std::vector<double> v(n);
  const double nodes = job.node_count;
  for (std::size_t i = 0; i < n; ++i) {
    const util::TimeSec w0 = job.start + dt * static_cast<util::TimeSec>(i);
    double acc = 0.0;
    for (int s = 0; s < subsamples; ++s) {
      const util::TimeSec t =
          w0 + dt * static_cast<util::TimeSec>(2 * s + 1) /
                   static_cast<util::TimeSec>(2 * subsamples);
      acc += job_node_input_w(job, std::min(t, job.end - 1));
    }
    v[i] = nodes * acc / subsamples;
  }
  return ts::Series(job.start, dt, std::move(v));
}

JobPowerSummary summarize_job(const workload::Job& job, util::TimeSec dt) {
  JobPowerSummary s;
  s.id = job.id;
  s.sched_class = job.sched_class;
  s.node_count = job.node_count;
  s.project = job.project;
  s.domain = job.domain;
  s.app = job.app;
  if (job.start < 0 || job.end <= job.start) return s;
  const util::TimeSec runtime = job.end - job.start;
  s.runtime_s = static_cast<double>(runtime);
  if (dt <= 0) {
    dt = std::clamp<util::TimeSec>(runtime / 512, 10, 300);
  }
  util::Welford power;
  util::Welford cpu_node;
  util::Welford gpu_node;
  for (util::TimeSec t = job.start; t < job.end; t += dt) {
    const util::TimeSec mid = std::min(t + dt / 2, job.end - 1);
    const workload::Utilization u = job_utilization(job, mid);
    power.add(static_cast<double>(job.node_count) * node_input_power_w(u));
    cpu_node.add(node_cpu_power_w(u));
    gpu_node.add(node_gpu_power_w(u));
  }
  s.mean_power_w = power.mean();
  s.max_power_w = power.max();
  s.energy_j = power.mean() * s.runtime_s;
  s.mean_cpu_node_w = cpu_node.mean();
  s.max_cpu_node_w = cpu_node.max();
  s.mean_gpu_node_w = gpu_node.mean();
  s.max_gpu_node_w = gpu_node.max();
  return s;
}

namespace {
/// Deterministic per-(job, rank) static load-imbalance factor and
/// per-second jitter: ranks of a synchronous job are never perfectly
/// balanced, which seeds the within-job power spread of Figure 17.
double rank_factor(std::uint64_t job_key, int rank) {
  const std::uint64_t h =
      util::hash_combine(job_key, static_cast<std::uint64_t>(rank) + 1);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 0.97 + 0.06 * u;  // +/- 3% static imbalance
}

double second_jitter(std::uint64_t job_key, int rank, util::TimeSec t) {
  const std::uint64_t h = util::mix64(
      util::hash_combine(job_key ^ 0x7177ULL,
                         static_cast<std::uint64_t>(rank) * 0x1f123bb5ULL +
                             static_cast<std::uint64_t>(t)));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 0.99 + 0.02 * u;  // +/- 1% fast jitter
}
}  // namespace

NodeComponentPower node_power_detail(const workload::Job& job, int rank,
                                     util::TimeSec t,
                                     const FleetVariability& fleet) {
  EXA_CHECK(rank >= 0 && rank < job.node_count, "rank out of range");
  const machine::NodeId node = job.node_at(rank);
  const workload::Utilization u = job_utilization(job, t);
  const double imbalance =
      rank_factor(job.key, rank) * second_jitter(job.key, rank, t);
  NodeComponentPower p;
  double dc = SummitSpec::kNodeOverheadW;
  for (int c = 0; c < SummitSpec::kCpusPerNode; ++c) {
    p.cpu_w[c] = cpu_power_w(std::clamp(u.cpu * imbalance, 0.0, 1.0)) *
                 fleet.cpu_power_factor(node, c);
    dc += p.cpu_w[c];
  }
  for (int g = 0; g < SummitSpec::kGpusPerNode; ++g) {
    p.gpu_w[g] = gpu_power_w(std::clamp(u.gpu * imbalance, 0.0, 1.0)) *
                 fleet.gpu_power_factor(node, g);
    dc += p.gpu_w[g];
  }
  p.input_w = input_power_w(dc);
  return p;
}

double estimated_peak_power_w(const workload::Job& job) {
  const auto& app = workload::app_catalog()[job.app];
  workload::Utilization peak;
  peak.cpu = app.phases.cpu_high;
  peak.gpu = std::min(1.0, app.phases.gpu_high + app.phases.spike_gpu);
  return static_cast<double>(job.node_count) * node_input_power_w(peak);
}

NodeComponentPower idle_node_power(machine::NodeId node,
                                   const FleetVariability& fleet) {
  NodeComponentPower p;
  double dc = SummitSpec::kNodeOverheadW;
  for (int c = 0; c < SummitSpec::kCpusPerNode; ++c) {
    p.cpu_w[c] = SummitSpec::kCpuIdleW * fleet.cpu_power_factor(node, c);
    dc += p.cpu_w[c];
  }
  for (int g = 0; g < SummitSpec::kGpusPerNode; ++g) {
    p.gpu_w[g] = SummitSpec::kGpuIdleW * fleet.gpu_power_factor(node, g);
    dc += p.gpu_w[g];
  }
  p.input_w = input_power_w(dc);
  return p;
}

}  // namespace exawatt::power
