#pragma once

#include <cstdint>

#include "power/component.hpp"
#include "ts/series.hpp"
#include "workload/job.hpp"

namespace exawatt::power {

/// Mean utilization of a job's nodes at absolute time `t` (0 outside the
/// job's interval). Thin wrapper over the application archetype model.
[[nodiscard]] workload::Utilization job_utilization(const workload::Job& job,
                                                    util::TimeSec t);

/// Mean per-node input power (W) of a job at absolute time `t`;
/// idle draw outside the job's interval.
[[nodiscard]] double job_node_input_w(const workload::Job& job,
                                      util::TimeSec t);

/// Total job input power (W, summed over its nodes) on a regular grid of
/// `dt` seconds spanning the job's runtime — the paper's Dataset 3
/// ("job-wise power time series"). Each window averages `subsamples`
/// evaluation points to avoid phase aliasing at coarse dt.
[[nodiscard]] ts::Series job_power_series(const workload::Job& job,
                                          util::TimeSec dt,
                                          int subsamples = 1);

/// Scalar power/energy features of one job (Datasets 5-7): the inputs to
/// Figures 6-9.
struct JobPowerSummary {
  workload::JobId id = 0;
  int sched_class = 5;
  int node_count = 0;
  std::uint32_t project = 0;
  std::uint16_t domain = 0;
  std::uint16_t app = 0;
  double runtime_s = 0.0;
  double mean_power_w = 0.0;  ///< mean total input power
  double max_power_w = 0.0;   ///< max windowed total input power
  double energy_j = 0.0;      ///< total input energy over the run
  double mean_cpu_node_w = 0.0;  ///< mean per-node CPU power (2 sockets)
  double max_cpu_node_w = 0.0;
  double mean_gpu_node_w = 0.0;  ///< mean per-node GPU power (6 devices)
  double max_gpu_node_w = 0.0;
};

/// Summarize a scheduled job. `dt <= 0` selects an adaptive window
/// (runtime/512 clamped to [10 s, 300 s]) so the 840k-job sweep stays
/// tractable while short jobs keep 10 s fidelity.
[[nodiscard]] JobPowerSummary summarize_job(const workload::Job& job,
                                            util::TimeSec dt = 0);

/// Fully detailed per-node, per-component instantaneous power, including
/// per-chip manufacturing variability and per-node load imbalance — the
/// slow path behind telemetry emission and the Figure 17 exemplar.
struct NodeComponentPower {
  double cpu_w[machine::SummitSpec::kCpusPerNode] = {};
  double gpu_w[machine::SummitSpec::kGpusPerNode] = {};
  double input_w = 0.0;  ///< wall power including overhead and PSU loss

  [[nodiscard]] double cpu_total() const {
    double s = 0.0;
    for (double v : cpu_w) s += v;
    return s;
  }
  [[nodiscard]] double gpu_total() const {
    double s = 0.0;
    for (double v : gpu_w) s += v;
    return s;
  }
};

/// Power detail for the job's `rank`-th node at absolute time `t`.
[[nodiscard]] NodeComponentPower node_power_detail(
    const workload::Job& job, int rank, util::TimeSec t,
    const FleetVariability& fleet);

/// Idle-node power detail (no job allocated).
[[nodiscard]] NodeComponentPower idle_node_power(machine::NodeId node,
                                                 const FleetVariability& fleet);

/// A-priori estimate of the job's peak total input power (W): its
/// archetype's high-phase utilization (plus spikes) at every node. This
/// is what a power-aware scheduler can know *before* the job runs — the
/// paper's §9 fingerprint-based prediction refines exactly this number.
[[nodiscard]] double estimated_peak_power_w(const workload::Job& job);

}  // namespace exawatt::power
