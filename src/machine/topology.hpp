#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/spec.hpp"

namespace exawatt::machine {

using NodeId = std::int32_t;
using CabinetId = std::int32_t;
using MsbId = std::int32_t;

/// Identity of a single GPU: node plus slot 0..5. Slots 0-2 hang off
/// CPU socket 0 and 3-5 off socket 1; within a socket the cold plate
/// coolant visits slot positions in order (Figure 1-(a)), so position 0
/// receives the freshest water.
struct GpuLocation {
  NodeId node = 0;
  int slot = 0;

  [[nodiscard]] int socket() const { return slot / SummitSpec::kGpusPerCpu; }
  [[nodiscard]] int coolant_position() const {
    return slot % SummitSpec::kGpusPerCpu;
  }
};

/// Physical placement of a node on the compute floor.
struct FloorPosition {
  CabinetId cabinet = 0;
  int row = 0;             ///< row of cabinets on the floor
  int column = 0;          ///< cabinet index within the row
  int height = 0;          ///< node position inside the cabinet (0..17)
};

/// Summit floor topology: nodes → cabinets → rows, plus the MSB power
/// feed wiring used for the Figure 4 meter-vs-summation validation.
class Topology {
 public:
  explicit Topology(MachineScale scale = MachineScale::full());

  [[nodiscard]] const MachineScale& scale() const { return scale_; }
  [[nodiscard]] int nodes() const { return scale_.nodes; }
  [[nodiscard]] int cabinets() const { return scale_.cabinets(); }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int columns() const { return columns_; }
  [[nodiscard]] int msbs() const { return SummitSpec::kMsbCount; }

  [[nodiscard]] CabinetId cabinet_of(NodeId node) const;
  [[nodiscard]] FloorPosition position_of(NodeId node) const;
  [[nodiscard]] MsbId msb_of(NodeId node) const;
  /// Nodes fed by one MSB (contiguous cabinet blocks, like the manual
  /// floormap mapping the paper describes).
  [[nodiscard]] std::vector<NodeId> nodes_of_msb(MsbId msb) const;
  /// All nodes in one cabinet.
  [[nodiscard]] std::vector<NodeId> nodes_of_cabinet(CabinetId cab) const;

  /// Hostname-style label ("b07n12") for logs and reports.
  [[nodiscard]] std::string node_name(NodeId node) const;

 private:
  MachineScale scale_;
  int rows_ = 0;
  int columns_ = 0;
};

}  // namespace exawatt::machine
