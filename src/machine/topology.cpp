#include "machine/topology.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace exawatt::machine {

Topology::Topology(MachineScale scale) : scale_(scale) {
  EXA_CHECK(scale_.nodes > 0, "topology needs at least one node");
  EXA_CHECK(scale_.nodes_per_cabinet > 0, "cabinet size must be positive");
  // Near-square floor layout; the real floor is ~14 rows of ~18 cabinets.
  columns_ = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(cabinets()))));
  if (columns_ < 1) columns_ = 1;
  rows_ = (cabinets() + columns_ - 1) / columns_;
}

CabinetId Topology::cabinet_of(NodeId node) const {
  EXA_CHECK(node >= 0 && node < scale_.nodes, "node id out of range");
  return node / scale_.nodes_per_cabinet;
}

FloorPosition Topology::position_of(NodeId node) const {
  const CabinetId cab = cabinet_of(node);
  FloorPosition p;
  p.cabinet = cab;
  p.row = cab / columns_;
  p.column = cab % columns_;
  p.height = node % scale_.nodes_per_cabinet;
  return p;
}

MsbId Topology::msb_of(NodeId node) const {
  // Contiguous cabinet blocks per switchboard, proportionally sized so
  // every MSB feeds cabinets even on reduced-scale machines.
  const CabinetId cab = cabinet_of(node);
  return static_cast<MsbId>(static_cast<std::int64_t>(cab) * msbs() /
                            cabinets());
}

std::vector<NodeId> Topology::nodes_of_msb(MsbId msb) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < scale_.nodes; ++n) {
    if (msb_of(n) == msb) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> Topology::nodes_of_cabinet(CabinetId cab) const {
  EXA_CHECK(cab >= 0 && cab < cabinets(), "cabinet id out of range");
  std::vector<NodeId> out;
  const NodeId first = cab * scale_.nodes_per_cabinet;
  for (int i = 0; i < scale_.nodes_per_cabinet; ++i) {
    const NodeId n = first + i;
    if (n < scale_.nodes) out.push_back(n);
  }
  return out;
}

std::string Topology::node_name(NodeId node) const {
  const FloorPosition p = position_of(node);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%c%02dn%02d",
                static_cast<char>('a' + p.row % 26), p.column, p.height);
  return buf;
}

}  // namespace exawatt::machine
