#pragma once

#include <cstdint>

namespace exawatt::machine {

/// Summit system constants (paper Table 1 and §2). All power in watts,
/// temperatures in °C, flow in arbitrary tons-of-refrigeration units.
struct SummitSpec {
  // -- Cluster scale ------------------------------------------------------
  static constexpr int kNodes = 4626;
  static constexpr int kCabinets = 257;
  static constexpr int kNodesPerCabinet = 18;
  static constexpr int kCpusPerNode = 2;
  static constexpr int kGpusPerNode = 6;
  static constexpr int kGpusPerCpu = 3;  ///< serial coolant chain per socket
  static constexpr int kTotalGpus = kNodes * kGpusPerNode;  // 27,756
  static constexpr int kTotalCpus = kNodes * kCpusPerNode;  // 9,252
  static constexpr int kMsbCount = 5;  ///< main switchboards (Dataset 13)

  // -- Node power ---------------------------------------------------------
  static constexpr double kNodeMaxPowerW = 2300.0;  ///< 220–240 V AC input
  /// Cluster idle is ~2.5 MW (paper §4.1) -> ~540 W per node.
  static constexpr double kNodeIdlePowerW = 540.0;
  static constexpr double kCpuTdpW = 300.0;   ///< POWER9 22C
  static constexpr double kCpuIdleW = 60.0;
  static constexpr double kGpuTdpW = 300.0;   ///< V100 SXM2
  static constexpr double kGpuIdleW = 40.0;
  /// Power-supply conversion efficiency (input power = DC load / eff).
  static constexpr double kPsuEfficiency = 0.94;
  /// Memory + NVMe + fans + NIC DC baseline not covered by sockets,
  /// derived so that a fully idle node draws kNodeIdlePowerW at the wall.
  static constexpr double kNodeOverheadW =
      kNodeIdlePowerW * kPsuEfficiency - kCpusPerNode * kCpuIdleW -
      kGpusPerNode * kGpuIdleW;

  // -- Cluster power ------------------------------------------------------
  static constexpr double kClusterIdleW = 2.5e6;
  static constexpr double kClusterPeakW = 13.0e6;
  static constexpr double kFacilityCapacityW = 20.0e6;

  // -- Cooling (Table 1, in °C; paper quotes °F) --------------------------
  static constexpr double kMtwSupplyMinC = 17.8;   ///< 64 °F
  static constexpr double kMtwSupplyMaxC = 21.7;   ///< 71 °F
  static constexpr double kMtwSupplyNominalC = 20.0;  ///< 70 °F central plant
  static constexpr double kMtwReturnMinC = 26.7;   ///< 80 °F
  static constexpr double kMtwReturnMaxC = 37.8;   ///< 100 °F
  static constexpr double kChilledWaterC = 5.6;    ///< 42 °F
  static constexpr int kCoolingTowers = 8;
  static constexpr int kChillers = 5;

  // -- Scheduling (Table 3) ------------------------------------------------
  static constexpr int kSchedulingClasses = 5;
  static constexpr int kMaxJobNodes = 4608;  ///< class-1 upper bound
};

/// Scaled-down machine description for tests and cheap benches. All models
/// take a `MachineScale` so per-node thresholds (e.g. the 868 W/node edge
/// rule) keep results scale-invariant.
struct MachineScale {
  int nodes = SummitSpec::kNodes;
  int nodes_per_cabinet = SummitSpec::kNodesPerCabinet;

  [[nodiscard]] int cabinets() const {
    return (nodes + nodes_per_cabinet - 1) / nodes_per_cabinet;
  }
  [[nodiscard]] int gpus() const { return nodes * SummitSpec::kGpusPerNode; }
  [[nodiscard]] int cpus() const { return nodes * SummitSpec::kCpusPerNode; }
  /// Fraction of the full Summit machine this scale represents.
  [[nodiscard]] double fraction() const {
    return static_cast<double>(nodes) /
           static_cast<double>(SummitSpec::kNodes);
  }

  static MachineScale full() { return {}; }
  static MachineScale small(int n) { return {n, SummitSpec::kNodesPerCabinet}; }
};

}  // namespace exawatt::machine
