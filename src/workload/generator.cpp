#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "workload/app_model.hpp"
#include "workload/classes.hpp"

namespace exawatt::workload {

JobGenerator::JobGenerator(WorkloadConfig config)
    : config_(std::move(config)) {
  EXA_CHECK(config_.scale.nodes > 0, "workload needs a machine");
  EXA_CHECK(config_.project_count > 0, "workload needs projects");
  util::Rng master(config_.seed);
  projects_ = generate_projects(config_.project_count,
                                master.substream(0x11aaULL, 0));
  // Zipf-like popularity: a few flagship projects submit most node-hours,
  // matching the paper's observation that certain codes dominate domains.
  project_weights_.resize(projects_.size());
  for (std::size_t i = 0; i < projects_.size(); ++i) {
    project_weights_[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.8);
  }
}

int JobGenerator::sample_node_count(int sched_class, util::Rng& rng) const {
  const SchedulingClass band = scaled_class(sched_class, config_.scale.nodes);
  const double f = config_.scale.fraction();
  // Popular node counts per class (full-scale values), scaled to the
  // machine. The spikes reproduce the modes the paper reports: 4096/4608
  // for class 1, 1000/1024 for class 2, powers of two below.
  struct Spike {
    int nodes;
    double weight;
  };
  auto scaled = [&](int n) {
    const int s = std::max(1, static_cast<int>(std::lround(n * f)));
    return std::clamp(s, band.min_nodes, band.max_nodes);
  };
  std::vector<Spike> spikes;
  double uniform_weight = 0.0;
  int uniform_lo = band.min_nodes;
  int uniform_hi = band.max_nodes;
  switch (sched_class) {
    case 1:
      spikes = {{scaled(4096), 0.35}, {scaled(4608), 0.20},
                {scaled(4626), 0.03}, {scaled(3000), 0.05}};
      uniform_weight = 0.37;
      // Bias the uniform part low so ~65% of jobs land above 4000 nodes.
      uniform_hi = scaled(4300);
      break;
    case 2:
      spikes = {{scaled(1024), 0.30}, {scaled(1000), 0.25},
                {scaled(2048), 0.06}, {scaled(1200), 0.05}};
      uniform_weight = 0.34;
      uniform_hi = scaled(2000);
      break;
    case 3:
      spikes = {{scaled(128), 0.16}, {scaled(256), 0.15}, {scaled(512), 0.10},
                {scaled(100), 0.09}};
      uniform_weight = 0.50;
      break;
    case 4:
      spikes = {{scaled(64), 0.22}, {scaled(48), 0.12}, {scaled(90), 0.12}};
      uniform_weight = 0.54;
      break;
    case 5:
      spikes = {{scaled(1), 0.18}, {scaled(2), 0.14}, {scaled(4), 0.12},
                {scaled(8), 0.10}, {scaled(16), 0.08}, {scaled(32), 0.06}};
      uniform_weight = 0.32;
      break;
    default:
      EXA_CHECK(false, "scheduling class must be 1..5");
  }
  std::vector<double> weights;
  weights.reserve(spikes.size() + 1);
  for (const auto& s : spikes) weights.push_back(s.weight);
  weights.push_back(uniform_weight);
  const std::size_t pick = rng.weighted_index(weights);
  if (pick < spikes.size()) return spikes[pick].nodes;
  if (uniform_hi <= uniform_lo) return uniform_lo;
  return uniform_lo + static_cast<int>(rng.uniform_index(
                          static_cast<std::uint64_t>(uniform_hi - uniform_lo + 1)));
}

util::TimeSec JobGenerator::sample_runtime(int sched_class,
                                           util::Rng& rng) const {
  const auto& m = config_.mix[static_cast<std::size_t>(sched_class - 1)];
  const double draw =
      rng.lognormal(std::log(m.median_runtime_s), m.runtime_sigma);
  // Floor of 2 minutes: even trivial jobs pay launch overhead.
  return std::max<util::TimeSec>(120, static_cast<util::TimeSec>(draw));
}

std::vector<Job> JobGenerator::generate(util::TimeRange range) const {
  EXA_CHECK(range.duration() > 0, "generation range must be non-empty");
  std::vector<Job> jobs;
  util::Rng master(config_.seed);
  const auto& apps = app_catalog();

  JobId next_id = 1;
  for (int cls = 1; cls <= 5; ++cls) {
    const auto& m = config_.mix[static_cast<std::size_t>(cls - 1)];
    // Arrival rates do NOT scale with machine size: node counts already
    // scale by the machine fraction, so the offered load (node-hours vs
    // capacity) stays at the calibrated ~87% at any scale.
    const double rate_per_s = m.jobs_per_day / 86400.0 * config_.arrival_scale;
    if (rate_per_s <= 0.0) continue;
    util::Rng rng = master.substream(0x06c5ULL, static_cast<std::uint64_t>(cls));
    const SchedulingClass band = scaled_class(cls, config_.scale.nodes);

    double t = static_cast<double>(range.begin);
    for (;;) {
      t += rng.exponential(rate_per_s);
      if (t >= static_cast<double>(range.end)) break;
      Job j;
      j.id = 0;  // assigned after the global sort for submit-order ids
      j.sched_class = cls;
      j.submit = static_cast<util::TimeSec>(t);
      j.node_count = sample_node_count(cls, rng);
      j.natural_runtime = sample_runtime(cls, rng);
      // Users request headroom above the expected runtime; the class cap
      // truncates both, producing the wall-limit probability mass the
      // paper sees at 120 min for class 5.
      const auto requested = static_cast<util::TimeSec>(
          static_cast<double>(j.natural_runtime) * rng.uniform(1.1, 2.0));
      j.requested_walltime = std::min(requested, band.max_walltime);

      j.project = static_cast<std::uint32_t>(
          rng.weighted_index(project_weights_));
      const Project& proj = projects_[j.project];
      j.domain = static_cast<std::uint16_t>(proj.domain);
      // Mostly the project's flagship code — but only when that code
      // plausibly runs at this scale (class affinity gate); otherwise
      // another code from the domain mix, re-weighted by class affinity.
      const bool preferred_fits =
          apps[proj.preferred_app]
              .class_affinity[static_cast<std::size_t>(cls - 1)] >= 0.5;
      if (preferred_fits && rng.chance(0.7)) {
        j.app = static_cast<std::uint16_t>(proj.preferred_app);
      } else {
        const auto& mixes = domain_catalog()[proj.domain].app_mix;
        std::vector<double> w;
        w.reserve(mixes.size());
        for (const auto& [app, base] : mixes) {
          w.push_back(base *
                      apps[app].class_affinity[static_cast<std::size_t>(cls - 1)]);
        }
        j.app = static_cast<std::uint16_t>(mixes[rng.weighted_index(w)].first);
      }
      j.key = util::hash_combine(config_.seed,
                                 util::hash_combine(static_cast<std::uint64_t>(j.submit),
                                                    rng.next()));
      jobs.push_back(std::move(j));
    }
  }

  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.submit < b.submit || (a.submit == b.submit && a.key < b.key);
  });
  for (auto& j : jobs) j.id = next_id++;
  return jobs;
}

}  // namespace exawatt::workload
