#pragma once

#include <array>

#include "util/sim_time.hpp"

namespace exawatt::workload {

/// Summit scheduling classes by job node count (paper Table 3).
/// Class 1 is the leadership band; classes 3-5 are "small-scale".
struct SchedulingClass {
  int id = 0;             ///< 1..5
  int min_nodes = 0;
  int max_nodes = 0;
  util::TimeSec max_walltime = 0;
};

inline constexpr std::array<SchedulingClass, 5> kSchedulingClasses = {{
    {1, 2765, 4608, 24 * util::kHour},
    {2, 922, 2764, 24 * util::kHour},
    {3, 92, 921, 12 * util::kHour},
    {4, 46, 91, 6 * util::kHour},
    {5, 1, 45, 2 * util::kHour},
}};

/// Class id (1..5) for a node count; node counts above the class-1 band
/// also map to class 1 (full-system runs at 4,626 nodes exist in the log).
[[nodiscard]] int class_of(int nodes);

/// Class record by id (1..5).
[[nodiscard]] const SchedulingClass& scheduling_class(int id);

/// Scale a class's node band onto a smaller machine, preserving the
/// fraction-of-machine semantics (used when tests run at 64-512 nodes).
[[nodiscard]] SchedulingClass scaled_class(int id, int machine_nodes);

}  // namespace exawatt::workload
