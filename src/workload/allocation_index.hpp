#pragma once

#include <vector>

#include "machine/topology.hpp"
#include "util/sim_time.hpp"
#include "workload/job.hpp"

namespace exawatt::workload {

/// Per-node allocation lookup over a bounded window — the join structure
/// behind "which job ran on this node at this second" (paper Dataset D).
/// Build cost and memory are proportional to the node-intervals of jobs
/// overlapping the window, so keep windows bounded for full-scale runs.
class AllocationIndex {
 public:
  AllocationIndex(const std::vector<Job>& jobs, util::TimeRange window,
                  int machine_nodes);

  /// Job running on `node` at time `t` (nullptr if idle). Also yields the
  /// node's rank within the job when `rank` is non-null.
  [[nodiscard]] const Job* job_at(machine::NodeId node, util::TimeSec t,
                                  int* rank = nullptr) const;

  /// All (job, rank) pairs that touch `node` within the window.
  struct Span {
    util::TimeSec begin;
    util::TimeSec end;
    const Job* job;
    int rank;  ///< node's rank within the job's allocation
  };
  [[nodiscard]] const std::vector<Span>& spans(machine::NodeId node) const;

 private:
  std::vector<std::vector<Span>> per_node_;
};

}  // namespace exawatt::workload
