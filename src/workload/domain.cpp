#include "workload/domain.hpp"

#include <cstdio>

#include "util/check.hpp"
#include "workload/app_model.hpp"

namespace exawatt::workload {

const std::vector<ScienceDomain>& domain_catalog() {
  static const std::vector<ScienceDomain> catalog = [] {
    auto ix = [](const char* n) { return app_index(n); };
    std::vector<ScienceDomain> d;
    d.push_back({"Materials",
                 {{ix("gw-solver"), 5}, {ix("chem-dft"), 3}, {ix("md-spiky"), 2}}});
    d.push_back({"Physics",
                 {{ix("lattice-qcd"), 5}, {ix("gw-solver"), 2}, {ix("nuclear-transport"), 1}}});
    d.push_back({"Chemistry",
                 {{ix("chem-dft"), 5}, {ix("md-spiky"), 3}, {ix("md-replica"), 2}}});
    d.push_back({"Fusion",
                 {{ix("fusion-pic"), 5}, {ix("cfd-structured"), 2}}});
    d.push_back({"Engineering",
                 {{ix("cfd-structured"), 5}, {ix("climate-cpu"), 2}, {ix("io-pipeline"), 1}}});
    d.push_back({"Computer Science",
                 {{ix("ml-train"), 4}, {ix("debug-interactive"), 3}, {ix("io-pipeline"), 2}}});
    d.push_back({"Earth Science",
                 {{ix("climate-cpu"), 6}, {ix("cfd-structured"), 2}, {ix("io-pipeline"), 1}}});
    d.push_back({"Astrophysics",
                 {{ix("astro-hydro"), 5}, {ix("gw-solver"), 2}, {ix("ml-train"), 1}}});
    d.push_back({"Biophysics",
                 {{ix("md-spiky"), 5}, {ix("md-replica"), 3}, {ix("bio-genomics"), 2}}});
    d.push_back({"Nuclear Physics",
                 {{ix("nuclear-transport"), 5}, {ix("lattice-qcd"), 2}}});
    d.push_back({"Biology",
                 {{ix("bio-genomics"), 5}, {ix("ml-train"), 2}, {ix("md-spiky"), 2}}});
    d.push_back({"Energy",
                 {{ix("chem-dft"), 3}, {ix("cfd-structured"), 3}, {ix("climate-cpu"), 2}}});
    d.push_back({"AI/ML",
                 {{ix("ml-train"), 7}, {ix("bio-genomics"), 1}, {ix("debug-interactive"), 1}}});
    d.push_back({"National Security",
                 {{ix("nuclear-transport"), 3}, {ix("cfd-structured"), 2}, {ix("ml-train"), 2}}});
    return d;
  }();
  return catalog;
}

std::vector<Project> generate_projects(std::size_t count, util::Rng rng) {
  EXA_CHECK(count > 0, "need at least one project");
  const auto& domains = domain_catalog();
  std::vector<Project> projects;
  projects.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng r = rng.substream(/*kind=*/0x9a07ULL, i);
    Project p;
    p.id = static_cast<std::uint32_t>(i);
    p.domain = r.uniform_index(domains.size());
    const auto& mix = domains[p.domain].app_mix;
    std::vector<double> weights;
    weights.reserve(mix.size());
    for (const auto& [app, w] : mix) weights.push_back(w);
    p.preferred_app = mix[r.weighted_index(weights)].first;
    p.scale_bias = r.normal(0.0, 0.6);
    // Log-normal propensity: a handful of projects with irregular
    // workloads dominate the failure-per-node-hour ranking (Figure 14).
    p.failure_propensity = r.lognormal(0.0, 1.0);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3s%03zu",
                  domains[p.domain].name.c_str(), i);
    p.name = buf;
    projects.push_back(std::move(p));
  }
  return projects;
}

}  // namespace exawatt::workload
