#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "machine/spec.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "workload/domain.hpp"
#include "workload/job.hpp"

namespace exawatt::workload {

/// Arrival and runtime statistics of one scheduling class, at full Summit
/// scale. Rates are scaled by machine fraction automatically.
struct ClassMix {
  double jobs_per_day = 0.0;
  double median_runtime_s = 1800.0;  ///< log-normal median
  double runtime_sigma = 0.8;        ///< log-normal sigma
};

/// Workload synthesis configuration. Defaults are calibrated so that a
/// full-scale year produces ~840k jobs at ~87% node utilization with the
/// class structure of paper Figures 6-8 (see DESIGN.md).
struct WorkloadConfig {
  machine::MachineScale scale = machine::MachineScale::full();
  std::uint64_t seed = 42;
  std::size_t project_count = 280;
  /// index 0 == class 1. Calibration notes:
  ///  - class 1: 80% of runtimes < 43 min (paper Fig 7)
  ///  - class 2: 80% < ~3 h
  ///  - class 5: visible probability mass at the 2 h wall-limit
  std::array<ClassMix, 5> mix = {{
      {8.0, 20 * 60.0, 0.90},
      {11.0, 84 * 60.0, 0.91},
      {50.0, 60 * 60.0, 0.90},
      {100.0, 36 * 60.0, 0.80},
      {2150.0, 18 * 60.0, 1.00},
  }};
  /// Global multiplier on arrival rates (load knob for experiments).
  double arrival_scale = 1.0;
};

/// Generates the submission stream: every job's class, size, runtime,
/// project, domain and application — everything except its start time and
/// node placement, which the Scheduler assigns.
class JobGenerator {
 public:
  explicit JobGenerator(WorkloadConfig config);

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<Project>& projects() const {
    return projects_;
  }

  /// All submissions in [range.begin, range.end), sorted by submit time.
  [[nodiscard]] std::vector<Job> generate(util::TimeRange range) const;

  /// Draw a node count for a class on this machine scale (public for
  /// tests; encodes the popular-count spikes at 4096, 1024, 1000, ...).
  [[nodiscard]] int sample_node_count(int sched_class, util::Rng& rng) const;

  /// Draw the natural runtime (before wall-limit) for a class.
  [[nodiscard]] util::TimeSec sample_runtime(int sched_class,
                                             util::Rng& rng) const;

 private:
  WorkloadConfig config_;
  std::vector<Project> projects_;
  std::vector<double> project_weights_;  ///< zipf-ish popularity
};

}  // namespace exawatt::workload
