#include "workload/classes.hpp"

#include <algorithm>
#include <cmath>

#include "machine/spec.hpp"
#include "util/check.hpp"

namespace exawatt::workload {

int class_of(int nodes) {
  EXA_CHECK(nodes >= 1, "job must use at least one node");
  for (const auto& c : kSchedulingClasses) {
    if (nodes >= c.min_nodes) return c.id;
  }
  return 5;
}

const SchedulingClass& scheduling_class(int id) {
  EXA_CHECK(id >= 1 && id <= 5, "scheduling class id must be 1..5");
  return kSchedulingClasses[static_cast<std::size_t>(id - 1)];
}

SchedulingClass scaled_class(int id, int machine_nodes) {
  const SchedulingClass& c = scheduling_class(id);
  if (machine_nodes >= machine::SummitSpec::kNodes) return c;
  const double f = static_cast<double>(machine_nodes) /
                   static_cast<double>(machine::SummitSpec::kNodes);
  SchedulingClass s = c;
  s.min_nodes = std::max(1, static_cast<int>(std::floor(c.min_nodes * f)));
  s.max_nodes = std::max(s.min_nodes,
                         static_cast<int>(std::ceil(c.max_nodes * f)));
  // Preserve the class-5 floor of one node and keep bands disjoint.
  if (id < 5) {
    const SchedulingClass below = scaled_class(id + 1, machine_nodes);
    s.min_nodes = std::max(s.min_nodes, below.max_nodes + 1);
    s.max_nodes = std::max(s.max_nodes, s.min_nodes);
  }
  return s;
}

}  // namespace exawatt::workload
