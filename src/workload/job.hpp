#pragma once

#include <cstdint>
#include <vector>

#include "machine/topology.hpp"
#include "util/sim_time.hpp"

namespace exawatt::workload {

using JobId = std::uint64_t;

/// Contiguous block of allocated nodes [first, first + count).
struct NodeRange {
  machine::NodeId first = 0;
  int count = 0;
};

/// One scheduler allocation — the C++ analogue of a row in the paper's
/// Dataset C (job history) plus the per-node allocation of Dataset D
/// (stored compactly as node ranges).
struct Job {
  JobId id = 0;
  int sched_class = 5;            ///< 1..5 (Table 3)
  int node_count = 0;
  std::uint32_t project = 0;      ///< index into the project table
  std::uint16_t domain = 0;       ///< science domain index
  std::uint16_t app = 0;          ///< app archetype index
  util::TimeSec submit = 0;
  util::TimeSec start = -1;       ///< -1 until scheduled
  util::TimeSec end = -1;
  util::TimeSec requested_walltime = 0;
  util::TimeSec natural_runtime = 0;  ///< runtime absent a wall-limit kill
  std::uint64_t key = 0;          ///< deterministic phase/noise stream key
  std::vector<NodeRange> nodes;   ///< filled by the scheduler

  [[nodiscard]] util::TimeSec runtime() const {
    return start >= 0 && end >= 0 ? end - start : 0;
  }
  [[nodiscard]] bool wall_killed() const {
    return natural_runtime > requested_walltime;
  }
  [[nodiscard]] double node_hours() const {
    return static_cast<double>(node_count) * static_cast<double>(runtime()) /
           3600.0;
  }
  [[nodiscard]] util::TimeRange interval() const { return {start, end}; }

  /// Expand the range-compressed allocation into explicit node ids.
  [[nodiscard]] std::vector<machine::NodeId> node_list() const {
    std::vector<machine::NodeId> out;
    out.reserve(static_cast<std::size_t>(node_count));
    for (const auto& r : nodes) {
      for (int i = 0; i < r.count; ++i) out.push_back(r.first + i);
    }
    return out;
  }
  /// The node id at allocation rank `i` without materializing the list.
  [[nodiscard]] machine::NodeId node_at(int i) const {
    for (const auto& r : nodes) {
      if (i < r.count) return r.first + i;
      i -= r.count;
    }
    return -1;
  }
};

}  // namespace exawatt::workload
