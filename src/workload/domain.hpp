#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace exawatt::workload {

/// DOE Office of Science domains Summit serves (paper §2 and Figure 8).
/// Each domain carries an application mix: which archetypes its projects
/// run and with what weight — this is what makes per-domain power/energy
/// distributions differ in Figure 8.
struct ScienceDomain {
  std::string name;
  /// (app catalog index, weight) pairs; see app_catalog().
  std::vector<std::pair<std::size_t, double>> app_mix;
};

[[nodiscard]] const std::vector<ScienceDomain>& domain_catalog();

/// A funded project (OLCF allocation): belongs to one domain, prefers a
/// subset of its domain's apps, has a characteristic job scale, and a
/// failure propensity multiplier (Figure 14 shows order-of-magnitude
/// variation in failures per node-hour across projects).
struct Project {
  std::uint32_t id = 0;
  std::string name;
  std::size_t domain = 0;       ///< index into domain_catalog()
  std::size_t preferred_app = 0;///< index into app_catalog()
  double scale_bias = 0.0;      ///< shifts node-count draws up/down (z units)
  double failure_propensity = 1.0;  ///< multiplies XID rates for its jobs
};

/// Deterministically generate `count` projects across the domains.
[[nodiscard]] std::vector<Project> generate_projects(std::size_t count,
                                                     util::Rng rng);

}  // namespace exawatt::workload
