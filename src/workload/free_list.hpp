#pragma once

#include <algorithm>
#include <vector>

#include "workload/job.hpp"

namespace exawatt::workload {

/// Free-node bookkeeping as sorted, coalesced [first, first+count) ranges —
/// shared by the baseline EASY-backfill scheduler and the power-aware
/// variant.
class FreeList {
 public:
  explicit FreeList(int nodes) : free_nodes_(nodes) {
    ranges_.push_back({0, nodes});
  }

  [[nodiscard]] int free_nodes() const { return free_nodes_; }

  /// First-fit allocation of `count` nodes; empty result if insufficient.
  std::vector<NodeRange> allocate(int count) {
    if (count > free_nodes_) return {};
    std::vector<NodeRange> out;
    int need = count;
    std::size_t i = 0;
    while (need > 0 && i < ranges_.size()) {
      NodeRange& r = ranges_[i];
      const int take = std::min(need, r.count);
      out.push_back({r.first, take});
      r.first += take;
      r.count -= take;
      need -= take;
      if (r.count == 0) {
        ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    free_nodes_ -= count;
    return out;
  }

  void release(const std::vector<NodeRange>& ranges) {
    for (const auto& r : ranges) {
      auto it = std::lower_bound(ranges_.begin(), ranges_.end(), r,
                                 [](const NodeRange& a, const NodeRange& b) {
                                   return a.first < b.first;
                                 });
      it = ranges_.insert(it, r);
      if (it != ranges_.begin()) {
        auto prev = it - 1;
        if (prev->first + prev->count == it->first) {
          prev->count += it->count;
          it = ranges_.erase(it) - 1;
        }
      }
      auto next = it + 1;
      if (next != ranges_.end() && it->first + it->count == next->first) {
        it->count += next->count;
        ranges_.erase(next);
      }
      free_nodes_ += r.count;
    }
  }

 private:
  std::vector<NodeRange> ranges_;
  int free_nodes_ = 0;
};

}  // namespace exawatt::workload
