#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace exawatt::workload {

/// Instantaneous component utilization of a job (averaged across its
/// nodes). The power module converts this to watts.
struct Utilization {
  double cpu = 0.0;  ///< 0..1 of CPU package activity
  double gpu = 0.0;  ///< 0..1 of GPU activity
};

/// Phase-structured synchronous-parallel behaviour: HPC applications
/// alternate between compute bursts and communication/IO valleys in
/// lockstep across their nodes — the root cause of the cluster-level
/// power swings the paper quantifies (§4.2: ~200 s periods dominate;
/// ~60 s spikes ride the 4 MW edges).
struct PhaseProfile {
  double period_s = 200.0;   ///< main compute/comm oscillation period
  double duty = 0.7;         ///< fraction of a period at the high level
  double ramp_s = 15.0;      ///< rise/fall time between levels
  double cpu_low = 0.15;
  double cpu_high = 0.35;
  double gpu_low = 0.10;
  double gpu_high = 0.85;
  double spike_period_s = 0.0;  ///< optional short-period spike train
  double spike_duty = 0.1;
  double spike_gpu = 0.0;       ///< extra GPU util during a spike
  double noise_sigma = 0.02;    ///< multiplicative per-sample jitter
};

/// An application archetype: the statistical fingerprint of one code
/// (e.g. an LSMS-like GPU solver, a CPU-side climate code, an ML trainer).
struct AppArchetype {
  std::string name;
  PhaseProfile phases;
  util::TimeSec startup_s = 45;      ///< idle -> load ramp at job start
  util::TimeSec checkpoint_every_s = 0;  ///< long dips (0 = none)
  util::TimeSec checkpoint_len_s = 0;
  bool is_ml = false;
  /// Weight when drawing an app for a job of a given class (index 0 ==
  /// class 1). Leadership codes rarely run at 4 nodes and vice versa.
  std::array<double, 5> class_affinity = {1, 1, 1, 1, 1};
};

/// Evaluate an archetype's mean utilization at `t` seconds into a job.
/// `job_key` decorrelates phase offsets between jobs deterministically.
/// The final wind-down is modelled by the caller (scheduler knows the end).
[[nodiscard]] Utilization evaluate_app(const AppArchetype& app,
                                       util::TimeSec t_in_job,
                                       std::uint64_t job_key);

/// Built-in archetype catalog spanning the paper's behaviour classes:
/// GPU-dominant leadership codes, CPU-heavy codes, deep-swing codes
/// (edge generators), spiky mid-scale codes, ML trainers, IO-bound codes.
[[nodiscard]] const std::vector<AppArchetype>& app_catalog();

/// Index lookup by name (EXA_CHECK fails on unknown names).
[[nodiscard]] std::size_t app_index(const std::string& name);

}  // namespace exawatt::workload
