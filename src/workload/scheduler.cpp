#include "workload/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "util/check.hpp"
#include "workload/free_list.hpp"

namespace exawatt::workload {

namespace {

struct Release {
  util::TimeSec end;
  std::size_t job;
  bool operator>(const Release& o) const { return end > o.end; }
};

}  // namespace

Scheduler::Scheduler(machine::MachineScale scale) : scale_(scale) {
  EXA_CHECK(scale_.nodes > 0, "scheduler needs a machine");
}

SchedulerStats Scheduler::run(std::vector<Job>& jobs, util::TimeSec horizon) {
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXA_CHECK(jobs[i - 1].submit <= jobs[i].submit,
              "jobs must be sorted by submit time");
  }
  SchedulerStats stats;
  FreeList free_list(scale_.nodes);
  std::priority_queue<Release, std::vector<Release>, std::greater<>> running;
  std::deque<std::size_t> pending;
  double total_wait = 0.0;
  double busy_node_seconds = 0.0;
  util::TimeSec sim_begin = jobs.empty() ? 0 : jobs.front().submit;

  auto start_job = [&](std::size_t idx, util::TimeSec now) {
    Job& j = jobs[idx];
    j.nodes = free_list.allocate(j.node_count);
    j.start = now;
    const util::TimeSec run = std::min(j.natural_runtime, j.requested_walltime);
    j.end = std::min(now + run, horizon);
    running.push({j.end, idx});
    ++stats.scheduled;
    total_wait += static_cast<double>(now - j.submit);
    busy_node_seconds +=
        static_cast<double>(j.node_count) * static_cast<double>(j.end - now);
  };

  // EASY backfill pass at time `now`: start the queue head if it fits;
  // otherwise reserve the earliest time the head could start and let
  // younger jobs through only when they cannot delay that reservation.
  auto try_schedule = [&](util::TimeSec now) {
    while (!pending.empty()) {
      const std::size_t head = pending.front();
      if (jobs[head].node_count <= free_list.free_nodes()) {
        pending.pop_front();
        start_job(head, now);
        continue;
      }
      // Shadow computation: walk running jobs in end order accumulating
      // released nodes until the head fits.
      util::TimeSec shadow = horizon;
      int extra_at_shadow = 0;
      {
        auto copy = running;
        int avail = free_list.free_nodes();
        while (!copy.empty()) {
          const Release r = copy.top();
          copy.pop();
          avail += jobs[r.job].node_count;
          if (avail >= jobs[head].node_count) {
            shadow = r.end;
            extra_at_shadow = avail - jobs[head].node_count;
            break;
          }
        }
      }
      // Backfill candidates (bounded scan keeps the year run cheap).
      int spare_now = free_list.free_nodes();
      int reserved_extra = extra_at_shadow;
      std::size_t scanned = 0;
      for (auto it = pending.begin() + 1;
           it != pending.end() && scanned < 256 && spare_now > 0; ++scanned) {
        Job& j = jobs[*it];
        const bool fits_now = j.node_count <= spare_now;
        const bool ends_before_shadow =
            now + j.requested_walltime <= shadow;
        const bool within_spare = j.node_count <= reserved_extra;
        if (fits_now && (ends_before_shadow || within_spare)) {
          const std::size_t idx = *it;
          it = pending.erase(it);
          start_job(idx, now);
          ++stats.backfilled;
          spare_now = free_list.free_nodes();
          if (!ends_before_shadow) reserved_extra -= jobs[idx].node_count;
        } else {
          ++it;
        }
      }
      break;  // head still blocked; wait for the next release
    }
  };

  auto drain_until = [&](util::TimeSec t) {
    while (!running.empty() && running.top().end <= t) {
      const Release r = running.top();
      running.pop();
      free_list.release(jobs[r.job].nodes);
      // Nothing can start at (or past) the horizon: a start there would
      // produce zero-length allocations in the trace.
      if (r.end < horizon) try_schedule(r.end);
    }
  };

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    drain_until(jobs[i].submit);
    pending.push_back(i);
    stats.max_queue_depth = std::max(stats.max_queue_depth, pending.size());
    try_schedule(jobs[i].submit);
  }
  drain_until(horizon);

  stats.unscheduled = pending.size();
  for (std::size_t idx : pending) {
    jobs[idx].start = -1;
    jobs[idx].end = -1;
  }
  if (stats.scheduled > 0) {
    stats.mean_wait_s = total_wait / static_cast<double>(stats.scheduled);
  }
  const double capacity = static_cast<double>(scale_.nodes) *
                          static_cast<double>(horizon - sim_begin);
  if (capacity > 0.0) stats.utilization = busy_node_seconds / capacity;
  return stats;
}

}  // namespace exawatt::workload
