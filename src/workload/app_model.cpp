#include "workload/app_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace exawatt::workload {

namespace {

/// Trapezoid wave in [0,1]: high for `duty` of the period with linear
/// ramps of `ramp_s` — the canonical shape of a bulk-synchronous
/// compute/communicate cycle.
double trapezoid(double s, double period, double duty, double ramp) {
  const double high_len = duty * period;
  ramp = std::min(ramp, 0.45 * std::min(high_len, period - high_len));
  if (ramp <= 0.0) return s < high_len ? 1.0 : 0.0;
  if (s < ramp) return s / ramp;
  if (s < high_len) return 1.0;
  if (s < high_len + ramp) return 1.0 - (s - high_len) / ramp;
  return 0.0;
}

/// Deterministic pseudo-noise in [-1, 1] keyed by (job, second).
double unit_noise(std::uint64_t job_key, util::TimeSec t) {
  const std::uint64_t h = util::mix64(job_key ^ (0x9e3779b97f4a7c15ULL *
                                                 static_cast<std::uint64_t>(t)));
  return (static_cast<double>(h >> 11) * 0x1.0p-53) * 2.0 - 1.0;
}

double wrap_mod(double x, double m) {
  const double r = std::fmod(x, m);
  return r < 0.0 ? r + m : r;
}

}  // namespace

Utilization evaluate_app(const AppArchetype& app, util::TimeSec t_in_job,
                         std::uint64_t job_key) {
  EXA_CHECK(app.phases.period_s > 0.0, "phase period must be positive");
  const PhaseProfile& p = app.phases;
  const auto t = static_cast<double>(t_in_job);

  // Per-job deterministic phase offsets, one per mechanism.
  const double off_main =
      static_cast<double>(util::mix64(job_key) % 100000) * 1e-5 * p.period_s;
  const double f =
      trapezoid(wrap_mod(t + off_main, p.period_s), p.period_s, p.duty,
                p.ramp_s);

  Utilization u;
  u.cpu = p.cpu_low + (p.cpu_high - p.cpu_low) * f;
  u.gpu = p.gpu_low + (p.gpu_high - p.gpu_low) * f;

  if (p.spike_period_s > 0.0 && p.spike_gpu > 0.0) {
    const double off_spike =
        static_cast<double>(util::mix64(job_key ^ 0x51ceb9ULL) % 1000) * 1e-3 *
        p.spike_period_s;
    const double s = wrap_mod(t + off_spike, p.spike_period_s);
    if (s < p.spike_duty * p.spike_period_s) u.gpu += p.spike_gpu;
  }

  if (app.checkpoint_every_s > 0 && app.checkpoint_len_s > 0) {
    const double every = static_cast<double>(app.checkpoint_every_s);
    const double off_ckpt =
        static_cast<double>(util::mix64(job_key ^ 0xc4e1ULL) % 1000) * 1e-3 *
        every;
    const double s = wrap_mod(t + off_ckpt, every);
    if (s < static_cast<double>(app.checkpoint_len_s)) {
      // GPUs drain partially while ranks write the checkpoint; the dip is
      // deliberately < 868 W/node so checkpoints do not register as edges
      // (the paper finds 96.9% of jobs edge-free).
      u.gpu *= 0.55;
      u.cpu *= 0.80;
    }
  }

  // Launch ramp: MPI_Init / data staging before the solver spins up.
  if (app.startup_s > 0 && t_in_job < app.startup_s) {
    const double g = t / static_cast<double>(app.startup_s);
    u.cpu *= g;
    u.gpu *= g;
  }

  if (p.noise_sigma > 0.0) {
    const double n = 1.0 + p.noise_sigma * unit_noise(job_key, t_in_job);
    u.cpu *= n;
    u.gpu *= n;
  }

  u.cpu = std::clamp(u.cpu, 0.0, 1.0);
  u.gpu = std::clamp(u.gpu, 0.0, 1.0);
  return u;
}

const std::vector<AppArchetype>& app_catalog() {
  static const std::vector<AppArchetype> catalog = [] {
    std::vector<AppArchetype> apps;
    auto add = [&](AppArchetype a) { apps.push_back(std::move(a)); };

    // GPU-dominant leadership solvers (BerkeleyGW/LSMS-like): high duty,
    // ~200 s phase period — the common frequency Figure 10 reports.
    add({.name = "gw-solver",
         .phases = {.period_s = 200, .duty = 0.66, .ramp_s = 18,
                    .cpu_low = 0.18, .cpu_high = 0.32, .gpu_low = 0.25,
                    .gpu_high = 0.95, .noise_sigma = 0.02},
         .startup_s = 60, .class_affinity = {8, 5, 1.5, 0.3, 0.1}});
    add({.name = "lattice-qcd",
         .phases = {.period_s = 120, .duty = 0.72, .ramp_s = 12,
                    .cpu_low = 0.15, .cpu_high = 0.25, .gpu_low = 0.35,
                    .gpu_high = 0.92, .noise_sigma = 0.015},
         .startup_s = 45, .checkpoint_every_s = 2400,
         .checkpoint_len_s = 45, .class_affinity = {6, 5, 2, 0.5, 0.2}});

    // Deep-swing leadership code: long staged phases with fast (<10 s)
    // transitions -> the rare, sustained multi-MW edges of Figures 10-12.
    add({.name = "fusion-pic",
         .phases = {.period_s = 26000, .duty = 0.55, .ramp_s = 8,
                    .cpu_low = 0.2, .cpu_high = 0.35, .gpu_low = 0.06,
                    .gpu_high = 0.96, .spike_period_s = 60,
                    .spike_duty = 0.12, .spike_gpu = 0.15,
                    .noise_sigma = 0.02},
         .startup_s = 90, .class_affinity = {4, 2.5, 0.5, 0.1, 0.05}});

    // Mid-scale deep-swing code: frequent short edges; class-4 affine —
    // the paper finds class 4 has the most edges with the shortest
    // durations.
    add({.name = "md-replica",
         .phases = {.period_s = 240, .duty = 0.5, .ramp_s = 8,
                    .cpu_low = 0.25, .cpu_high = 0.4, .gpu_low = 0.05,
                    .gpu_high = 0.9, .noise_sigma = 0.03},
         .startup_s = 30, .class_affinity = {0.05, 0.3, 1, 8, 0.7}});

    // CPU-heavy codes (climate / CFD on the Power9s): define the average
    // power floor, GPUs near idle.
    add({.name = "climate-cpu",
         .phases = {.period_s = 320, .duty = 0.7, .ramp_s = 25,
                    .cpu_low = 0.4, .cpu_high = 0.85, .gpu_low = 0.02,
                    .gpu_high = 0.07, .noise_sigma = 0.02},
         .startup_s = 60, .class_affinity = {0.3, 1.5, 3, 3, 2}});
    add({.name = "cfd-structured",
         .phases = {.period_s = 450, .duty = 0.75, .ramp_s = 30,
                    .cpu_low = 0.35, .cpu_high = 0.75, .gpu_low = 0.03,
                    .gpu_high = 0.12, .noise_sigma = 0.02},
         .startup_s = 45, .class_affinity = {0.2, 1, 2.5, 2.5, 2}});

    // Spiky mid-scale molecular dynamics: short-period spike trains.
    add({.name = "md-spiky",
         .phases = {.period_s = 90, .duty = 0.6, .ramp_s = 8,
                    .cpu_low = 0.3, .cpu_high = 0.45, .gpu_low = 0.45,
                    .gpu_high = 0.75, .spike_period_s = 60, .spike_duty = 0.15,
                    .spike_gpu = 0.12, .noise_sigma = 0.04},
         .startup_s = 25, .class_affinity = {0.1, 0.5, 3, 4, 4}});

    // ML training: sustained high GPU with periodic checkpoint dips.
    add({.name = "ml-train",
         .phases = {.period_s = 150, .duty = 0.9, .ramp_s = 10,
                    .cpu_low = 0.2, .cpu_high = 0.3, .gpu_low = 0.75,
                    .gpu_high = 0.93, .noise_sigma = 0.02},
         .startup_s = 120, .checkpoint_every_s = 1800,
         .checkpoint_len_s = 60, .is_ml = true,
         .class_affinity = {0.5, 1.5, 3, 3, 3}});

    // Moderate GPU codes across domains.
    add({.name = "astro-hydro",
         .phases = {.period_s = 260, .duty = 0.55, .ramp_s = 20,
                    .cpu_low = 0.25, .cpu_high = 0.4, .gpu_low = 0.3,
                    .gpu_high = 0.82, .noise_sigma = 0.025},
         .startup_s = 60, .checkpoint_every_s = 3600,
         .checkpoint_len_s = 120, .class_affinity = {2, 3, 3, 1, 0.5}});
    add({.name = "chem-dft",
         .phases = {.period_s = 180, .duty = 0.58, .ramp_s = 15,
                    .cpu_low = 0.3, .cpu_high = 0.45, .gpu_low = 0.35,
                    .gpu_high = 0.88, .noise_sigma = 0.02},
         .startup_s = 40, .class_affinity = {1, 2.5, 4, 2, 1}});
    add({.name = "nuclear-transport",
         .phases = {.period_s = 220, .duty = 0.6, .ramp_s = 18,
                    .cpu_low = 0.3, .cpu_high = 0.45, .gpu_low = 0.4,
                    .gpu_high = 0.78, .noise_sigma = 0.02},
         .startup_s = 50, .class_affinity = {1.5, 2, 2, 1, 0.5}});

    // Low-power long tail: IO-bound pipelines and interactive/debug use.
    add({.name = "io-pipeline",
         .phases = {.period_s = 500, .duty = 0.35, .ramp_s = 40,
                    .cpu_low = 0.15, .cpu_high = 0.45, .gpu_low = 0.03,
                    .gpu_high = 0.25, .noise_sigma = 0.03},
         .startup_s = 30, .class_affinity = {0.05, 0.3, 1, 2, 4}});
    add({.name = "debug-interactive",
         .phases = {.period_s = 300, .duty = 0.3, .ramp_s = 30,
                    .cpu_low = 0.08, .cpu_high = 0.3, .gpu_low = 0.02,
                    .gpu_high = 0.35, .noise_sigma = 0.05},
         .startup_s = 20, .class_affinity = {0.01, 0.05, 0.5, 1.5, 6}});
    add({.name = "bio-genomics",
         .phases = {.period_s = 140, .duty = 0.55, .ramp_s = 12,
                    .cpu_low = 0.45, .cpu_high = 0.65, .gpu_low = 0.15,
                    .gpu_high = 0.42, .noise_sigma = 0.03},
         .startup_s = 30, .class_affinity = {0.2, 0.8, 2, 3, 3}});
    return apps;
  }();
  return catalog;
}

std::size_t app_index(const std::string& name) {
  const auto& apps = app_catalog();
  for (std::size_t i = 0; i < apps.size(); ++i) {
    if (apps[i].name == name) return i;
  }
  EXA_CHECK(false, "unknown application archetype: " + name);
  return 0;  // unreachable
}

}  // namespace exawatt::workload
