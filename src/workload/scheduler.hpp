#pragma once

#include <cstdint>
#include <vector>

#include "machine/spec.hpp"
#include "util/sim_time.hpp"
#include "workload/job.hpp"

namespace exawatt::workload {

/// Aggregate outcome of one scheduling run.
struct SchedulerStats {
  std::size_t scheduled = 0;     ///< jobs that received nodes
  std::size_t backfilled = 0;    ///< started ahead of an older waiting job
  std::size_t unscheduled = 0;   ///< still queued at the horizon
  std::size_t max_queue_depth = 0;
  double mean_wait_s = 0.0;
  double utilization = 0.0;      ///< allocated node-seconds / capacity
};

/// LSF-like batch scheduler with FCFS + EASY backfill: the oldest waiting
/// job gets a reservation at the earliest instant enough nodes free up;
/// younger jobs may jump ahead only if they fit right now without pushing
/// that reservation back. This is the allocation policy shaping the
/// paper's job-history datasets (C/D).
class Scheduler {
 public:
  explicit Scheduler(machine::MachineScale scale);

  /// Assign start/end times and node ranges in-place. `jobs` must be
  /// sorted by submit time. Jobs not started before `horizon` keep
  /// start == -1. Running jobs are cut off at the horizon (end clamped),
  /// mirroring an end-of-trace snapshot.
  SchedulerStats run(std::vector<Job>& jobs, util::TimeSec horizon);

 private:
  machine::MachineScale scale_;
};

}  // namespace exawatt::workload
