#include "workload/allocation_index.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace exawatt::workload {

AllocationIndex::AllocationIndex(const std::vector<Job>& jobs,
                                 util::TimeRange window, int machine_nodes) {
  EXA_CHECK(machine_nodes > 0, "allocation index needs a machine");
  per_node_.resize(static_cast<std::size_t>(machine_nodes));
  for (const auto& job : jobs) {
    if (job.start < 0) continue;
    if (!job.interval().overlaps(window)) continue;
    int rank = 0;
    for (const auto& r : job.nodes) {
      for (int i = 0; i < r.count; ++i, ++rank) {
        const machine::NodeId n = r.first + i;
        if (n >= 0 && n < machine_nodes) {
          per_node_[static_cast<std::size_t>(n)].push_back(
              {job.start, job.end, &job, rank});
        }
      }
    }
  }
  for (auto& spans : per_node_) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.begin < b.begin; });
  }
}

const Job* AllocationIndex::job_at(machine::NodeId node, util::TimeSec t,
                                   int* rank) const {
  const auto& spans = per_node_[static_cast<std::size_t>(node)];
  // Last span starting at or before t.
  auto it = std::upper_bound(
      spans.begin(), spans.end(), t,
      [](util::TimeSec v, const Span& s) { return v < s.begin; });
  if (it == spans.begin()) return nullptr;
  --it;
  if (t >= it->begin && t < it->end) {
    if (rank != nullptr) *rank = it->rank;
    return it->job;
  }
  return nullptr;
}

const std::vector<AllocationIndex::Span>& AllocationIndex::spans(
    machine::NodeId node) const {
  EXA_CHECK(node >= 0 &&
                node < static_cast<machine::NodeId>(per_node_.size()),
            "node out of range");
  return per_node_[static_cast<std::size_t>(node)];
}

}  // namespace exawatt::workload
