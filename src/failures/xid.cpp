#include "failures/xid.hpp"

#include "util/check.hpp"

namespace exawatt::failures {

const char* xid_name(XidType type) {
  switch (type) {
    case XidType::kMemoryPageFault: return "Memory page fault";
    case XidType::kGraphicsEngineException: return "Graphics engine exception";
    case XidType::kStoppedProcessing: return "Stopped processing";
    case XidType::kNvlinkError: return "NVLINK error";
    case XidType::kPageRetirementEvent: return "Page retirement event";
    case XidType::kPageRetirementFailure: return "Page retirement failure";
    case XidType::kDoubleBitError: return "Double-bit error";
    case XidType::kPreemptiveCleanup: return "Preemptive cleanup";
    case XidType::kMicrocontrollerWarning:
      return "Internal microcontroller warning";
    case XidType::kGraphicsEngineFault: return "Graphics engine fault";
    case XidType::kFallenOffBus: return "Fallen off the bus";
    case XidType::kMicrocontrollerHalt: return "Internal microcontroller halt";
    case XidType::kDriverFirmwareError: return "Driver firmware error";
    case XidType::kDriverErrorHandling:
      return "Driver error handling exception";
    case XidType::kCorruptedPushBuffer: return "Corrupted push buffer stream";
    case XidType::kGraphicsEngineClassError:
      return "Graphics engine class error";
    case XidType::kCount: break;
  }
  EXA_CHECK(false, "invalid XID type");
  return "";
}

bool xid_is_application(XidType type) {
  switch (type) {
    case XidType::kMemoryPageFault:
    case XidType::kGraphicsEngineException:
    case XidType::kStoppedProcessing:
      return true;
    default:
      return false;
  }
}

const std::array<XidProfile, kXidTypeCount>& xid_profiles() {
  // Slot weight vocabulary: baseline reflects single-GPU/single-socket
  // jobs landing on slot 0 and generally lighter use of socket 1.
  static constexpr std::array<double, 6> kBase = {2.6, 1.4, 1.1,
                                                  1.0, 0.9, 0.8};
  static constexpr std::array<double, 6> kSlot4Bump = {1.6, 1.0, 0.9,
                                                       1.1, 3.2, 0.9};
  static constexpr std::array<double, 6> kSocket1Bump = {1.4, 0.9, 0.8,
                                                         1.8, 2.0, 1.7};
  static const std::array<XidProfile, kXidTypeCount> profiles = {{
      {XidType::kMemoryPageFault, 186496, 0.006, ThermalSkew::kNone, kBase,
       1.6, 0},
      {XidType::kGraphicsEngineException, 32339, 0.008, ThermalSkew::kNone,
       kBase, 1.5, 0},
      {XidType::kStoppedProcessing, 22649, 0.005, ThermalSkew::kNone, kBase,
       1.4, 0},
      {XidType::kNvlinkError, 8736, 0.969, ThermalSkew::kNone, kBase, 0.4, 3},
      {XidType::kPageRetirementEvent, 851, 0.043, ThermalSkew::kNone,
       kSlot4Bump, 0.5, 1},
      {XidType::kPageRetirementFailure, 210, 0.424, ThermalSkew::kRight,
       kBase, 0.3, 1},
      {XidType::kDoubleBitError, 179, 0.184, ThermalSkew::kRight, kSlot4Bump,
       0.4, 1},
      {XidType::kPreemptiveCleanup, 162, 0.201, ThermalSkew::kNone, kBase,
       0.4, 1},
      {XidType::kMicrocontrollerWarning, 74, 0.446, ThermalSkew::kRight,
       kBase, 0.3, 2},
      {XidType::kGraphicsEngineFault, 44, 0.114, ThermalSkew::kLeft, kBase,
       0.8, 0},
      {XidType::kFallenOffBus, 31, 0.258, ThermalSkew::kRight, kSocket1Bump,
       1.2, 0},
      {XidType::kMicrocontrollerHalt, 29, 0.138, ThermalSkew::kNone, kBase,
       0.4, 2},
      {XidType::kDriverFirmwareError, 26, 0.077, ThermalSkew::kNone, kBase,
       0.5, 0},
      {XidType::kDriverErrorHandling, 21, 1.0, ThermalSkew::kRight, kBase,
       0.2, 2},
      {XidType::kCorruptedPushBuffer, 11, 0.818, ThermalSkew::kNone, kBase,
       0.3, 0},
      {XidType::kGraphicsEngineClassError, 1, 1.0, ThermalSkew::kNone, kBase,
       0.5, 0},
  }};
  return profiles;
}

}  // namespace exawatt::failures
