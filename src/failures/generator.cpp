#include "failures/generator.hpp"

#include <algorithm>
#include <cmath>

#include "power/component.hpp"
#include "power/job_power.hpp"
#include "thermal/node_thermal.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace exawatt::failures {

namespace {

/// Zero-mean unit-variance draw with the requested skew shape:
/// right skew uses a shifted Gamma(k=2) (skewness ~1.4), matching the
/// "failures on GPUs that did not yet warm up" tail of Figure 15 —
/// note the *temperature* tail: right-skewed z means mode below mean.
double skewed_z(ThermalSkew skew, util::Rng& rng) {
  switch (skew) {
    case ThermalSkew::kNone:
      return rng.normal();
    case ThermalSkew::kRight: {
      const double theta = 1.0 / std::sqrt(2.0);
      const double g = rng.exponential(1.0 / theta) +
                       rng.exponential(1.0 / theta);  // Gamma(2, theta)
      return g - 2.0 * theta;
    }
    case ThermalSkew::kLeft: {
      const double theta = 1.0 / std::sqrt(2.0);
      const double g = rng.exponential(1.0 / theta) +
                       rng.exponential(1.0 / theta);
      return 2.0 * theta - g;
    }
  }
  return 0.0;
}

}  // namespace

FailureGenerator::FailureGenerator(machine::MachineScale scale,
                                   std::vector<workload::Project> projects,
                                   FailureModelConfig config)
    : scale_(scale), projects_(std::move(projects)), config_(config) {
  EXA_CHECK(scale_.nodes > 0, "failure model needs a machine");
  EXA_CHECK(!projects_.empty(), "failure model needs the project table");
  EXA_CHECK(config_.defect_pool > 0, "defect pool must be non-empty");
  // Deterministic weak-node pool (manufacturing-defect candidates).
  util::Rng rng(util::hash_combine(config_.seed, 0xdefecULL));
  const int pool = std::min(config_.defect_pool, scale_.nodes);
  std::vector<bool> used(static_cast<std::size_t>(scale_.nodes), false);
  while (static_cast<int>(defect_nodes_.size()) < pool) {
    const auto n = static_cast<machine::NodeId>(
        rng.uniform_index(static_cast<std::uint64_t>(scale_.nodes)));
    if (!used[static_cast<std::size_t>(n)]) {
      used[static_cast<std::size_t>(n)] = true;
      defect_nodes_.push_back(n);
    }
  }
}

machine::NodeId FailureGenerator::nvlink_offender() const {
  return defect_nodes_.front();
}

machine::NodeId FailureGenerator::uc_driver_node() const {
  return defect_nodes_.back();
}

std::vector<GpuFailureEvent> FailureGenerator::generate(
    const std::vector<workload::Job>& jobs) const {
  // --- Job sampling weights: node-hours x project irregularity ----------
  std::vector<std::size_t> sched;   // indices of scheduled jobs
  std::vector<double> cum_weight;   // cumulative, per profile coupling = 1
  double total_node_hours = 0.0;
  sched.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].start < 0 || jobs[i].end <= jobs[i].start) continue;
    sched.push_back(i);
    total_node_hours += jobs[i].node_hours();
  }
  std::vector<GpuFailureEvent> events;
  if (sched.empty() || total_node_hours <= 0.0) return events;

  const double exposure =
      total_node_hours / config_.reference_node_hours * config_.rate_scale;

  const thermal::FleetThermal thermals(scale_, config_.seed);
  const auto& profiles = xid_profiles();
  util::Rng master(config_.seed);

  // Per-type cumulative job weights: weight = nh * propensity^coupling.
  // Couplings cluster around a few values; cache by rounded coupling.
  auto build_cum = [&](double coupling) {
    std::vector<double> cum(sched.size());
    double acc = 0.0;
    for (std::size_t k = 0; k < sched.size(); ++k) {
      const workload::Job& j = jobs[sched[k]];
      const double prop =
          projects_[j.project % projects_.size()].failure_propensity;
      acc += j.node_hours() * std::pow(prop, coupling);
      cum[k] = acc;
    }
    return cum;
  };

  auto pick_job = [&](const std::vector<double>& cum, util::Rng& rng) {
    const double r = rng.uniform() * cum.back();
    const auto it = std::lower_bound(cum.begin(), cum.end(), r);
    return sched[static_cast<std::size_t>(
        std::distance(cum.begin(), it))];
  };

  // Zipf weights over the hardware-defect pool, shared across the block's
  // types so their per-node counts correlate (Figure 13). The NVLink
  // super-offender (front) and the microcontroller/driver node (back)
  // are excluded so those signatures stay independent, as in the paper.
  std::vector<machine::NodeId> hw_pool(defect_nodes_.begin() + 1,
                                       defect_nodes_.end() - 1);
  if (hw_pool.empty()) hw_pool.push_back(defect_nodes_.front());
  std::vector<double> pool_weights(hw_pool.size());
  for (std::size_t i = 0; i < pool_weights.size(); ++i) {
    pool_weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 1.6);
  }

  // Thermal context of a failing GPU inside its job.
  auto thermal_context = [&](const workload::Job& job, util::TimeSec t,
                             ThermalSkew skew, util::Rng& rng,
                             GpuFailureEvent& ev) {
    const workload::Utilization u = power::job_utilization(job, t);
    const double gpu_w = power::gpu_power_w(u.gpu);
    const double mean_temp =
        config_.mtw_supply_c +
        thermals.params().gpu_r_mean_c_per_w * gpu_w +
        thermals.params().chain_c_per_w * gpu_w;  // mean chain preheat
    // Spread across the job's GPUs: resistance variability dominates,
    // with cabinet placement adding a floor-position term.
    const double sigma = std::sqrt(
        std::pow(thermals.params().gpu_r_mean_c_per_w *
                     thermals.params().gpu_r_sigma * gpu_w,
                 2.0) +
        std::pow(thermals.params().cabinet_sigma_c, 2.0));
    ev.z_score = skewed_z(skew, rng);
    ev.temp_c = mean_temp + ev.z_score * std::max(sigma, 0.5);
  };

  auto sample_slot = [&](const XidProfile& p, util::Rng& rng) {
    return static_cast<int>(rng.weighted_index(p.slot_weights));
  };

  // --- Per-type generation ----------------------------------------------
  std::vector<GpuFailureEvent> uc_warnings_on_defect_node;
  for (const auto& profile : profiles) {
    if (profile.type == XidType::kDriverErrorHandling) {
      continue;  // generated causally from microcontroller warnings below
    }
    util::Rng rng = master.substream(
        0xfa11ULL, static_cast<std::uint64_t>(profile.type));
    const double expected = profile.annual_count * exposure;
    if (expected <= 0.0) continue;
    const std::uint64_t count = rng.poisson(expected);
    const std::uint64_t defect_count = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(count) * profile.top_node_share));
    const std::vector<double> cum = build_cum(profile.workload_coupling);

    for (std::uint64_t e = 0; e < count; ++e) {
      const std::size_t ji = pick_job(cum, rng);
      const workload::Job& job = jobs[ji];
      GpuFailureEvent ev;
      ev.type = profile.type;
      ev.job = job.id;
      ev.project = job.project;
      ev.domain = job.domain;
      ev.time = job.start + static_cast<util::TimeSec>(rng.uniform_index(
                    static_cast<std::uint64_t>(job.end - job.start)));
      ev.slot = sample_slot(profile, rng);

      const bool is_defect = e < defect_count;
      if (is_defect) {
        switch (profile.latent_group) {
          case 3:  // NVLink: one permanent chip malfunction
            ev.node = nvlink_offender();
            break;
          case 2:  // microcontroller/driver pair node
            ev.node = uc_driver_node();
            break;
          case 1:  // hardware-defect pool, zipf-shared across types
            ev.node = hw_pool[rng.weighted_index(pool_weights)];
            break;
          default:  // a type-specific flaky node
            ev.node = defect_nodes_[util::hash_combine(
                          config_.seed,
                          static_cast<std::uint64_t>(profile.type)) %
                      defect_nodes_.size()];
        }
      } else {
        ev.node = job.node_at(static_cast<int>(
            rng.uniform_index(static_cast<std::uint64_t>(job.node_count))));
        // Hardware-defect block: even background events lean toward the
        // weak pool, strengthening the co-occurrence correlations.
        if (profile.latent_group == 1 && rng.chance(0.35)) {
          ev.node = hw_pool[rng.weighted_index(pool_weights)];
        }
      }
      thermal_context(job, ev.time, profile.skew, rng, ev);
      if (profile.type == XidType::kMicrocontrollerWarning &&
          ev.node == uc_driver_node()) {
        uc_warnings_on_defect_node.push_back(ev);
      }
      events.push_back(ev);
    }
  }

  // --- Causal pair: driver errors follow warnings on the same node ------
  {
    util::Rng rng = master.substream(0xd71eULL, 0);
    const auto& driver =
        profiles[static_cast<std::size_t>(XidType::kDriverErrorHandling)];
    const auto& warning =
        profiles[static_cast<std::size_t>(XidType::kMicrocontrollerWarning)];
    // Expected defect-node warnings at full scale: share * annual count.
    const double follow_p =
        std::min(1.0, driver.annual_count /
                          (warning.annual_count * warning.top_node_share));
    for (const auto& w : uc_warnings_on_defect_node) {
      if (!rng.chance(follow_p)) continue;
      GpuFailureEvent ev = w;
      ev.type = XidType::kDriverErrorHandling;
      ev.time = w.time + static_cast<util::TimeSec>(rng.uniform_index(30) + 1);
      ev.z_score = skewed_z(driver.skew, rng);
      // Same GPU moments later: temperature barely moves.
      ev.temp_c = w.temp_c + rng.normal(0.0, 0.4);
      events.push_back(ev);
    }
  }

  std::sort(events.begin(), events.end(),
            [](const GpuFailureEvent& a, const GpuFailureEvent& b) {
              return a.time < b.time;
            });
  return events;
}

}  // namespace exawatt::failures
