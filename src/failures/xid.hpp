#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace exawatt::failures {

/// GPU failure taxonomy of paper Table 4 (NVIDIA XID classes observed on
/// Summit in 2020). Order matches the table.
enum class XidType : std::uint8_t {
  kMemoryPageFault = 0,
  kGraphicsEngineException,
  kStoppedProcessing,
  kNvlinkError,
  kPageRetirementEvent,
  kPageRetirementFailure,
  kDoubleBitError,
  kPreemptiveCleanup,
  kMicrocontrollerWarning,
  kGraphicsEngineFault,
  kFallenOffBus,
  kMicrocontrollerHalt,
  kDriverFirmwareError,
  kDriverErrorHandling,
  kCorruptedPushBuffer,
  kGraphicsEngineClassError,
  kCount,
};

inline constexpr std::size_t kXidTypeCount =
    static_cast<std::size_t>(XidType::kCount);

[[nodiscard]] const char* xid_name(XidType type);

/// Whether the paper's Table 4 classifies the type as attributable to
/// user applications (above the double ruler) vs hardware/driver (below).
[[nodiscard]] bool xid_is_application(XidType type);

/// Thermal-extremity shape of the z-score distribution at failure time
/// (paper Figure 15): most types are symmetric; double-bit, off-the-bus,
/// microcontroller warnings and page-retirement failures are
/// right-skewed ("not yet warmed up"); graphics engine faults lean left.
enum class ThermalSkew : std::uint8_t { kNone, kRight, kLeft };

/// Statistical profile of one XID type, used by the generator. Annual
/// counts are Table 4's full-scale year; the generator scales them by the
/// simulated node-hours.
struct XidProfile {
  XidType type = XidType::kMemoryPageFault;
  double annual_count = 0.0;      ///< Table 4 count for the 2020 year
  double top_node_share = 0.0;    ///< max count per node / total (Table 4)
  ThermalSkew skew = ThermalSkew::kNone;
  /// Per-slot placement weights (Figure 16): slot 0 is elevated by
  /// single-GPU jobs; a few types bump specific slots.
  std::array<double, 6> slot_weights = {1, 1, 1, 1, 1, 1};
  /// How strongly occurrence scales with workload irregularity (projects
  /// with erratic codes see more of these per node-hour).
  double workload_coupling = 1.0;
  /// Latent defect group: types in the same group co-occur on the same
  /// weak nodes, producing the Figure 13 correlation blocks.
  ///   0 = none, 1 = hardware-defect block (DBE/retirement/cleanup),
  ///   2 = microcontroller/driver pair, 3 = NVLink super-offender.
  int latent_group = 0;
};

/// Full-table profiles in Table 4 order.
[[nodiscard]] const std::array<XidProfile, kXidTypeCount>& xid_profiles();

}  // namespace exawatt::failures
