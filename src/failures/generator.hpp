#pragma once

#include <cstdint>
#include <vector>

#include "failures/xid.hpp"
#include "machine/topology.hpp"
#include "util/sim_time.hpp"
#include "workload/domain.hpp"
#include "workload/job.hpp"

namespace exawatt::failures {

/// One row of the synthetic XID error log (paper Dataset E), already
/// joined with the allocation context and the offending GPU's thermal
/// state — the joins the paper performs across Datasets D/E/10.
struct GpuFailureEvent {
  util::TimeSec time = 0;
  XidType type = XidType::kMemoryPageFault;
  machine::NodeId node = 0;
  int slot = 0;                 ///< GPU position 0..5 within the node
  workload::JobId job = 0;
  std::uint32_t project = 0;
  std::uint16_t domain = 0;
  double temp_c = 0.0;          ///< offending GPU core temp (10 s mean)
  double z_score = 0.0;         ///< vs the job-wide GPU temp distribution
};

struct FailureModelConfig {
  std::uint64_t seed = 99;
  /// Global multiplier on expected counts (lets tests run tiny logs).
  double rate_scale = 1.0;
  /// Utilized node-hours behind Table 4's annual counts (full machine,
  /// full 2020 at the calibrated ~87% utilization).
  double reference_node_hours = 35.3e6;
  /// Weak-node pool size for the hardware-defect latent group.
  int defect_pool = 10;
  double mtw_supply_c = 20.0;   ///< nominal coolant supply for temps
};

/// Generates the year's GPU failure log from the scheduled job history:
/// background rates scale with node-hours and project "irregularity",
/// defect nodes concentrate the hardware types, and correlated pairs
/// (microcontroller warning -> driver error) are generated causally.
class FailureGenerator {
 public:
  FailureGenerator(machine::MachineScale scale,
                   std::vector<workload::Project> projects,
                   FailureModelConfig config = {});

  [[nodiscard]] const FailureModelConfig& config() const { return config_; }
  /// The NVLink super-offender node (96.9% of NVLink errors).
  [[nodiscard]] machine::NodeId nvlink_offender() const;
  /// The node carrying all driver-error-handling exceptions.
  [[nodiscard]] machine::NodeId uc_driver_node() const;
  /// Hardware-defect weak-node pool.
  [[nodiscard]] const std::vector<machine::NodeId>& defect_pool() const {
    return defect_nodes_;
  }

  /// Generate the failure log for the given scheduled jobs, sorted by
  /// time. Unscheduled jobs are ignored.
  [[nodiscard]] std::vector<GpuFailureEvent> generate(
      const std::vector<workload::Job>& jobs) const;

 private:
  machine::MachineScale scale_;
  std::vector<workload::Project> projects_;
  FailureModelConfig config_;
  std::vector<machine::NodeId> defect_nodes_;
};

}  // namespace exawatt::failures
