#pragma once

#include <cstddef>
#include <vector>

#include "util/parallel.hpp"
#include "util/sim_time.hpp"

namespace exawatt::ts {

/// Partitioning plan over a time range — the mini-Dask scheduling unit.
/// The paper processed the year as per-day parquet partitions on Dask
/// workers; we mirror that: split a range into day-sized (or custom)
/// chunks and map/reduce them on the thread pool.
struct Partition {
  std::size_t index = 0;
  util::TimeRange range;
};

/// Split `range` into partitions of at most `chunk` seconds each.
[[nodiscard]] std::vector<Partition> partition_range(util::TimeRange range,
                                                     util::TimeSec chunk);

/// Map `fn(partition)` over all partitions in parallel; results ordered by
/// partition index.
template <typename Fn>
auto partitioned_map(const std::vector<Partition>& parts, Fn&& fn)
    -> std::vector<decltype(fn(parts[0]))> {
  return util::parallel_map(parts.size(),
                            [&](std::size_t i) { return fn(parts[i]); });
}

/// Map then fold: `merge(acc, part_result)` must be associative over the
/// partition order (partitions are disjoint and time-ordered).
template <typename Fn, typename R, typename Merge>
R partitioned_reduce(const std::vector<Partition>& parts, R init, Fn&& fn,
                     Merge&& merge) {
  auto results = partitioned_map(parts, std::forward<Fn>(fn));
  R acc = std::move(init);
  for (auto& r : results) acc = merge(std::move(acc), std::move(r));
  return acc;
}

}  // namespace exawatt::ts
