#include "ts/frame.hpp"

#include "util/check.hpp"

namespace exawatt::ts {

Frame::Frame(util::TimeSec start, util::TimeSec dt, std::size_t rows)
    : start_(start), dt_(dt), rows_(rows) {
  EXA_CHECK(dt_ > 0, "frame dt must be positive");
}

void Frame::set(const std::string& name, Series s) {
  EXA_CHECK(s.start() == start_ && s.dt() == dt_ && s.size() == rows_,
            "column grid must match frame grid: " + name);
  if (!columns_.contains(name)) order_.push_back(name);
  columns_.insert_or_assign(name, std::move(s));
}

void Frame::set(const std::string& name, std::vector<double> values) {
  set(name, Series(start_, dt_, std::move(values)));
}

bool Frame::has(const std::string& name) const {
  return columns_.contains(name);
}

const Series& Frame::at(const std::string& name) const {
  auto it = columns_.find(name);
  EXA_CHECK(it != columns_.end(), "no such column: " + name);
  return it->second;
}

Series& Frame::at(const std::string& name) {
  auto it = columns_.find(name);
  EXA_CHECK(it != columns_.end(), "no such column: " + name);
  return it->second;
}

Frame Frame::slice(util::TimeRange r) const {
  Frame out;
  bool first = true;
  for (const auto& name : order_) {
    Series s = at(name).slice(r);
    if (first) {
      out = Frame(s.start(), dt_, s.size());
      first = false;
    }
    out.set(name, std::move(s));
  }
  if (first) out = Frame(r.begin, dt_, 0);
  return out;
}

}  // namespace exawatt::ts
