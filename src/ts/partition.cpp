#include "ts/partition.hpp"

#include "util/check.hpp"

namespace exawatt::ts {

std::vector<Partition> partition_range(util::TimeRange range,
                                       util::TimeSec chunk) {
  EXA_CHECK(chunk > 0, "partition chunk must be positive");
  std::vector<Partition> parts;
  std::size_t idx = 0;
  for (util::TimeSec t = range.begin; t < range.end; t += chunk) {
    parts.push_back(
        {idx++, {t, t + chunk < range.end ? t + chunk : range.end}});
  }
  return parts;
}

}  // namespace exawatt::ts
