#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ts/series.hpp"

namespace exawatt::ts {

/// Columnar frame of Series sharing one time grid — the C++ analogue of
/// the paper's per-day parquet tables (cluster power, PUE, temperatures,
/// cooling telemetry all live side by side keyed by timestamp).
class Frame {
 public:
  Frame() = default;
  Frame(util::TimeSec start, util::TimeSec dt, std::size_t rows);

  [[nodiscard]] util::TimeSec start() const { return start_; }
  [[nodiscard]] util::TimeSec dt() const { return dt_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t columns() const { return order_.size(); }
  [[nodiscard]] util::TimeSec time_at(std::size_t i) const {
    return start_ + dt_ * static_cast<util::TimeSec>(i);
  }

  /// Add (or replace) a column; the series must match the frame grid.
  void set(const std::string& name, Series s);
  /// Add a column from raw values on the frame grid.
  void set(const std::string& name, std::vector<double> values);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const Series& at(const std::string& name) const;
  [[nodiscard]] Series& at(const std::string& name);
  [[nodiscard]] const std::vector<std::string>& names() const {
    return order_;
  }

  /// Row-sliced copy over the intersection with `r`.
  [[nodiscard]] Frame slice(util::TimeRange r) const;

 private:
  util::TimeSec start_ = 0;
  util::TimeSec dt_ = 1;
  std::size_t rows_ = 0;
  std::unordered_map<std::string, Series> columns_;
  std::vector<std::string> order_;
};

}  // namespace exawatt::ts
