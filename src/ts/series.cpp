#include "ts/series.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/welford.hpp"

namespace exawatt::ts {

Series::Series(util::TimeSec start, util::TimeSec dt,
               std::vector<double> values)
    : start_(start), dt_(dt), values_(std::move(values)) {
  EXA_CHECK(dt_ > 0, "series dt must be positive");
}

std::ptrdiff_t Series::index_of(util::TimeSec t) const {
  if (t < start_) return -1;
  return static_cast<std::ptrdiff_t>((t - start_) / dt_);
}

Series Series::slice(util::TimeRange r) const {
  const util::TimeRange c = range().clamp(r);
  if (c.duration() <= 0) return Series(c.begin, dt_, {});
  const auto first = static_cast<std::size_t>((c.begin - start_ + dt_ - 1) / dt_);
  auto last = static_cast<std::size_t>((c.end - start_ + dt_ - 1) / dt_);
  last = std::min(last, values_.size());
  if (first >= last) return Series(time_at(first), dt_, {});
  return Series(time_at(first), dt_,
                std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(first),
                                    values_.begin() + static_cast<std::ptrdiff_t>(last)));
}

Series Series::diff() const {
  std::vector<double> d;
  if (values_.size() > 1) {
    d.reserve(values_.size() - 1);
    for (std::size_t i = 0; i + 1 < values_.size(); ++i) {
      d.push_back(values_[i + 1] - values_[i]);
    }
  }
  return Series(start_, dt_, std::move(d));
}

void Series::add_aligned(const Series& other, double scale) {
  if (other.empty()) return;
  EXA_CHECK(dt_ == other.dt(), "add_aligned requires identical dt");
  EXA_CHECK((other.start() - start_) % dt_ == 0,
            "add_aligned requires phase-aligned grids");
  const std::ptrdiff_t offset = (other.start() - start_) / dt_;
  for (std::size_t j = 0; j < other.size(); ++j) {
    const std::ptrdiff_t i = offset + static_cast<std::ptrdiff_t>(j);
    if (i < 0) continue;
    if (static_cast<std::size_t>(i) >= values_.size()) break;
    values_[static_cast<std::size_t>(i)] += scale * other[j];
  }
}

StatSeries::StatSeries(util::TimeSec start, util::TimeSec dt,
                       std::vector<WindowStats> windows)
    : start_(start), dt_(dt), windows_(std::move(windows)) {
  EXA_CHECK(dt_ > 0, "stat series dt must be positive");
}

Series StatSeries::field(Field f) const {
  std::vector<double> v(windows_.size());
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    switch (f) {
      case Field::kCount: v[i] = static_cast<double>(windows_[i].count); break;
      case Field::kMin: v[i] = windows_[i].min; break;
      case Field::kMax: v[i] = windows_[i].max; break;
      case Field::kMean: v[i] = windows_[i].mean; break;
      case Field::kStd: v[i] = windows_[i].std; break;
    }
  }
  return Series(start_, dt_, std::move(v));
}

namespace {
WindowStats to_stats(const util::Welford& w) {
  WindowStats s;
  s.count = w.count();
  s.min = w.min();
  s.max = w.max();
  s.mean = w.mean();
  s.std = w.stddev();
  return s;
}
}  // namespace

StatSeries coarsen(std::span<const Sample> samples, util::TimeSec window,
                   util::TimeRange range) {
  EXA_CHECK(window > 0, "coarsening window must be positive");
  EXA_CHECK(range.duration() >= 0, "coarsening range must be non-empty");
  const auto n = static_cast<std::size_t>(
      (range.duration() + window - 1) / window);
  std::vector<util::Welford> acc(n);

  // Sample-and-hold: each sample's value is considered present at every
  // second from its emit until the next emit (or end of range). We add one
  // virtual observation per covered second so counts reflect coverage.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const util::TimeSec t0 = std::max(samples[i].t, range.begin);
    const util::TimeSec t1 =
        i + 1 < samples.size() ? std::min(samples[i + 1].t, range.end)
                               : range.end;
    if (t1 <= t0) continue;
    // Distribute the held value across the windows [t0, t1) covers.
    util::TimeSec t = t0;
    while (t < t1) {
      const auto w = static_cast<std::size_t>((t - range.begin) / window);
      if (w >= n) break;
      const util::TimeSec wend =
          range.begin + window * static_cast<util::TimeSec>(w + 1);
      const util::TimeSec covered = std::min(t1, wend) - t;
      for (util::TimeSec k = 0; k < covered; ++k) acc[w].add(samples[i].value);
      t += covered;
    }
  }

  std::vector<WindowStats> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = to_stats(acc[i]);
  return StatSeries(range.begin, window, std::move(out));
}

StatSeries coarsen(const Series& fine, util::TimeSec window) {
  EXA_CHECK(window > 0 && window % fine.dt() == 0,
            "window must be a positive multiple of the input dt");
  const auto per = static_cast<std::size_t>(window / fine.dt());
  const std::size_t n = (fine.size() + per - 1) / per;
  std::vector<WindowStats> out;
  out.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    util::Welford acc;
    const std::size_t lo = w * per;
    const std::size_t hi = std::min(fine.size(), lo + per);
    for (std::size_t i = lo; i < hi; ++i) acc.add(fine[i]);
    out.push_back(to_stats(acc));
  }
  return StatSeries(fine.start(), window, std::move(out));
}

}  // namespace exawatt::ts
