#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/sim_time.hpp"

namespace exawatt::ts {

/// One irregular sample of a telemetry metric (emit-on-change streams).
struct Sample {
  util::TimeSec t = 0;
  double value = 0.0;
};

/// Regular-grid time series: values at start, start+dt, start+2dt, ...
/// This is the workhorse representation after coarsening; the paper's
/// pipeline operates almost entirely on the 10-second grid.
class Series {
 public:
  Series() = default;
  Series(util::TimeSec start, util::TimeSec dt, std::vector<double> values);

  [[nodiscard]] util::TimeSec start() const { return start_; }
  [[nodiscard]] util::TimeSec dt() const { return dt_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] util::TimeSec end() const {
    return start_ + dt_ * static_cast<util::TimeSec>(values_.size());
  }
  [[nodiscard]] util::TimeRange range() const { return {start_, end()}; }

  [[nodiscard]] double operator[](std::size_t i) const { return values_[i]; }
  double& operator[](std::size_t i) { return values_[i]; }
  [[nodiscard]] util::TimeSec time_at(std::size_t i) const {
    return start_ + dt_ * static_cast<util::TimeSec>(i);
  }
  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::vector<double>& mutable_values() { return values_; }

  /// Index of the grid point at or before t; -1 if t precedes the series.
  [[nodiscard]] std::ptrdiff_t index_of(util::TimeSec t) const;

  /// Sub-series covering the intersection with `r` (copies values).
  [[nodiscard]] Series slice(util::TimeRange r) const;

  /// First difference: out[i] = v[i+1] - v[i]; size shrinks by one.
  [[nodiscard]] Series diff() const;

  /// Element-wise accumulate `other` into this series where grids overlap.
  /// Grids must share dt and be phase-aligned.
  void add_aligned(const Series& other, double scale = 1.0);

 private:
  util::TimeSec start_ = 0;
  util::TimeSec dt_ = 1;
  std::vector<double> values_;
};

/// count/min/max/mean/std for one coarsening window (paper Dataset 0 row).
struct WindowStats {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double std = 0.0;
};

/// Regular grid of per-window statistics.
class StatSeries {
 public:
  StatSeries() = default;
  StatSeries(util::TimeSec start, util::TimeSec dt,
             std::vector<WindowStats> windows);

  [[nodiscard]] util::TimeSec start() const { return start_; }
  [[nodiscard]] util::TimeSec dt() const { return dt_; }
  [[nodiscard]] std::size_t size() const { return windows_.size(); }
  [[nodiscard]] bool empty() const { return windows_.empty(); }
  [[nodiscard]] const WindowStats& operator[](std::size_t i) const {
    return windows_[i];
  }
  WindowStats& operator[](std::size_t i) { return windows_[i]; }
  [[nodiscard]] util::TimeSec time_at(std::size_t i) const {
    return start_ + dt_ * static_cast<util::TimeSec>(i);
  }

  /// Extract one statistic as a plain Series.
  enum class Field { kCount, kMin, kMax, kMean, kStd };
  [[nodiscard]] Series field(Field f) const;

 private:
  util::TimeSec start_ = 0;
  util::TimeSec dt_ = 10;
  std::vector<WindowStats> windows_;
};

/// Coarsen an emit-on-change sample stream onto a regular window grid with
/// sample-and-hold semantics: a metric's value persists until the next
/// emit, so every window the stream spans gets at least one virtual sample
/// (mirrors how the paper's 10-second aggregation treats OpenBMC pushes).
/// `samples` must be time-sorted.
[[nodiscard]] StatSeries coarsen(std::span<const Sample> samples,
                                 util::TimeSec window, util::TimeRange range);

/// Coarsen a regular 1 Hz (or any dt) series into windows of `window`
/// seconds; `window` must be a multiple of the input dt.
[[nodiscard]] StatSeries coarsen(const Series& fine, util::TimeSec window);

}  // namespace exawatt::ts
