#include "facility/weather.hpp"

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace exawatt::facility {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Smooth multi-day weather-front noise: sum of two slow sinusoids with
/// deterministic per-seed phases (keeps the model reproducible without a
/// stateful random walk).
double front_noise(std::uint64_t seed, util::TimeSec t) {
  const double days = static_cast<double>(t) / util::kDay;
  const double p1 =
      static_cast<double>(util::mix64(seed) % 1000) * 1e-3 * kTwoPi;
  const double p2 =
      static_cast<double>(util::mix64(seed ^ 0xabcdULL) % 1000) * 1e-3 * kTwoPi;
  return 2.2 * std::sin(kTwoPi * days / 5.3 + p1) +
         1.4 * std::sin(kTwoPi * days / 11.7 + p2);
}
}  // namespace

Weather::Weather(std::uint64_t seed) : seed_(seed) {}

double Weather::wet_bulb_c(util::TimeSec t) const {
  const double doy = static_cast<double>(util::day_of_year(t));
  const double hour =
      static_cast<double>((t % util::kDay + util::kDay) % util::kDay) / 3600.0;
  // Annual cycle: min ~1.5 °C late January, max ~20.5 °C late July —
  // tuned so the towers alone hold the MTW setpoint ~75-80% of the year.
  const double annual =
      11.0 + 9.5 * std::sin(kTwoPi * (doy - 115.0) / 366.0);
  // Diurnal cycle: +/- 2.5 °C, coolest pre-dawn.
  const double diurnal = 2.5 * std::sin(kTwoPi * (hour - 9.0) / 24.0);
  return annual + diurnal + front_noise(seed_, t);
}

double Weather::dry_bulb_c(util::TimeSec t) const {
  const double wb = wet_bulb_c(t);
  const double doy = static_cast<double>(util::day_of_year(t));
  // Summer afternoons are drier (larger WB depression).
  const double depression =
      5.0 + 2.5 * std::sin(kTwoPi * (doy - 130.0) / 366.0);
  return wb + depression;
}

}  // namespace exawatt::facility
