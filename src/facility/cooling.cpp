#include "facility/cooling.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "thermal/rc_model.hpp"
#include "util/check.hpp"

namespace exawatt::facility {

CoolingPlant::CoolingPlant(CoolingParams params) : params_(params) {
  EXA_CHECK(params_.loop_w_per_c > 0.0, "loop capacity must be positive");
  EXA_CHECK(params_.return_delay_s >= 0, "return delay must be >= 0");
  const std::size_t slots = static_cast<std::size_t>(
                                params_.return_delay_s / history_dt_) +
                            1;
  heat_history_.assign(slots, 0.0);
  reset(0.0, 10.0);
}

double CoolingPlant::chiller_fraction(double wet_bulb_c) const {
  // Towers can hold the setpoint while WB + approach stays below it;
  // beyond that the trim chillers carry a growing share.
  const double headroom =
      params_.mtw_supply_setpoint_c - (wet_bulb_c + params_.tower_approach_c);
  if (headroom >= 0.0) return 0.0;
  return std::min(1.0, -headroom / params_.tower_fade_band_c);
}

void CoolingPlant::reset(double it_power_w, double wet_bulb_c) {
  const double chi = chiller_fraction(wet_bulb_c);
  state_.mtw_supply_c =
      params_.mtw_supply_setpoint_c +
      std::max(0.0, (wet_bulb_c + params_.tower_approach_c -
                     params_.mtw_supply_setpoint_c) *
                        (1.0 - chi) * 0.5);
  state_.mtw_return_c =
      state_.mtw_supply_c + it_power_w / params_.loop_w_per_c;
  state_.tower_tons = it_power_w * (1.0 - chi) / kWattsPerTon;
  state_.chiller_tons = it_power_w * chi / kWattsPerTon;
  std::fill(heat_history_.begin(), heat_history_.end(), it_power_w);
  history_pos_ = 0;
  // Prime facility power/PUE.
  step(0, it_power_w, wet_bulb_c);
}

const CoolingState& CoolingPlant::step(util::TimeSec dt, double it_power_w,
                                       double wet_bulb_c,
                                       bool force_chillers) {
  EXA_CHECK(dt >= 0, "cooling step needs dt >= 0");
  EXA_CHECK(it_power_w >= 0.0, "IT power must be non-negative");

  // The return-water sensor sees rack heat after a transport delay; the
  // staging control reacts to that sensor, producing the ~1 minute lag
  // between a power edge and the tons-of-refrigeration response.
  if (dt > 0) {
    const auto steps = static_cast<std::size_t>(
        std::max<util::TimeSec>(1, dt / history_dt_));
    for (std::size_t s = 0; s < steps; ++s) {
      heat_history_[history_pos_] = it_power_w;
      history_pos_ = (history_pos_ + 1) % heat_history_.size();
    }
  }
  const double delayed_heat = heat_history_[history_pos_];

  const double chi =
      force_chillers ? 1.0 : chiller_fraction(wet_bulb_c);
  const double demand_tons = delayed_heat / kWattsPerTon;
  const double tower_target = demand_tons * (1.0 - chi);
  const double chiller_target = demand_tons * chi;

  if (dt > 0) {
    state_.tower_tons = thermal::rc_step_asymmetric(
        state_.tower_tons, tower_target, static_cast<double>(dt),
        params_.stage_up_tau_s, params_.stage_down_tau_s);
    state_.chiller_tons = thermal::rc_step_asymmetric(
        state_.chiller_tons, chiller_target, static_cast<double>(dt),
        params_.stage_up_tau_s, params_.stage_down_tau_s);
  } else {
    state_.tower_tons = tower_target;
    state_.chiller_tons = chiller_target;
  }

  // Supply temperature: drifts up when staged capacity lags the load,
  // recovers as capacity catches up.
  const double capacity_w =
      (state_.tower_tons + state_.chiller_tons) * kWattsPerTon;
  const double deficit_w = delayed_heat - capacity_w;
  const double supply_target =
      params_.mtw_supply_setpoint_c +
      std::max(-1.0, deficit_w / params_.loop_w_per_c) +
      std::max(0.0, (wet_bulb_c + params_.tower_approach_c -
                     params_.mtw_supply_setpoint_c)) *
          (1.0 - chi) * 0.25;
  if (dt > 0) {
    state_.mtw_supply_c =
        thermal::rc_step(state_.mtw_supply_c, supply_target,
                         static_cast<double>(dt), params_.supply_tau_s);
  } else {
    state_.mtw_supply_c = supply_target;
  }

  // Return temperature: supply plus the loop differential from the
  // (delayed) rack heat.
  state_.mtw_return_c =
      state_.mtw_supply_c + delayed_heat / params_.loop_w_per_c;

  // Electrical overhead -> PUE.
  const double tower_fans =
      state_.tower_tons * kWattsPerTon * params_.tower_fan_w_per_w;
  const double chillers =
      state_.chiller_tons * kWattsPerTon * params_.chiller_w_per_w;
  const double losses = it_power_w * params_.distribution_loss_frac;
  state_.facility_power_w =
      params_.pump_power_w + tower_fans + chillers + losses;
  state_.pue = it_power_w > 0.0
                   ? (it_power_w + state_.facility_power_w) / it_power_w
                   : 1.0;
  return state_;
}

}  // namespace exawatt::facility
