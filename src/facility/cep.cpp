#include "facility/cep.hpp"

#include "util/check.hpp"

namespace exawatt::facility {

ts::Frame simulate_cep(const ts::Frame& cluster, CepOptions options) {
  EXA_CHECK(cluster.has("input_power_w"),
            "cluster frame must provide input_power_w");
  const ts::Series& power = cluster.at("input_power_w");
  const std::size_t n = power.size();
  const util::TimeSec dt = cluster.dt();

  Weather weather(options.weather_seed);
  CoolingPlant plant(options.cooling);
  if (n > 0) {
    plant.reset(power[0], weather.wet_bulb_c(power.time_at(0)));
  }

  std::vector<double> pue(n);
  std::vector<double> supply(n);
  std::vector<double> ret(n);
  std::vector<double> tower(n);
  std::vector<double> chiller(n);
  std::vector<double> fac_power(n);
  std::vector<double> wb(n);

  for (std::size_t i = 0; i < n; ++i) {
    const util::TimeSec t = power.time_at(i);
    const double wet_bulb = weather.wet_bulb_c(t);
    const bool maint = options.maintenance.duration() > 0 &&
                       options.maintenance.contains(t % util::kYear);
    const CoolingState& s = plant.step(dt, power[i], wet_bulb, maint);
    pue[i] = s.pue;
    supply[i] = s.mtw_supply_c;
    ret[i] = s.mtw_return_c;
    tower[i] = s.tower_tons;
    chiller[i] = s.chiller_tons;
    fac_power[i] = s.facility_power_w;
    wb[i] = wet_bulb;
  }

  ts::Frame out(cluster.start(), dt, n);
  out.set("pue", std::move(pue));
  out.set("mtw_supply_c", std::move(supply));
  out.set("mtw_return_c", std::move(ret));
  out.set("tower_tons", std::move(tower));
  out.set("chiller_tons", std::move(chiller));
  out.set("facility_power_w", std::move(fac_power));
  out.set("wet_bulb_c", std::move(wb));
  return out;
}

}  // namespace exawatt::facility
