#pragma once

#include <cstddef>
#include <vector>

#include "util/sim_time.hpp"

namespace exawatt::facility {

/// Conversion: one ton of refrigeration in watts of heat removal.
inline constexpr double kWattsPerTon = 3517.0;

/// Tunables of the central-energy-plant cooling model (Figure 1-(d)).
/// Defaults are calibrated so the year yields PUE ~1.11 in winter and
/// ~1.22 in summer, chillers active ~20% of the year, and a ~1 minute
/// staging lag behind load steps (paper §5).
struct CoolingParams {
  double mtw_supply_setpoint_c = 20.0;   ///< 70 °F central plant target
  double tower_approach_c = 3.0;         ///< towers get within this of WB
  /// Wet-bulb span over which towers fade from fully able to hold the
  /// setpoint to needing full chiller trim.
  double tower_fade_band_c = 4.0;
  /// Thermal mass / staging time constants (asymmetric: capacity stages
  /// up faster than it de-stages; the paper sees slower attenuation on
  /// falling edges).
  double stage_up_tau_s = 55.0;
  double stage_down_tau_s = 170.0;
  double supply_tau_s = 90.0;            ///< supply temp response
  /// MTW loop: effective flow rate times heat capacity (W per °C of
  /// supply-return differential). 5.5 MW at ~9 °C dT keeps the return in
  /// the paper's 80-100 °F band across the load range.
  double loop_w_per_c = 6.0e5;
  /// Transport delay from rack heat pickup to the return sensor.
  util::TimeSec return_delay_s = 60;
  /// Parasitic electrical loads.
  double pump_power_w = 260e3;           ///< MTW + CHW pumps (constant)
  double distribution_loss_frac = 0.030; ///< switchgear + UPS losses
  double tower_fan_w_per_w = 0.032;      ///< fan power per watt removed
  double chiller_w_per_w = 0.21;         ///< compressor power per watt (COP ~4.8)
};

/// State of the cooling plant at one instant.
struct CoolingState {
  double mtw_supply_c = 20.0;
  double mtw_return_c = 28.0;
  double tower_tons = 0.0;     ///< tons of refrigeration via cooling towers
  double chiller_tons = 0.0;   ///< tons via trim chillers
  double facility_power_w = 0.0;  ///< pumps + fans + chillers + losses
  double pue = 1.0;
};

/// Dynamic cooling-plant model: step with the instantaneous IT heat load
/// and wet-bulb temperature. Encapsulates tower/chiller staging with
/// asymmetric lag, the supply/return loop, and the PUE computation.
class CoolingPlant {
 public:
  explicit CoolingPlant(CoolingParams params = {});

  [[nodiscard]] const CoolingParams& params() const { return params_; }
  [[nodiscard]] const CoolingState& state() const { return state_; }

  /// Fraction of required cooling the chillers must carry at this
  /// wet-bulb (0 = towers only, 1 = chillers only).
  [[nodiscard]] double chiller_fraction(double wet_bulb_c) const;

  /// Advance the plant by dt given IT power (W, all converted to heat
  /// into the MTW loop) and weather. Optionally force full chiller
  /// operation (the February tower-maintenance event that produced the
  /// paper's 1.3 PUE spike).
  const CoolingState& step(util::TimeSec dt, double it_power_w,
                           double wet_bulb_c, bool force_chillers = false);

  /// Reset to a steady state consistent with the given load and weather
  /// (avoids warm-up transients at analysis-window boundaries).
  void reset(double it_power_w, double wet_bulb_c);

 private:
  CoolingParams params_;
  CoolingState state_;
  /// Ring buffer of recent rack heat for the return-sensor delay.
  std::vector<double> heat_history_;
  std::size_t history_pos_ = 0;
  util::TimeSec history_dt_ = 10;
};

}  // namespace exawatt::facility
