#include "facility/msb.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace exawatt::facility {

namespace {
/// Deterministic standard-normal draw keyed by (seed, a, b).
double keyed_normal(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  util::Rng rng(util::hash_combine(util::hash_combine(seed, a), b));
  return rng.normal();
}
}  // namespace

MsbModel::MsbModel(const machine::Topology& topo, std::uint64_t seed,
                   MsbParams params)
    : topo_(&topo), seed_(seed), params_(params) {
  batch_bias_.resize(static_cast<std::size_t>(topo.msbs()));
  for (std::size_t m = 0; m < batch_bias_.size(); ++m) {
    batch_bias_[m] = params_.node_bias_mean +
                     params_.node_bias_batch_sigma *
                         keyed_normal(seed_, 0xb17cULL, m);
  }
}

double MsbModel::meter_reading(machine::MsbId msb, double true_power_w,
                               util::TimeSec t) const {
  EXA_CHECK(msb >= 0 && msb < topo_->msbs(), "MSB id out of range");
  const double noise =
      params_.meter_noise_frac *
      keyed_normal(seed_, 0x3e7eULL + static_cast<std::uint64_t>(msb),
                   static_cast<std::uint64_t>(t));
  return true_power_w * (1.0 + noise);
}

double MsbModel::node_sensor_factor(machine::NodeId node) const {
  const machine::MsbId msb = topo_->msb_of(node);
  const double unit = params_.node_bias_unit_sigma *
                      keyed_normal(seed_, 0x5e45ULL,
                                   static_cast<std::uint64_t>(node));
  return 1.0 + batch_bias_[static_cast<std::size_t>(msb)] + unit;
}

double MsbModel::node_sensor_sample(machine::NodeId node, double true_power_w,
                                    util::TimeSec t) const {
  const double jitter =
      params_.sample_noise_frac *
      keyed_normal(seed_, 0x54a9ULL + static_cast<std::uint64_t>(node),
                   static_cast<std::uint64_t>(t));
  return true_power_w * node_sensor_factor(node) * (1.0 + jitter);
}

}  // namespace exawatt::facility
