#pragma once

#include <cstdint>

#include "machine/topology.hpp"
#include "util/sim_time.hpp"

namespace exawatt::facility {

/// Error-model parameters for the Figure 4 validation study. The paper
/// found the per-node sensor summation runs ~11% above the switchboard
/// meters (mean meter - summation ≈ -129 kW per MSB) with per-MSB
/// constant offsets, tight spread, and in-phase oscillation.
struct MsbParams {
  /// Mean over-read of the node input-power sensors vs the revenue-grade
  /// MSB meters (per-MSB "batch" component models shared PSU calibration).
  double node_bias_mean = 0.105;
  double node_bias_batch_sigma = 0.012;  ///< across MSB batches
  double node_bias_unit_sigma = 0.010;   ///< node-to-node within a batch
  double meter_noise_frac = 0.0015;      ///< MSB meter measurement noise
  /// Per-node 1 Hz sampling error: a 500 µs instantaneous sample of an
  /// oscillating load (the paper's footnote: no energy accumulators).
  double sample_noise_frac = 0.02;
};

/// Main-switchboard metering model: ground-truth feed power in, metered
/// reading out, plus the per-node sensor calibration factors that the
/// telemetry stream applies.
class MsbModel {
 public:
  MsbModel(const machine::Topology& topo, std::uint64_t seed,
           MsbParams params = {});

  [[nodiscard]] const MsbParams& params() const { return params_; }

  /// Revenue meter reading for one MSB at time t given true feed power.
  [[nodiscard]] double meter_reading(machine::MsbId msb, double true_power_w,
                                     util::TimeSec t) const;

  /// Static calibration factor of one node's input-power sensor.
  [[nodiscard]] double node_sensor_factor(machine::NodeId node) const;

  /// One 1 Hz sensor sample of a node's true input power: calibration
  /// factor plus instantaneous-sampling noise, deterministic in (node, t).
  [[nodiscard]] double node_sensor_sample(machine::NodeId node,
                                          double true_power_w,
                                          util::TimeSec t) const;

 private:
  const machine::Topology* topo_;
  std::uint64_t seed_;
  MsbParams params_;
  std::vector<double> batch_bias_;   ///< per MSB
};

}  // namespace exawatt::facility
