#pragma once

#include <cstdint>

#include "util/sim_time.hpp"

namespace exawatt::facility {

/// East-Tennessee weather model: wet-bulb temperature with annual and
/// diurnal cycles plus weather-front noise. The wet-bulb drives the
/// cooling-tower (evaporative) capacity, which is why Summit runs on
/// cheap cooling ~80% of the year and needs trim chillers in summer.
class Weather {
 public:
  explicit Weather(std::uint64_t seed = 7);

  /// Wet-bulb temperature (°C) at the simulated instant.
  [[nodiscard]] double wet_bulb_c(util::TimeSec t) const;

  /// Dry-bulb (for reports; ~5-8 °C above wet bulb depending on season).
  [[nodiscard]] double dry_bulb_c(util::TimeSec t) const;

 private:
  std::uint64_t seed_;
};

}  // namespace exawatt::facility
