#pragma once

#include "facility/cooling.hpp"
#include "facility/weather.hpp"
#include "ts/frame.hpp"

namespace exawatt::facility {

/// Central-energy-plant simulation options.
struct CepOptions {
  CoolingParams cooling = {};
  std::uint64_t weather_seed = 7;
  /// Cooling-tower maintenance window forcing 100% chilled water (the
  /// paper's early-February PUE 1.3 episode). Empty range disables it.
  util::TimeRange maintenance = {31 * util::kDay, 38 * util::kDay};
};

/// Run the cooling plant along a cluster power series and return the
/// facility telemetry frame (paper Dataset B / Dataset 12 equivalent):
///   pue, mtw_supply_c, mtw_return_c, tower_tons, chiller_tons,
///   facility_power_w, wet_bulb_c
/// The input frame must contain `input_power_w` (from
/// power::cluster_power_frame); the output shares its grid.
[[nodiscard]] ts::Frame simulate_cep(const ts::Frame& cluster,
                                     CepOptions options = {});

}  // namespace exawatt::facility
