#include "stream/replay.hpp"

#include <algorithm>

namespace exawatt::stream {

RollupReplay replay_rollup(const store::Store& store,
                           const std::vector<machine::NodeId>& nodes,
                           EngineOptions options, const ReplaySinks& sinks,
                           store::QueryStats* stats) {
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  std::vector<telemetry::MetricId> ids;
  ids.reserve(nodes.size());
  for (const machine::NodeId n : nodes) {
    ids.push_back(telemetry::metric_id(n, channel));
  }
  const auto runs = store.query_many(ids, options.range, nullptr, stats);
  return replay_rollup_runs(runs, std::move(options), sinks);
}

RollupReplay replay_rollup_runs(const std::vector<store::MetricRun>& runs,
                                EngineOptions options,
                                const ReplaySinks& sinks) {
  struct Replayed {
    util::TimeSec t;
    telemetry::MetricId id;
    std::int32_t value;
  };
  std::vector<Replayed> feed;
  std::size_t total = 0;
  for (const auto& run : runs) total += run.samples.size();
  feed.reserve(total);
  for (const auto& run : runs) {
    for (const auto& s : run.samples) {
      feed.push_back({s.t, run.id, static_cast<std::int32_t>(s.value)});
    }
  }
  std::sort(feed.begin(), feed.end(), [](const Replayed& a, const Replayed& b) {
    return a.t < b.t || (a.t == b.t && a.id < b.id);
  });

  RollupReplay out;
  Engine engine(options);
  if (sinks.on_window) {
    engine.set_window_sink(sinks.on_window);
  }
  // Alerts have no native sink; new log entries are forwarded after every
  // clock step, which preserves transition order relative to windows of
  // the same second.
  std::size_t alerts_seen = 0;
  const auto pump_alerts = [&] {
    if (!sinks.on_alert) return;
    const auto& log = engine.alerts().log();
    for (; alerts_seen < log.size(); ++alerts_seen) {
      sinks.on_alert(log[alerts_seen]);
    }
  };

  std::size_t i = 0;
  for (util::TimeSec now = options.range.begin; now < options.range.end;
       ++now) {
    if (sinks.cancelled && sinks.cancelled()) {
      out.cancelled = true;
      break;
    }
    while (i < feed.size() && feed[i].t <= now) {
      telemetry::Collector::Arrival arrival;
      arrival.event.id = feed[i].id;
      arrival.event.t = feed[i].t;
      arrival.event.value = feed[i].value;
      arrival.arrival_t = now;
      engine.ingest(arrival);
      ++i;
    }
    engine.advance_to(now);
    pump_alerts();
  }
  if (!out.cancelled) {
    engine.finish();
    pump_alerts();
  }
  out.power = engine.rollup().power_series();
  out.pue = engine.rollup().pue_series();
  out.events = engine.events_ingested();
  out.windows = engine.rollup().closed_windows();
  return out;
}

ts::Series replay_power_rollup(const store::Store& store,
                               const std::vector<machine::NodeId>& nodes,
                               EngineOptions options) {
  return replay_rollup(store, nodes, std::move(options)).power;
}

}  // namespace exawatt::stream
