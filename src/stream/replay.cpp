#include "stream/replay.hpp"

#include <algorithm>

namespace exawatt::stream {

ts::Series replay_power_rollup(const store::Store& store,
                               const std::vector<machine::NodeId>& nodes,
                               EngineOptions options) {
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  std::vector<telemetry::MetricId> ids;
  ids.reserve(nodes.size());
  for (const machine::NodeId n : nodes) {
    ids.push_back(telemetry::metric_id(n, channel));
  }
  const auto runs = store.query_many(ids, options.range);

  struct Replayed {
    util::TimeSec t;
    telemetry::MetricId id;
    std::int32_t value;
  };
  std::vector<Replayed> feed;
  std::size_t total = 0;
  for (const auto& run : runs) total += run.samples.size();
  feed.reserve(total);
  for (const auto& run : runs) {
    for (const auto& s : run.samples) {
      feed.push_back({s.t, run.id, static_cast<std::int32_t>(s.value)});
    }
  }
  std::sort(feed.begin(), feed.end(), [](const Replayed& a, const Replayed& b) {
    return a.t < b.t || (a.t == b.t && a.id < b.id);
  });

  Engine engine(options);
  std::size_t i = 0;
  for (util::TimeSec now = options.range.begin; now < options.range.end;
       ++now) {
    while (i < feed.size() && feed[i].t <= now) {
      telemetry::Collector::Arrival arrival;
      arrival.event.id = feed[i].id;
      arrival.event.t = feed[i].t;
      arrival.event.value = feed[i].value;
      arrival.arrival_t = now;
      engine.ingest(arrival);
      ++i;
    }
    engine.advance_to(now);
  }
  engine.finish();
  return engine.rollup().power_series();
}

}  // namespace exawatt::stream
