#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/dashboard.hpp"
#include "stream/alerts.hpp"
#include "stream/coarsen.hpp"
#include "stream/quantile.hpp"
#include "stream/rollup.hpp"
#include "telemetry/collector.hpp"

namespace exawatt::stream {

struct EngineOptions {
  util::TimeRange range;
  /// Coarsening window — 10 s to match the paper's archive resolution.
  util::TimeSec window = 10;
  /// Watermark lag behind the stream clock. Must cover the collector's
  /// max propagation delay (5 s, paper §3) so the watermark's promise —
  /// "everything emitted at or before it has arrived" — holds; anything
  /// later still is counted as a late drop, not silently mis-binned.
  util::TimeSec allowed_lateness_s = 5;
  RollupOptions rollup = {};
  AlertOptions alerts = {};
  /// GPU warning band for the dashboard (mirrors the batch dashboard's
  /// throttle_onset - 10 rule; engine has no thermal model so the
  /// threshold is passed in).
  double gpu_warn_c = 73.0;
};

/// The streaming analytics engine: one consumer thread owns it, drains
/// the `ShardedIngest` into `ingest()`, and advances the clock once per
/// second with `advance_to()`. Internally it fans one event stream into
/// the incremental operators — 10 s coarsener (bit-identical to the batch
/// aggregator), cluster power/PUE roll-up, streaming edge detector,
/// P² quantile sketches, and the alert engine.
class Engine {
 public:
  explicit Engine(EngineOptions options);

  /// One collector arrival. Call from the ingest drain, in drain order.
  void ingest(const telemetry::Collector::Arrival& arrival);

  /// Advance the stream clock to `now`: watermark the coarsener at
  /// now - allowed_lateness, close finalizable cluster windows, and run
  /// the silence sweep.
  void advance_to(util::TimeSec now);

  /// End of stream: flush every operator through the range end.
  void finish();

  /// Observe every finalized cluster window as it closes (forwarded to
  /// the roll-up; install before the first ingest/advance).
  void set_window_sink(ClusterRollup::WindowSink sink) {
    rollup_.set_sink(std::move(sink));
  }

  [[nodiscard]] const EngineOptions& options() const { return options_; }
  [[nodiscard]] util::TimeSec now() const { return now_; }
  [[nodiscard]] std::uint64_t events_ingested() const { return events_; }

  [[nodiscard]] const StreamingCoarsener& coarsener() const {
    return coarsener_;
  }
  [[nodiscard]] const ClusterRollup& rollup() const { return rollup_; }
  [[nodiscard]] const AlertEngine& alerts() const { return alerts_; }
  [[nodiscard]] AlertEngine& alerts() { return alerts_; }
  /// Per-node input-power quantile sketch (W).
  [[nodiscard]] const QuantileSet& power_quantiles() const {
    return power_q_;
  }
  /// GPU core temperature quantile sketch (°C).
  [[nodiscard]] const QuantileSet& gpu_temp_quantiles() const {
    return temp_q_;
  }

  /// Live operational panel from the engine's own state (no simulator
  /// access): histograms over the latest telemetry value of every GPU /
  /// CPU core-temp channel, rolled-up cluster power and cooling state.
  [[nodiscard]] core::DashboardSnapshot dashboard() const;
  /// dashboard().render() plus the streaming-only rows (quantile sketches,
  /// watermark/lag accounting, recent alerts).
  [[nodiscard]] std::string render(std::size_t alert_tail = 4) const;

 private:
  EngineOptions options_;
  util::TimeSec now_;
  std::uint64_t events_ = 0;
  StreamingCoarsener coarsener_;
  ClusterRollup rollup_;
  AlertEngine alerts_;
  QuantileSet power_q_;
  QuantileSet temp_q_;
  /// Latest value per temperature channel, keyed by MetricId — the
  /// streaming stand-in for the batch dashboard's model sweep.
  std::map<telemetry::MetricId, double> gpu_temp_c_;
  std::map<telemetry::MetricId, double> cpu_temp_c_;
  std::map<machine::NodeId, double> node_power_w_;
};

}  // namespace exawatt::stream
