#include "stream/edge.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace exawatt::stream {

StreamingEdgeDetector::StreamingEdgeDetector(util::TimeSec start,
                                             util::TimeSec dt,
                                             double node_count,
                                             core::EdgeOptions options)
    : start_(start),
      dt_(dt),
      threshold_(options.per_node_threshold_w * node_count),
      return_fraction_(options.return_fraction) {
  EXA_CHECK(dt_ > 0, "edge detector needs a positive grid step");
  EXA_CHECK(node_count > 0.0, "edge detection needs a node count");
  EXA_CHECK(return_fraction_ > 0.0 && return_fraction_ <= 1.0,
            "return fraction must be in (0, 1]");
}

void StreamingEdgeDetector::push(double power_w) {
  EXA_CHECK(!finished_, "detector already finished");
  buf_.push_back(power_w);
  ++size_;
  process();
}

void StreamingEdgeDetector::close(bool returned, std::size_t end_idx) {
  current_.peak_w = peak_;
  current_.amplitude_w = std::fabs(val(j_) - current_.initial_w);
  current_.returned = returned;
  current_.duration_s = time_at(end_idx) - current_.start;
  edges_.push_back(current_);
  if (sink_) sink_(current_);
  i_ = std::max(j_, peak_idx_) + 1;
  phase_ = Phase::kScan;
}

void StreamingEdgeDetector::trim() {
  // In scan phase nothing before the anchor can matter again.
  if (i_ > base_ && i_ - base_ >= 1024) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(
                                                i_ - base_));
    base_ = i_;
  }
}

void StreamingEdgeDetector::process() {
  // One pass of the batch detect_edges loop, pausing wherever the next
  // decision needs data that has not streamed in yet.
  for (;;) {
    switch (phase_) {
      case Phase::kScan: {
        if (i_ + 1 >= size_) {
          trim();
          return;
        }
        const double step = val(i_ + 1) - val(i_);
        if (std::fabs(step) < threshold_) {
          ++i_;
          continue;
        }
        rising_ = step > 0.0;
        current_ = core::Edge{};
        current_.rising = rising_;
        current_.start = time_at(i_);
        current_.initial_w = val(i_);
        j_ = i_ + 1;
        phase_ = Phase::kGrow;
        continue;
      }
      case Phase::kGrow: {
        // Merge consecutive same-sign steps; needs one value of lookahead.
        if (j_ + 1 >= size_) return;
        const double next = val(j_ + 1) - val(j_);
        if (rising_ ? next > 0.0 : next < 0.0) {
          ++j_;
          continue;
        }
        peak_ = val(j_);
        peak_idx_ = j_;
        k_ = j_;
        phase_ = Phase::kTrack;
        continue;
      }
      case Phase::kTrack: {
        if (k_ >= size_) return;
        if (rising_ ? val(k_) > peak_ : val(k_) < peak_) {
          peak_ = val(k_);
          peak_idx_ = k_;
        }
        const double excursion = peak_ - current_.initial_w;
        const double given_back = peak_ - val(k_);
        if (std::fabs(excursion) > 0.0 &&
            (rising_ ? given_back >= return_fraction_ * excursion
                     : given_back <= return_fraction_ * excursion)) {
          close(true, k_);
          continue;
        }
        ++k_;
        continue;
      }
    }
  }
}

void StreamingEdgeDetector::finish() {
  if (finished_) return;
  finished_ = true;
  if (size_ == 0) return;
  // Replay the batch end-of-series behaviour: a pending excursion closes
  // unreturned at the last sample and the scan resumes after its peak —
  // the remaining tail can still contain further (also unreturned) edges.
  for (;;) {
    if (phase_ == Phase::kGrow) {
      // End of series during step merging: track from the run's last
      // step, exactly where the batch grow loop stops.
      peak_ = val(j_);
      peak_idx_ = j_;
      k_ = j_;
      phase_ = Phase::kTrack;
      process();
    }
    if (phase_ == Phase::kTrack) {
      close(false, size_ - 1);
      process();
      continue;
    }
    if (phase_ == Phase::kScan) break;
  }
  buf_.clear();
  base_ = size_;
}

}  // namespace exawatt::stream
