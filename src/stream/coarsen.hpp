#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "telemetry/metric.hpp"
#include "ts/series.hpp"
#include "util/welford.hpp"

namespace exawatt::stream {

/// One closed 10-second coarsening window of one metric, emitted as soon
/// as the watermark guarantees no further sample can touch it.
struct WindowUpdate {
  telemetry::MetricId id = 0;
  std::size_t index = 0;        ///< window index within the engine range
  util::TimeSec start = 0;      ///< window start time
  ts::WindowStats stats;        ///< count/min/max/mean/std (Dataset 0 row)
};

/// Incremental replacement for the batch `telemetry::aggregate_metric`
/// path: consumes the out-of-band event stream one sample at a time and
/// emits per-metric 10 s count/min/max/mean/std windows online.
///
/// Bit-identical guarantee: per metric, samples are re-ordered by emit
/// time inside the allowed-lateness horizon and replayed through the same
/// sample-and-hold fill (one Welford::add per covered second, in time
/// order) as `ts::coarsen(samples, window, range)`, so the emitted
/// windows carry exactly the doubles the batch aggregator produces.
///
/// Watermark protocol: `push` accepts samples in any cross-metric order;
/// per metric, anything emitted at or before the current watermark is
/// counted in `late_dropped` and ignored. `advance(w)` moves the
/// watermark: pending samples with emit time <= w are integrated, holds
/// are extended to w, and every window ending at or before w closes.
class StreamingCoarsener {
 public:
  using WindowSink = std::function<void(const WindowUpdate&)>;

  StreamingCoarsener(util::TimeRange range, util::TimeSec window = 10);

  /// Closed windows are delivered here, per metric in time order, across
  /// metrics in ascending MetricId order within one `advance` call.
  void set_sink(WindowSink sink) { sink_ = std::move(sink); }

  /// Offer one sample (emit-time semantics; arrival order is free within
  /// the watermark horizon).
  void push(telemetry::MetricId id, util::TimeSec emit_t, double value);

  /// Advance the watermark: every sample emitted at or before `watermark`
  /// must already have been pushed (the collector's max delay bounds how
  /// far behind the wall clock this is safe to call).
  void advance(util::TimeSec watermark);

  /// Flush to the end of the range (stream shutdown).
  void finish() { advance(range_.end); }

  [[nodiscard]] util::TimeRange range() const { return range_; }
  [[nodiscard]] util::TimeSec window() const { return window_; }
  [[nodiscard]] util::TimeSec watermark() const { return watermark_; }
  [[nodiscard]] std::size_t n_windows() const { return n_windows_; }
  [[nodiscard]] std::uint64_t samples_seen() const { return samples_seen_; }
  [[nodiscard]] std::uint64_t late_dropped() const { return late_dropped_; }
  [[nodiscard]] std::size_t tracked_metrics() const { return metrics_.size(); }
  /// Samples buffered ahead of the watermark (reorder lag), across metrics.
  [[nodiscard]] std::size_t pending_samples() const { return pending_total_; }

 private:
  struct MetricState {
    std::vector<ts::Sample> pending;  ///< emit-time sorted reorder buffer
    bool has_hold = false;            ///< a value is being held
    double hold_value = 0.0;
    util::TimeSec filled_to = 0;      ///< seconds covered so far
    util::Welford open;               ///< accumulator of the open window
    std::size_t open_index = 0;       ///< window index of `open`
  };

  void fill_to(telemetry::MetricId id, MetricState& s, util::TimeSec limit);
  void close_open(telemetry::MetricId id, MetricState& s);

  util::TimeRange range_;
  util::TimeSec window_;
  std::size_t n_windows_;
  util::TimeSec watermark_;  ///< starts at range.begin - 1 (nothing final)
  std::map<telemetry::MetricId, MetricState> metrics_;
  WindowSink sink_;
  std::uint64_t samples_seen_ = 0;
  std::uint64_t late_dropped_ = 0;
  std::size_t pending_total_ = 0;
};

/// Test/validation helper: materialize the emitted windows of one metric
/// as a full StatSeries on the coarsener grid (missing windows stay
/// zero-count, matching the batch aggregator's empty windows).
class WindowCollector {
 public:
  explicit WindowCollector(const StreamingCoarsener& coarsener);

  /// Sink to install on the coarsener (collects every metric).
  void operator()(const WindowUpdate& update);

  [[nodiscard]] ts::StatSeries series(telemetry::MetricId id) const;
  [[nodiscard]] std::vector<telemetry::MetricId> metric_ids() const;

 private:
  util::TimeSec start_;
  util::TimeSec window_;
  std::size_t n_windows_;
  std::map<telemetry::MetricId, std::vector<ts::WindowStats>> windows_;
};

}  // namespace exawatt::stream
