#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/edges.hpp"
#include "ts/series.hpp"

namespace exawatt::stream {

/// Online power-edge detector: the batch `core::detect_edges` algorithm
/// (868 W/node rule, same-sign step merging, 80%-return duration) recast
/// as a resumable state machine over an append-only grid series. Pushing
/// the full series and calling `finish()` yields exactly the edges the
/// batch detector reports on that series; edges close (and reach the
/// sink) as soon as their return point streams in, not at end of trace.
class StreamingEdgeDetector {
 public:
  using EdgeSink = std::function<void(const core::Edge&)>;

  StreamingEdgeDetector(util::TimeSec start, util::TimeSec dt,
                        double node_count, core::EdgeOptions options = {});

  void set_sink(EdgeSink sink) { sink_ = std::move(sink); }

  /// Append the next grid value (time start + samples() * dt).
  void push(double power_w);

  /// End of stream: closes a still-open excursion as unreturned, exactly
  /// like the batch detector at end of series. Idempotent.
  void finish();

  [[nodiscard]] std::size_t samples() const { return size_; }
  [[nodiscard]] const std::vector<core::Edge>& edges() const { return edges_; }
  /// Values retained for the in-flight edge (memory is bounded by the
  /// longest unreturned excursion, not by the stream length).
  [[nodiscard]] std::size_t retained() const { return buf_.size(); }

 private:
  enum class Phase { kScan, kGrow, kTrack };

  [[nodiscard]] double val(std::size_t idx) const { return buf_[idx - base_]; }
  [[nodiscard]] util::TimeSec time_at(std::size_t idx) const {
    return start_ + dt_ * static_cast<util::TimeSec>(idx);
  }
  void process();
  void close(bool returned, std::size_t end_idx);
  void trim();

  util::TimeSec start_;
  util::TimeSec dt_;
  double threshold_;
  double return_fraction_;
  EdgeSink sink_;

  std::vector<double> buf_;  ///< values [base_, size_)
  std::size_t base_ = 0;
  std::size_t size_ = 0;
  bool finished_ = false;

  Phase phase_ = Phase::kScan;
  std::size_t i_ = 0;         ///< scan anchor / edge start index
  std::size_t j_ = 0;         ///< last index of the merged step run
  std::size_t k_ = 0;         ///< return-tracking cursor
  bool rising_ = true;
  double peak_ = 0.0;
  std::size_t peak_idx_ = 0;
  core::Edge current_;

  std::vector<core::Edge> edges_;
};

}  // namespace exawatt::stream
