#include "stream/ingest.hpp"

#include "util/check.hpp"

namespace exawatt::stream {

ShardedIngest::ShardedIngest(IngestOptions options) : options_(options) {
  EXA_CHECK(options_.shards > 0, "ingest needs at least one shard");
  EXA_CHECK(options_.shard_capacity > 0, "shard capacity must be positive");
  rings_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    rings_.push_back(
        std::make_unique<util::SpscRing<Event>>(options_.shard_capacity));
  }
  stats_.resize(options_.shards);
}

void ShardedIngest::push(std::size_t shard, const Event& event) {
  EXA_CHECK(shard < rings_.size(), "shard index out of range");
  util::SpscRing<Event>& ring = *rings_[shard];
  ShardStats& st = stats_[shard];
  const std::size_t lag = ring.size();
  if (lag > st.max_lag) st.max_lag = lag;
  if (options_.policy == BackpressurePolicy::kDropOldest) {
    if (ring.push_overwrite(event)) ++st.dropped;
  } else {
    while (!ring.try_push(event)) {
      ++st.blocked_spins;
      std::this_thread::yield();
    }
  }
  ++st.pushed;
}

std::uint64_t ShardedIngest::total_pushed() const {
  std::uint64_t total = 0;
  for (const ShardStats& st : stats_) total += st.pushed;
  return total;
}

std::uint64_t ShardedIngest::total_dropped() const {
  std::uint64_t total = 0;
  for (const ShardStats& st : stats_) total += st.dropped;
  return total;
}

std::size_t ShardedIngest::backlog() const {
  std::size_t total = 0;
  for (const auto& ring : rings_) total += ring->size();
  return total;
}

}  // namespace exawatt::stream
