#include "stream/engine.hpp"

#include <cstdio>
#include <sstream>

#include "util/check.hpp"
#include "util/sim_time.hpp"

namespace exawatt::stream {

Engine::Engine(EngineOptions options)
    : options_(options),
      now_(options.range.begin),
      coarsener_(options.range, options.window),
      rollup_(options.range, options.window, options.rollup),
      alerts_(options.alerts) {
  EXA_CHECK(options_.allowed_lateness_s >= 0,
            "allowed lateness cannot be negative");
  coarsener_.set_sink(
      [this](const WindowUpdate& update) { rollup_.on_window(update); });
  rollup_.set_edge_sink(
      [this](const core::Edge& edge) { alerts_.on_edge(edge); });
}

void Engine::ingest(const telemetry::Collector::Arrival& arrival) {
  const telemetry::MetricId id = arrival.event.id;
  const auto value = static_cast<double>(arrival.event.value);
  ++events_;
  coarsener_.push(id, arrival.event.t, value);
  alerts_.on_node_event(telemetry::metric_node(id), arrival.arrival_t);

  const telemetry::ChannelInfo info =
      telemetry::channel_info(telemetry::metric_channel(id));
  switch (info.kind) {
    case telemetry::MetricKind::kInputPower:
      power_q_.add(value);
      node_power_w_[telemetry::metric_node(id)] = value;
      break;
    case telemetry::MetricKind::kGpuCoreTemp:
      temp_q_.add(value);
      gpu_temp_c_[id] = value;
      alerts_.on_gpu_temp(telemetry::metric_node(id), arrival.arrival_t,
                          value);
      break;
    case telemetry::MetricKind::kCpuCoreTemp:
      cpu_temp_c_[id] = value;
      break;
    default:
      break;
  }
}

void Engine::advance_to(util::TimeSec now) {
  now_ = now;
  coarsener_.advance(now - options_.allowed_lateness_s);
  rollup_.close_up_to(coarsener_.watermark());
  alerts_.advance(now);
}

void Engine::finish() {
  now_ = options_.range.end;
  coarsener_.finish();
  rollup_.finish();
}

core::DashboardSnapshot Engine::dashboard() const {
  core::DashboardSnapshot snap;
  snap.title = "live stream dashboard";
  snap.t = now_;
  snap.cluster_power_w = rollup_.latest_power_w();
  snap.cooling = rollup_.cooling_state();
  snap.sampled_nodes = static_cast<int>(node_power_w_.size());
  for (const auto& [id, c] : gpu_temp_c_) {
    snap.gpu_core_c.add(c);
    if (c >= options_.gpu_warn_c) ++snap.thermal_warnings;
  }
  for (const auto& [id, c] : cpu_temp_c_) snap.cpu_core_c.add(c);
  // Busy = above twice the observed per-node power floor: a model-free
  // proxy (the engine only sees telemetry, not the allocation index).
  double floor_w = 0.0;
  bool have_floor = false;
  for (const auto& [node, w] : node_power_w_) {
    if (!have_floor || w < floor_w) {
      floor_w = w;
      have_floor = true;
    }
  }
  for (const auto& [node, w] : node_power_w_) {
    if (w > 2.0 * floor_w) ++snap.busy_nodes;
  }
  return snap;
}

std::string Engine::render(std::size_t alert_tail) const {
  std::ostringstream os;
  os << dashboard().render();
  char line[192];
  std::snprintf(line, sizeof line,
                "node power W   p50 %7.0f  p95 %7.0f  p99 %7.0f  (n=%llu)\n",
                power_q_.p50(), power_q_.p95(), power_q_.p99(),
                static_cast<unsigned long long>(power_q_.count()));
  os << line;
  std::snprintf(line, sizeof line,
                "gpu core C     p50 %7.1f  p95 %7.1f  p99 %7.1f  (n=%llu)\n",
                temp_q_.p50(), temp_q_.p95(), temp_q_.p99(),
                static_cast<unsigned long long>(temp_q_.count()));
  os << line;
  std::snprintf(
      line, sizeof line,
      "watermark %s | windows closed %zu | pending %zu | late dropped %llu\n",
      util::format_time(coarsener_.watermark()).c_str(),
      rollup_.closed_windows(), coarsener_.pending_samples(),
      static_cast<unsigned long long>(coarsener_.late_dropped()));
  os << line;
  std::snprintf(line, sizeof line,
                "alerts raised: swing %zu  thermal %zu  silence %zu "
                "(active %zu/%zu/%zu)\n",
                alerts_.raised(AlertKind::kPowerSwing),
                alerts_.raised(AlertKind::kThermal),
                alerts_.raised(AlertKind::kSilence),
                alerts_.active(AlertKind::kPowerSwing),
                alerts_.active(AlertKind::kThermal),
                alerts_.active(AlertKind::kSilence));
  os << line;
  const auto& log = alerts_.log();
  const std::size_t first =
      log.size() > alert_tail ? log.size() - alert_tail : 0;
  for (std::size_t i = first; i < log.size(); ++i) {
    os << "  " << log[i].describe() << '\n';
  }
  return os.str();
}

}  // namespace exawatt::stream
