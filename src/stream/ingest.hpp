#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "telemetry/collector.hpp"
#include "util/ring_buffer.hpp"

namespace exawatt::stream {

/// Backpressure policy when a shard ring is full.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,       ///< producer spins (yielding) until the consumer drains —
                ///< lossless; the paper's pipeline must not drop (Table 2)
  kDropOldest,  ///< overwrite the oldest queued event — bounded staleness
                ///< for dashboards that prefer fresh data over complete data
};

struct IngestOptions {
  std::size_t shards = 4;
  std::size_t shard_capacity = 1 << 14;  ///< events per shard ring
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
};

/// Per-shard transport accounting.
struct ShardStats {
  std::uint64_t pushed = 0;
  std::uint64_t dropped = 0;        ///< drop-oldest evictions
  std::uint64_t blocked_spins = 0;  ///< full-ring spin iterations (kBlock)
  std::size_t max_lag = 0;          ///< deepest queue observed at push
};

/// Sharded ingest front-end of the streaming engine: the MPSC facade the
/// collector feed lands on. Internally one bounded SPSC ring per shard —
/// the standard "N producers, each with its own SPSC lane to one
/// consumer" decomposition, so the hot path is wait-free under the
/// one-producer-per-shard contract (`push(shard, ...)` with a distinct
/// shard per producer thread; the routed `push(event)` facade is for
/// single-producer callers like the lock-step simulator).
class ShardedIngest {
 public:
  using Event = telemetry::Collector::Arrival;

  explicit ShardedIngest(IngestOptions options = {});

  [[nodiscard]] std::size_t shards() const { return rings_.size(); }
  [[nodiscard]] const IngestOptions& options() const { return options_; }

  /// Shard routing: by node, so one node's metrics stay ordered.
  [[nodiscard]] std::size_t shard_of(telemetry::MetricId id) const {
    return static_cast<std::size_t>(telemetry::metric_node(id)) %
           rings_.size();
  }

  /// Producer path. The shard index is the producer's lane — exactly one
  /// thread may push to a given shard.
  void push(std::size_t shard, const Event& event);
  /// Routed facade for a single producer feeding all shards.
  void push(const Event& event) { push(shard_of(event.event.id), event); }

  /// Consumer path: drain every shard round-robin into `fn(event)`.
  /// Returns the number of events delivered.
  template <typename F>
  std::size_t drain(F&& fn) {
    std::size_t delivered = 0;
    Event e;
    for (auto& ring : rings_) {
      while (ring->pop(e)) {
        fn(e);
        ++delivered;
      }
    }
    return delivered;
  }

  [[nodiscard]] const ShardStats& shard_stats(std::size_t shard) const {
    return stats_[shard];
  }
  [[nodiscard]] std::uint64_t total_pushed() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  /// Events queued across shards right now (racy snapshot).
  [[nodiscard]] std::size_t backlog() const;

 private:
  IngestOptions options_;
  std::vector<std::unique_ptr<util::SpscRing<Event>>> rings_;
  std::vector<ShardStats> stats_;
};

}  // namespace exawatt::stream
