#include "stream/rollup.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace exawatt::stream {

ClusterRollup::ClusterRollup(util::TimeRange range, util::TimeSec window,
                             RollupOptions options)
    : range_(range),
      window_(window),
      options_(options),
      sums_(static_cast<std::size_t>((range.duration() + window - 1) / window),
            0.0),
      counts_(sums_.size(), 0.0),
      plant_(options.cooling),
      weather_(options.weather_seed),
      edges_(range.begin, window, options.edge_node_count,
             options.edge_options) {
  EXA_CHECK(options_.power_scale > 0.0, "power scale must be positive");
}

void ClusterRollup::on_window(const WindowUpdate& update) {
  if (telemetry::metric_channel(update.id) !=
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0)) {
    return;
  }
  if (update.stats.count == 0 || update.index >= sums_.size()) return;
  // Same accumulation as the batch cluster_sum: per window, the sum of
  // contributing nodes' means. Updates arrive in ascending MetricId (=
  // node) order per advance, so the FP addition order matches a batch
  // roll-up over an ascending node list.
  sums_[update.index] += update.stats.mean;
  counts_[update.index] += 1.0;
}

void ClusterRollup::close_up_to(util::TimeSec watermark) {
  // Windows ending at or before the watermark; at the range end the
  // trailing partial window closes too.
  const std::size_t limit =
      watermark >= range_.end
          ? sums_.size()
          : static_cast<std::size_t>(std::min<util::TimeSec>(
                static_cast<util::TimeSec>(sums_.size()),
                std::max<util::TimeSec>(
                    0, (watermark - range_.begin) / window_)));
  while (closed_ < limit) {
    const std::size_t w = closed_;
    const util::TimeSec t =
        range_.begin + window_ * static_cast<util::TimeSec>(w);
    double power = sums_[w] * options_.power_scale;
    if (options_.power_override) {
      power = options_.power_override(t, power);
    }
    double wet_bulb = weather_.wet_bulb_c(t);
    if (options_.wet_bulb_override) {
      wet_bulb = options_.wet_bulb_override(t, wet_bulb);
    }
    const bool force =
        options_.force_chillers && options_.force_chillers(t);
    if (!plant_primed_) {
      // Steady-state start avoids a cold-plant PUE transient at the
      // stream head (mirrors the batch cep simulation's reset).
      plant_.reset(power, wet_bulb);
      plant_primed_ = true;
    }
    const facility::CoolingState& state =
        plant_.step(window_, power, wet_bulb, force);
    closed_power_w_.push_back(power);
    closed_pue_.push_back(state.pue);
    latest_power_w_ = power;
    edges_.push(power);
    if (sink_) sink_({w, t, power, counts_[w], state});
    ++closed_;
  }
}

void ClusterRollup::finish() {
  close_up_to(range_.end);
  edges_.finish();
}

ts::Series ClusterRollup::power_series() const {
  return ts::Series(range_.begin, window_, closed_power_w_);
}

ts::Series ClusterRollup::pue_series() const {
  return ts::Series(range_.begin, window_, closed_pue_);
}

}  // namespace exawatt::stream
