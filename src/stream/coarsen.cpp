#include "stream/coarsen.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace exawatt::stream {

namespace {

ts::WindowStats to_stats(const util::Welford& w) {
  ts::WindowStats s;
  s.count = w.count();
  s.min = w.min();
  s.max = w.max();
  s.mean = w.mean();
  s.std = w.stddev();
  return s;
}

}  // namespace

StreamingCoarsener::StreamingCoarsener(util::TimeRange range,
                                       util::TimeSec window)
    : range_(range),
      window_(window),
      n_windows_(static_cast<std::size_t>((range.duration() + window - 1) /
                                          window)),
      watermark_(range.begin - 1) {
  EXA_CHECK(window_ > 0, "coarsening window must be positive");
  EXA_CHECK(range_.duration() > 0, "coarsening range must be non-empty");
}

void StreamingCoarsener::push(telemetry::MetricId id, util::TimeSec emit_t,
                              double value) {
  const util::TimeSec clamped =
      std::min(std::max(emit_t, range_.begin), range_.end);
  if (clamped <= watermark_) {
    // The watermark promised every sample at or before it has been seen;
    // a straggler beyond the collector's max delay is dropped, counted,
    // and leaves the already-emitted windows untouched.
    ++late_dropped_;
    return;
  }
  ++samples_seen_;
  MetricState& s = metrics_[id];
  // Insert into the per-metric reorder buffer, keeping emit-time order.
  // Equal emit times keep push order (last pushed wins the hold, exactly
  // like the batch path's zero-length hold for duplicate timestamps).
  auto it = std::upper_bound(
      s.pending.begin(), s.pending.end(), emit_t,
      [](util::TimeSec t, const ts::Sample& sm) { return t < sm.t; });
  s.pending.insert(it, ts::Sample{emit_t, value});
  ++pending_total_;
}

void StreamingCoarsener::close_open(telemetry::MetricId id, MetricState& s) {
  if (s.open.count() == 0) return;
  if (sink_) {
    sink_({id, s.open_index,
           range_.begin + window_ * static_cast<util::TimeSec>(s.open_index),
           to_stats(s.open)});
  }
  s.open = util::Welford{};
}

void StreamingCoarsener::fill_to(telemetry::MetricId id, MetricState& s,
                                 util::TimeSec limit) {
  // Mirror of the batch ts::coarsen inner loop: distribute the held value
  // across the windows [filled_to, limit) covers, one add per second.
  while (s.filled_to < limit) {
    const auto w =
        static_cast<std::size_t>((s.filled_to - range_.begin) / window_);
    if (w >= n_windows_) {
      s.filled_to = limit;
      break;
    }
    if (w != s.open_index) {
      close_open(id, s);
      s.open_index = w;
    }
    const util::TimeSec wend =
        range_.begin + window_ * static_cast<util::TimeSec>(w + 1);
    const util::TimeSec covered = std::min(limit, wend) - s.filled_to;
    for (util::TimeSec k = 0; k < covered; ++k) s.open.add(s.hold_value);
    s.filled_to += covered;
  }
}

void StreamingCoarsener::advance(util::TimeSec watermark) {
  const util::TimeSec w = std::min(watermark, range_.end);
  if (w <= watermark_) return;
  watermark_ = w;

  for (auto& [id, s] : metrics_) {
    // Integrate pending samples emitted at or before the watermark, in
    // emit order (this is where cross-metric arrival skew is undone).
    std::size_t consumed = 0;
    while (consumed < s.pending.size() && s.pending[consumed].t <= w) {
      const ts::Sample& sample = s.pending[consumed];
      const util::TimeSec clamped =
          std::min(std::max(sample.t, range_.begin), range_.end);
      if (s.has_hold) {
        fill_to(id, s, clamped);
      } else {
        s.has_hold = true;
        s.filled_to = clamped;
        // Seed the open-window cursor so the first fill starts cleanly.
        s.open_index = static_cast<std::size_t>(
            std::min(static_cast<util::TimeSec>(n_windows_ - 1),
                     (clamped - range_.begin) / window_));
      }
      s.hold_value = sample.value;
      ++consumed;
    }
    if (consumed > 0) {
      s.pending.erase(s.pending.begin(),
                      s.pending.begin() + static_cast<std::ptrdiff_t>(consumed));
      pending_total_ -= consumed;
    }
    // Sample-and-hold extension: the last value is known to persist at
    // least to the watermark (no earlier emit can still arrive).
    if (s.has_hold) fill_to(id, s, w);
    // Windows ending at or before the watermark are final; at the range
    // end every window is (a trailing partial window ends past range.end
    // but can receive no further data).
    if (s.open.count() > 0) {
      const util::TimeSec open_end =
          range_.begin +
          window_ * static_cast<util::TimeSec>(s.open_index + 1);
      if (open_end <= w || w >= range_.end) close_open(id, s);
    }
  }
}

WindowCollector::WindowCollector(const StreamingCoarsener& coarsener)
    : start_(coarsener.range().begin),
      window_(coarsener.window()),
      n_windows_(coarsener.n_windows()) {}

void WindowCollector::operator()(const WindowUpdate& update) {
  auto& windows = windows_[update.id];
  if (windows.empty()) windows.resize(n_windows_);
  if (update.index < windows.size()) windows[update.index] = update.stats;
}

ts::StatSeries WindowCollector::series(telemetry::MetricId id) const {
  const auto it = windows_.find(id);
  if (it == windows_.end()) {
    return ts::StatSeries(start_, window_,
                          std::vector<ts::WindowStats>(n_windows_));
  }
  return ts::StatSeries(start_, window_, it->second);
}

std::vector<telemetry::MetricId> WindowCollector::metric_ids() const {
  std::vector<telemetry::MetricId> ids;
  ids.reserve(windows_.size());
  for (const auto& [id, unused] : windows_) ids.push_back(id);
  return ids;
}

}  // namespace exawatt::stream
