#include "stream/alerts.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"
#include "util/sim_time.hpp"

namespace exawatt::stream {

const char* alert_kind_name(AlertKind kind) {
  switch (kind) {
    case AlertKind::kPowerSwing: return "power-swing";
    case AlertKind::kThermal: return "thermal";
    case AlertKind::kSilence: return "silence";
    case AlertKind::kIngestDrops: return "ingest-drop";
  }
  return "?";
}

std::string Alert::describe() const {
  char line[128];
  switch (kind) {
    case AlertKind::kPowerSwing:
      std::snprintf(line, sizeof line, "[%s] %s cluster swing %.2f MW (%s)",
                    util::format_time(t).c_str(), raised ? "RAISE" : "clear",
                    value / 1e6, raised ? "edge closed" : "returned");
      break;
    case AlertKind::kThermal:
      std::snprintf(line, sizeof line, "[%s] %s node %d GPU temp z=%.2f",
                    util::format_time(t).c_str(), raised ? "RAISE" : "clear",
                    node, value);
      break;
    case AlertKind::kSilence:
      std::snprintf(line, sizeof line, "[%s] %s node %d silent %.0f s",
                    util::format_time(t).c_str(), raised ? "RAISE" : "clear",
                    node, value);
      break;
    case AlertKind::kIngestDrops:
      std::snprintf(line, sizeof line, "[%s] %s ingest shed %.0f event(s)",
                    util::format_time(t).c_str(), raised ? "RAISE" : "clear",
                    value);
      break;
  }
  return line;
}

AlertEngine::AlertEngine(AlertOptions options) : options_(options) {
  EXA_CHECK(options_.thermal_z_clear <= options_.thermal_z_raise,
            "thermal hysteresis bounds inverted");
  EXA_CHECK(options_.silence_s > 0, "silence threshold must be positive");
}

void AlertEngine::emit(AlertKind kind, bool raised, util::TimeSec t,
                       machine::NodeId node, double value) {
  log_.push_back({kind, raised, t, node, value});
  const auto k = static_cast<std::size_t>(kind);
  if (raised) {
    ++raised_[k];
    ++active_[k];
  } else if (active_[k] > 0) {
    --active_[k];
  }
}

std::size_t AlertEngine::raised(AlertKind kind) const {
  return raised_[static_cast<std::size_t>(kind)];
}

std::size_t AlertEngine::active(AlertKind kind) const {
  return active_[static_cast<std::size_t>(kind)];
}

void AlertEngine::on_edge(const core::Edge& edge) {
  if (edge.amplitude_w < options_.power_swing_w) return;
  const auto t_close = edge.start + edge.duration_s;
  emit(AlertKind::kPowerSwing, true, t_close, -1, edge.amplitude_w);
  // A returned edge gave the excursion back: the swing is over, clear.
  if (edge.returned) {
    emit(AlertKind::kPowerSwing, false, t_close, -1, edge.amplitude_w);
  }
}

void AlertEngine::on_gpu_temp(machine::NodeId node, util::TimeSec t,
                              double temp_c) {
  gpu_temp_baseline_.add(temp_c);
  if (gpu_temp_baseline_.count() < options_.thermal_min_baseline) return;
  const double sd = gpu_temp_baseline_.stddev();
  if (sd <= 0.0) return;
  const double z = (temp_c - gpu_temp_baseline_.mean()) / sd;
  bool& hot = thermal_hot_[node];
  if (!hot && z >= options_.thermal_z_raise) {
    hot = true;
    emit(AlertKind::kThermal, true, t, node, z);
  } else if (hot && z <= options_.thermal_z_clear) {
    hot = false;
    emit(AlertKind::kThermal, false, t, node, z);
  }
}

void AlertEngine::on_node_event(machine::NodeId node,
                                util::TimeSec arrival_t) {
  last_seen_[node] = arrival_t;
  bool& quiet = silent_[node];
  if (quiet) {
    quiet = false;
    emit(AlertKind::kSilence, false, arrival_t, node, 0.0);
  }
}

void AlertEngine::on_ingest_drops(util::TimeSec t,
                                  std::uint64_t total_dropped) {
  EXA_CHECK(total_dropped >= ingest_drops_seen_,
            "ingest drop counter went backwards");
  const std::uint64_t fresh = total_dropped - ingest_drops_seen_;
  ingest_drops_seen_ = total_dropped;
  if (fresh > 0 && !ingest_dropping_) {
    ingest_dropping_ = true;
    emit(AlertKind::kIngestDrops, true, t, -1, static_cast<double>(fresh));
  } else if (fresh == 0 && ingest_dropping_) {
    ingest_dropping_ = false;
    emit(AlertKind::kIngestDrops, false, t, -1,
         static_cast<double>(total_dropped));
  }
}

void AlertEngine::advance(util::TimeSec now) {
  for (const auto& [node, seen] : last_seen_) {
    const auto silent_for = now - seen;
    bool& quiet = silent_[node];
    if (!quiet && silent_for >= options_.silence_s) {
      quiet = true;
      emit(AlertKind::kSilence, true, now, node,
           static_cast<double>(silent_for));
    }
  }
}

}  // namespace exawatt::stream
