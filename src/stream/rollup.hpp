#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "facility/cooling.hpp"
#include "facility/weather.hpp"
#include "stream/coarsen.hpp"
#include "stream/edge.hpp"
#include "telemetry/metric.hpp"

namespace exawatt::stream {

/// Cluster-level online roll-up: consumes the coarsener's closed
/// input-power windows and maintains (a) the rolling cluster power series
/// (the streaming `telemetry::cluster_sum` — sum of contributing nodes'
/// window means), (b) the facility response along it — a
/// `facility::CoolingPlant` stepped window-by-window, whose internal MTW
/// transport delay gives the paper's lagged return/PUE dynamics — and
/// (c) a streaming edge detector on the rolled-up power (868 W/node rule).
struct RollupOptions {
  /// Multiplier from instrumented-subset power to machine power (e.g.
  /// machine_nodes / instrumented_nodes when sampling a subset).
  double power_scale = 1.0;
  /// Node count normalizing the edge threshold (the machine, not the
  /// instrumented subset, so the 868 W/node rule stays scale-invariant).
  double edge_node_count = 1.0;
  core::EdgeOptions edge_options = {};
  facility::CoolingParams cooling = {};
  std::uint64_t weather_seed = 7;

  /// Counterfactual intervention hooks (installed by src/scenario). All
  /// default to null, in which case close_up_to runs exactly the
  /// historical pipeline — the identity scenario is bit-identical to a
  /// plain roll-up by construction, not by tolerance.
  /// Maps (window start, rolled-up machine power W) -> power fed to the
  /// cooling plant and the power series (e.g. a cluster power cap).
  std::function<double(util::TimeSec, double)> power_override;
  /// Maps (window start, weather wet-bulb degC) -> wet-bulb seen by the
  /// plant (e.g. a season offset).
  std::function<double(util::TimeSec, double)> wet_bulb_override;
  /// True while trim chillers must carry the full load (tower outage).
  std::function<bool(util::TimeSec)> force_chillers;
};

/// One finalized cluster window.
struct ClusterWindow {
  std::size_t index = 0;
  util::TimeSec t = 0;           ///< window start
  double power_w = 0.0;          ///< machine-scaled cluster power
  double nodes_reporting = 0.0;  ///< contributing node count
  facility::CoolingState cooling;
};

class ClusterRollup {
 public:
  using WindowSink = std::function<void(const ClusterWindow&)>;

  ClusterRollup(util::TimeRange range, util::TimeSec window,
                RollupOptions options);

  void set_sink(WindowSink sink) { sink_ = std::move(sink); }
  /// Closed power edges land here (wire to the alert engine).
  void set_edge_sink(StreamingEdgeDetector::EdgeSink sink) {
    edges_.set_sink(std::move(sink));
  }

  /// Feed every coarsener window update; non-input-power channels are
  /// ignored, so this can be installed directly as the coarsener sink.
  void on_window(const WindowUpdate& update);

  /// Finalize every window ending at or before the watermark (call after
  /// StreamingCoarsener::advance with the same watermark).
  void close_up_to(util::TimeSec watermark);
  void finish();

  /// Closed cluster power as a grid series (unclosed tail omitted; zero
  /// where no node reported).
  [[nodiscard]] ts::Series power_series() const;
  [[nodiscard]] ts::Series pue_series() const;
  [[nodiscard]] std::size_t closed_windows() const { return closed_; }
  [[nodiscard]] double latest_power_w() const { return latest_power_w_; }
  [[nodiscard]] const facility::CoolingState& cooling_state() const {
    return plant_.state();
  }
  [[nodiscard]] const StreamingEdgeDetector& edges() const { return edges_; }
  [[nodiscard]] const facility::Weather& weather() const { return weather_; }

 private:
  util::TimeRange range_;
  util::TimeSec window_;
  RollupOptions options_;
  std::vector<double> sums_;    ///< per-window sum of node window means
  std::vector<double> counts_;  ///< per-window contributing nodes
  std::size_t closed_ = 0;
  bool plant_primed_ = false;
  facility::CoolingPlant plant_;
  facility::Weather weather_;
  StreamingEdgeDetector edges_;
  std::vector<double> closed_power_w_;
  std::vector<double> closed_pue_;
  double latest_power_w_ = 0.0;
  WindowSink sink_;
};

}  // namespace exawatt::stream
