#pragma once

#include <vector>

#include "store/store.hpp"
#include "stream/engine.hpp"

namespace exawatt::stream {

/// Replay a store-resident telemetry window through a fresh streaming
/// engine: queries every node's input-power channel over `options.range`,
/// re-feeds the events in emit-time order (replay has no transport delay,
/// so arrival == emit) and returns the closed cluster power series after
/// `finish()`. This is the disk-backed variant of `exawatt_sim stream`'s
/// batch-equivalence check — on the same event stream it must be
/// bit-identical to `telemetry::cluster_sum` / `store::cluster_sum`.
[[nodiscard]] ts::Series replay_power_rollup(
    const store::Store& store, const std::vector<machine::NodeId>& nodes,
    EngineOptions options);

}  // namespace exawatt::stream
