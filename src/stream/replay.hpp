#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "store/store.hpp"
#include "stream/engine.hpp"

namespace exawatt::stream {

/// Observation hooks for replay_rollup. All optional; all are invoked on
/// the calling thread, in stream order.
struct ReplaySinks {
  /// Every finalized cluster window, as it closes.
  std::function<void(const ClusterWindow&)> on_window;
  /// Every alert transition, as it is raised/cleared.
  std::function<void(const Alert&)> on_alert;
  /// Polled once per replayed second; return true to abandon the replay
  /// (e.g. the subscriber disconnected). Already-emitted windows stand.
  std::function<bool()> cancelled;
};

/// What a finished (or abandoned) replay produced.
struct RollupReplay {
  ts::Series power;  ///< closed cluster power (machine-scaled W)
  ts::Series pue;    ///< facility PUE along the same grid
  std::uint64_t events = 0;     ///< events re-fed into the engine
  std::size_t windows = 0;      ///< cluster windows closed
  bool cancelled = false;       ///< true when sinks.cancelled tripped
};

/// Replay a store-resident telemetry window through a fresh streaming
/// engine: queries every node's input-power channel over `options.range`,
/// re-feeds the events in emit-time order (replay has no transport delay,
/// so arrival == emit) and drives the engine second-by-second. Closed
/// windows and alert transitions stream through `sinks` while the replay
/// runs; the finished series come back in the result. Degradation seen by
/// the underlying store scan (lost segments/blocks, cache traffic) is
/// merged into `*stats` when given.
[[nodiscard]] RollupReplay replay_rollup(const store::Store& store,
                                         const std::vector<machine::NodeId>& nodes,
                                         EngineOptions options,
                                         const ReplaySinks& sinks = {},
                                         store::QueryStats* stats = nullptr);

/// The replay body on already-fetched per-metric runs: flatten, sort by
/// (emit time, metric id), drive the engine second-by-second. The store
/// overload above delegates here after its query_many, and the cluster
/// coordinator feeds it runs gathered over the wire — both roll-up
/// flavors literally execute this one function, so sharded and unsharded
/// answers agree bit-for-bit by construction, not by luck.
[[nodiscard]] RollupReplay replay_rollup_runs(
    const std::vector<store::MetricRun>& runs, EngineOptions options,
    const ReplaySinks& sinks = {});

/// The original power-only entry point: replay_rollup with no sinks,
/// returning just the closed cluster power series. On the same event
/// stream it must be bit-identical to `telemetry::cluster_sum` /
/// `store::cluster_sum` — `exawatt_sim storecheck` gates on that.
[[nodiscard]] ts::Series replay_power_rollup(
    const store::Store& store, const std::vector<machine::NodeId>& nodes,
    EngineOptions options);

}  // namespace exawatt::stream
