#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/edges.hpp"
#include "machine/topology.hpp"
#include "util/welford.hpp"

namespace exawatt::stream {

/// The paper's operational events, raised online (§2: the telemetry
/// system's point is that engineers see these within seconds, not in the
/// next day's batch sweep).
enum class AlertKind : std::uint8_t {
  kPowerSwing,   ///< cluster power edge with amplitude >= threshold
  kThermal,      ///< GPU core temperature z-score extremity
  kSilence,      ///< node stopped reporting telemetry
  kIngestDrops,  ///< the sharded ingest is shedding events (drop-oldest)
};

[[nodiscard]] const char* alert_kind_name(AlertKind kind);

struct Alert {
  AlertKind kind = AlertKind::kPowerSwing;
  bool raised = true;            ///< raise vs clear transition
  util::TimeSec t = 0;
  machine::NodeId node = -1;     ///< -1 for cluster-level alerts
  double value = 0.0;            ///< amplitude (W), z-score, or silence (s)

  [[nodiscard]] std::string describe() const;
};

struct AlertOptions {
  /// Cluster power-swing amplitude that pages (the paper discusses multi-
  /// MW swings as the events the facility must ride through).
  double power_swing_w = 1.0e6;
  /// Thermal extremity hysteresis: raise at z >= raise, clear at
  /// z <= clear (z against the online all-GPU baseline, the streaming
  /// stand-in for Figure 15's per-job z-scores).
  double thermal_z_raise = 3.0;
  double thermal_z_clear = 2.0;
  /// Baseline samples required before thermal alerts arm (a cold baseline
  /// would page on the first warm reading).
  std::uint64_t thermal_min_baseline = 500;
  /// A node silent for this long (vs the stream clock) raises kSilence —
  /// the Figure 17 "bright green cabinet" detector.
  util::TimeSec silence_s = 30;
};

/// Hysteresis-gated alert engine over the streaming operators' outputs.
/// Thermal and silence alerts latch per entity: one raise until the
/// clearing condition, then one clear. Power-swing alerts are discrete
/// (each qualifying closed edge raises once; a returned edge clears).
class AlertEngine {
 public:
  explicit AlertEngine(AlertOptions options = {});

  /// Closed cluster power edge (wire as the rollup's edge sink).
  void on_edge(const core::Edge& edge);
  /// One GPU core-temperature reading (updates baseline + extremity).
  void on_gpu_temp(machine::NodeId node, util::TimeSec t, double temp_c);
  /// Any event from a node (feeds the silence detector).
  void on_node_event(machine::NodeId node, util::TimeSec arrival_t);
  /// Cumulative ingest drop count (drop-oldest evictions across shards).
  /// Latched: raises when the counter first moves, stays active while it
  /// keeps moving, clears on the first report with no new drops — the
  /// paper's "pipeline must not lose samples" contract made pageable.
  void on_ingest_drops(util::TimeSec t, std::uint64_t total_dropped);
  /// Advance the stream clock; silent nodes raise here.
  void advance(util::TimeSec now);

  [[nodiscard]] const std::vector<Alert>& log() const { return log_; }
  [[nodiscard]] std::size_t raised(AlertKind kind) const;
  [[nodiscard]] std::size_t active(AlertKind kind) const;
  [[nodiscard]] const util::Welford& thermal_baseline() const {
    return gpu_temp_baseline_;
  }

 private:
  void emit(AlertKind kind, bool raised, util::TimeSec t,
            machine::NodeId node, double value);

  AlertOptions options_;
  util::Welford gpu_temp_baseline_;
  std::map<machine::NodeId, bool> thermal_hot_;      ///< latched per node
  std::map<machine::NodeId, util::TimeSec> last_seen_;
  std::map<machine::NodeId, bool> silent_;
  std::uint64_t ingest_drops_seen_ = 0;
  bool ingest_dropping_ = false;
  std::vector<Alert> log_;
  std::array<std::size_t, 4> raised_{};
  std::array<std::size_t, 4> active_{};
};

}  // namespace exawatt::stream
