#include "stream/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace exawatt::stream {

P2Quantile::P2Quantile(double p) : p_(p) {
  EXA_CHECK(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
  dn_ = {0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  ++count_;
  if (count_ <= 5) {
    q_[count_ - 1] = x;
    if (count_ == 5) {
      std::sort(q_.begin(), q_.end());
      for (int i = 0; i < 5; ++i) {
        n_[i] = static_cast<double>(i + 1);
        np_[i] = 1.0 + 4.0 * dn_[i];
      }
    }
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  int cell;
  if (x < q_[0]) {
    q_[0] = x;
    cell = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= q_[cell + 1]) ++cell;
  }

  for (int i = cell + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];

  // Adjust the three interior markers toward their desired positions with
  // the piecewise-parabolic (P²) update, falling back to linear when the
  // parabola would leave the bracketing heights.
  for (int i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double qp =
          q_[i] + s / (n_[i + 1] - n_[i - 1]) *
                      ((n_[i] - n_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                           (n_[i + 1] - n_[i]) +
                       (n_[i + 1] - n_[i] - s) * (q_[i] - q_[i - 1]) /
                           (n_[i] - n_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {
        const int j = i + static_cast<int>(s);
        q_[i] += s * (q_[j] - q_[i]) / (n_[j] - n_[i]);
      }
      n_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample percentile (nearest-rank on the sorted prefix).
    std::array<double, 5> sorted = q_;
    const auto n = static_cast<std::size_t>(count_);
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(n));
    const auto rank = static_cast<std::size_t>(
        std::ceil(p_ * static_cast<double>(n)));
    return sorted[std::min(n - 1, rank > 0 ? rank - 1 : 0)];
  }
  return q_[2];
}

}  // namespace exawatt::stream
