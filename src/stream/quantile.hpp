#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace exawatt::stream {

/// Jain & Chlamtac's P² streaming quantile estimator: tracks one quantile
/// of an unbounded stream with five markers and O(1) state — no sample
/// retention, unlike `stats::Ecdf` which sorts the full population.
///
/// Sketch error (documented bound, verified in tests against the exact
/// Ecdf percentile): for smooth unimodal distributions the estimate lands
/// within ~1-2% of the interquartile spread of the true quantile; heavy
/// discretization (e.g. 1 W quantized power) adds at most one quantum.
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  void add(double x);

  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Current estimate; exact while fewer than five samples were seen.
  [[nodiscard]] double value() const;

 private:
  double p_;
  std::uint64_t count_ = 0;
  std::array<double, 5> q_{};   ///< marker heights
  std::array<double, 5> n_{};   ///< marker positions (1-based)
  std::array<double, 5> np_{};  ///< desired positions
  std::array<double, 5> dn_{};  ///< desired position increments
};

/// The operational dashboard's quantile row: median / p95 / p99 of one
/// telemetry channel, maintained online.
class QuantileSet {
 public:
  QuantileSet() : q_{P2Quantile(0.5), P2Quantile(0.95), P2Quantile(0.99)} {}

  void add(double x) {
    for (auto& q : q_) q.add(x);
  }

  [[nodiscard]] std::uint64_t count() const { return q_[0].count(); }
  [[nodiscard]] double p50() const { return q_[0].value(); }
  [[nodiscard]] double p95() const { return q_[1].value(); }
  [[nodiscard]] double p99() const { return q_[2].value(); }

 private:
  std::array<P2Quantile, 3> q_;
};

}  // namespace exawatt::stream
