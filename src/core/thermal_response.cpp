#include "core/thermal_response.hpp"

#include <cmath>

#include "machine/spec.hpp"
#include "thermal/rc_model.hpp"
#include "util/check.hpp"

namespace exawatt::core {

using machine::SummitSpec;

ts::Frame cluster_thermal_frame(const ts::Frame& cluster, const ts::Frame& cep,
                                int machine_nodes,
                                thermal::ThermalParams params) {
  EXA_CHECK(cluster.has("gpu_power_w") && cluster.has("cpu_power_w"),
            "cluster frame must carry component power columns");
  EXA_CHECK(cep.has("mtw_supply_c"), "cep frame must carry mtw_supply_c");
  EXA_CHECK(cluster.rows() == cep.rows() && cluster.dt() == cep.dt(),
            "cluster and cep frames must share one grid");
  EXA_CHECK(machine_nodes > 0, "need machine node count");

  const ts::Series& gpu_w = cluster.at("gpu_power_w");
  const ts::Series& cpu_w = cluster.at("cpu_power_w");
  const ts::Series& supply = cep.at("mtw_supply_c");
  const std::size_t n = cluster.rows();
  const double dt = static_cast<double>(cluster.dt());

  const double total_gpus =
      static_cast<double>(machine_nodes) * SummitSpec::kGpusPerNode;
  const double total_cpus =
      static_cast<double>(machine_nodes) * SummitSpec::kCpusPerNode;

  // Fleet thermal-resistance quantiles (lognormal): the mean chip and the
  // ~99.9th-percentile chip that defines the cluster max.
  const double r_gpu_mean = params.gpu_r_mean_c_per_w;
  const double r_gpu_hot =
      params.gpu_r_mean_c_per_w * std::exp(3.1 * params.gpu_r_sigma);
  const double r_cpu_mean = params.cpu_r_mean_c_per_w;
  const double r_cpu_hot =
      params.cpu_r_mean_c_per_w * std::exp(3.1 * params.cpu_r_sigma);
  // Hot chips also sit in warm cabinets (quantile of the spatial offset).
  const double hot_cabinet = 2.6 * params.cabinet_sigma_c;

  std::vector<double> gpu_mean(n);
  std::vector<double> gpu_max(n);
  std::vector<double> cpu_mean(n);
  std::vector<double> cpu_max(n);

  double t_gpu_mean = 0.0;
  double t_gpu_max = 0.0;
  double t_cpu_mean = 0.0;
  double t_cpu_max = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double per_gpu_w = gpu_w[i] / total_gpus;
    const double per_cpu_w = cpu_w[i] / total_cpus;
    // Mean chain preheat: the average GPU sits behind one upstream GPU.
    const double preheat = params.chain_c_per_w * per_gpu_w;
    const double tgt_gpu_mean = supply[i] + r_gpu_mean * per_gpu_w + preheat;
    // The hottest GPU: worst resistance, warm cabinet, end of the chain
    // (two upstream devices), and above-average load (+10%).
    const double tgt_gpu_max = supply[i] + hot_cabinet +
                               r_gpu_hot * per_gpu_w * 1.10 +
                               2.0 * params.chain_c_per_w * per_gpu_w;
    const double tgt_cpu_mean = supply[i] + r_cpu_mean * per_cpu_w;
    const double tgt_cpu_max =
        supply[i] + hot_cabinet + r_cpu_hot * per_cpu_w * 1.05;
    if (i == 0) {
      t_gpu_mean = tgt_gpu_mean;
      t_gpu_max = tgt_gpu_max;
      t_cpu_mean = tgt_cpu_mean;
      t_cpu_max = tgt_cpu_max;
    } else {
      t_gpu_mean = thermal::rc_step(t_gpu_mean, tgt_gpu_mean, dt,
                                    params.gpu_tau_s);
      // Hot outliers integrate more heat; their effective tau is longer,
      // so the max keeps climbing after the mean settles.
      t_gpu_max = thermal::rc_step(t_gpu_max, tgt_gpu_max, dt,
                                   params.gpu_tau_s * 3.0);
      t_cpu_mean = thermal::rc_step(t_cpu_mean, tgt_cpu_mean, dt,
                                    params.cpu_tau_s);
      t_cpu_max = thermal::rc_step(t_cpu_max, tgt_cpu_max, dt,
                                   params.cpu_tau_s * 2.0);
    }
    gpu_mean[i] = t_gpu_mean;
    gpu_max[i] = t_gpu_max;
    cpu_mean[i] = t_cpu_mean;
    cpu_max[i] = t_cpu_max;
  }

  ts::Frame out(cluster.start(), cluster.dt(), n);
  out.set("gpu_mean_c", std::move(gpu_mean));
  out.set("gpu_max_c", std::move(gpu_max));
  out.set("cpu_mean_c", std::move(cpu_mean));
  out.set("cpu_max_c", std::move(cpu_max));
  return out;
}

}  // namespace exawatt::core
