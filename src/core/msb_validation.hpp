#pragma once

#include <vector>

#include "facility/msb.hpp"
#include "stats/descriptive.hpp"
#include "ts/series.hpp"
#include "workload/job.hpp"

namespace exawatt::core {

/// Figure 4 reproduction: compare each main switchboard's revenue meter
/// against the summation of the per-node telemetry sensors under it.
struct MsbComparison {
  machine::MsbId msb = 0;
  ts::Series meter_w;       ///< 10 s mean of the MSB meter
  ts::Series summation_w;   ///< sum of per-node sensor 10 s means
  double mean_diff_w = 0.0; ///< mean of (meter - summation)
  double std_diff_w = 0.0;
  double relative_diff = 0.0;  ///< |mean diff| / mean meter power
  double phase_correlation = 0.0;  ///< Pearson r of the two series
};

struct MsbValidationResult {
  std::vector<MsbComparison> per_msb;
  double overall_mean_diff_w = 0.0;  ///< across all MSBs (paper: -129 kW)
  double overall_relative = 0.0;     ///< paper: ~11%
};

/// Build the comparison over a window from the scheduled jobs. Uses the
/// job-centric roll-up per MSB (node ranges intersected with MSB blocks)
/// so full-scale day windows stay cheap.
[[nodiscard]] MsbValidationResult validate_msbs(
    const std::vector<workload::Job>& jobs, const machine::Topology& topo,
    const facility::MsbModel& msb, util::TimeRange window,
    util::TimeSec dt = 10);

}  // namespace exawatt::core
