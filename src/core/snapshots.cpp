#include "core/snapshots.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/check.hpp"

namespace exawatt::core {

std::vector<EdgeSnapshotSet> collect_edge_sets(const ts::Series& cluster_power,
                                               double machine_nodes,
                                               bool rising,
                                               SnapshotOptions options) {
  EXA_CHECK(options.amplitude_bin_mw > 0.0, "amplitude bin must be positive");
  const std::vector<Edge> edges =
      detect_edges(cluster_power, machine_nodes, options.edges);
  std::map<int, EdgeSnapshotSet> bins;
  for (const Edge& e : edges) {
    if (e.rising != rising) continue;
    const int mw = static_cast<int>(
        std::floor(e.amplitude_w / 1.0e6 / options.amplitude_bin_mw));
    if (mw < 1) continue;  // sub-MW swings are not in Figure 11's range
    if (options.steady_pre_fraction <= 1.0) {
      // Require a steady pre-edge level so superimposed means are clean.
      const std::ptrdiff_t at = cluster_power.index_of(e.start);
      const auto back = static_cast<std::ptrdiff_t>(
          options.before_s / cluster_power.dt());
      double lo = e.initial_w;
      double hi = e.initial_w;
      for (std::ptrdiff_t k = at - back; k <= at; ++k) {
        if (k < 0 || k >= static_cast<std::ptrdiff_t>(cluster_power.size())) {
          continue;
        }
        lo = std::min(lo, cluster_power[static_cast<std::size_t>(k)]);
        hi = std::max(hi, cluster_power[static_cast<std::size_t>(k)]);
      }
      if (hi - lo > options.steady_pre_fraction * e.amplitude_w) continue;
    }
    auto& set = bins[mw];
    set.amplitude_mw = mw;
    set.rising = rising;
    set.at.push_back(e.start);
  }
  std::vector<EdgeSnapshotSet> out;
  out.reserve(bins.size());
  for (auto& [mw, set] : bins) out.push_back(std::move(set));
  return out;
}

stats::SnapshotBand superimpose_column(const ts::Series& column,
                                       const EdgeSnapshotSet& set,
                                       SnapshotOptions options) {
  EXA_CHECK(!column.empty(), "cannot snapshot an empty series");
  const util::TimeSec dt = column.dt();
  const auto before = static_cast<std::ptrdiff_t>(options.before_s / dt);
  const auto after = static_cast<std::ptrdiff_t>(options.after_s / dt);
  const std::size_t len = static_cast<std::size_t>(before + after + 1);
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

  std::vector<std::vector<double>> snapshots;
  snapshots.reserve(set.at.size());
  for (util::TimeSec t0 : set.at) {
    const std::ptrdiff_t center = column.index_of(t0);
    std::vector<double> snap(len, kNan);
    for (std::ptrdiff_t k = -before; k <= after; ++k) {
      const std::ptrdiff_t idx = center + k;
      if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(column.size())) {
        snap[static_cast<std::size_t>(k + before)] =
            column[static_cast<std::size_t>(idx)];
      }
    }
    snapshots.push_back(std::move(snap));
  }
  return stats::superimpose(snapshots);
}

}  // namespace exawatt::core
