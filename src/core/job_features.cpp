#include "core/job_features.hpp"

#include "util/parallel.hpp"

namespace exawatt::core {

std::vector<power::JobPowerSummary> summarize_jobs(
    const std::vector<workload::Job>& jobs, util::TimeSec dt) {
  std::vector<std::size_t> sched;
  sched.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].start >= 0 && jobs[i].end > jobs[i].start) sched.push_back(i);
  }
  return util::parallel_map(sched.size(), [&](std::size_t k) {
    return power::summarize_job(jobs[sched[k]], dt);
  });
}

std::vector<power::JobPowerSummary> by_class(
    const std::vector<power::JobPowerSummary>& all, int sched_class) {
  std::vector<power::JobPowerSummary> out;
  for (const auto& j : all) {
    if (j.sched_class == sched_class) out.push_back(j);
  }
  return out;
}

std::vector<double> feature(const std::vector<power::JobPowerSummary>& jobs,
                            JobFeature f) {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs) {
    switch (f) {
      case JobFeature::kNodeCount: out.push_back(j.node_count); break;
      case JobFeature::kWalltimeHours: out.push_back(j.runtime_s / 3600.0); break;
      case JobFeature::kMeanPowerW: out.push_back(j.mean_power_w); break;
      case JobFeature::kMaxPowerW: out.push_back(j.max_power_w); break;
      case JobFeature::kMaxMinusMeanW:
        out.push_back(j.max_power_w - j.mean_power_w);
        break;
      case JobFeature::kEnergyJ: out.push_back(j.energy_j); break;
      case JobFeature::kMeanCpuNodeW: out.push_back(j.mean_cpu_node_w); break;
      case JobFeature::kMaxCpuNodeW: out.push_back(j.max_cpu_node_w); break;
      case JobFeature::kMeanGpuNodeW: out.push_back(j.mean_gpu_node_w); break;
      case JobFeature::kMaxGpuNodeW: out.push_back(j.max_gpu_node_w); break;
    }
  }
  return out;
}

FeatureCdf feature_cdf(const std::vector<power::JobPowerSummary>& jobs,
                       JobFeature f) {
  const std::vector<double> values = feature(jobs, f);
  FeatureCdf out{f, stats::Ecdf(values), 0.0, 0.0};
  if (!values.empty()) {
    out.p80 = out.cdf.percentile(0.8);
    out.max = out.cdf.sorted().back();
  }
  return out;
}

}  // namespace exawatt::core
