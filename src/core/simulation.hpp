#pragma once

#include <memory>
#include <vector>

#include "facility/cep.hpp"
#include "failures/generator.hpp"
#include "power/cluster.hpp"
#include "workload/generator.hpp"
#include "workload/scheduler.hpp"

namespace exawatt::core {

/// Top-level configuration of the Summit digital twin.
struct SimulationConfig {
  machine::MachineScale scale = machine::MachineScale::full();
  std::uint64_t seed = 42;
  util::TimeRange range = {0, util::kYear};  ///< simulated 2020 window
  workload::WorkloadConfig workload = {};    ///< scale/seed overwritten
  facility::CepOptions cep = {};
  failures::FailureModelConfig failures = {};  ///< seed overwritten
};

/// Owns one simulated operational period end-to-end: job history,
/// cluster power, facility response and the GPU failure log. All lazily
/// computed and cached; everything is deterministic in the seed.
class Simulation {
 public:
  explicit Simulation(SimulationConfig config);

  [[nodiscard]] const SimulationConfig& config() const { return config_; }
  [[nodiscard]] const machine::MachineScale& scale() const {
    return config_.scale;
  }

  /// Scheduled job history (jobs that never started keep start == -1).
  [[nodiscard]] const std::vector<workload::Job>& jobs();
  [[nodiscard]] const workload::SchedulerStats& scheduler_stats();
  [[nodiscard]] const std::vector<workload::Project>& projects();

  /// Cluster power frame over a window (columns of
  /// power::cluster_power_frame). Not cached: callers choose dt.
  [[nodiscard]] ts::Frame cluster_frame(util::TimeRange range,
                                        power::ClusterSeriesOptions options);

  /// Facility telemetry (PUE, MTW temps, tons) along a cluster frame.
  [[nodiscard]] ts::Frame cep_frame(const ts::Frame& cluster);

  /// The year's GPU XID failure log (cached).
  [[nodiscard]] const std::vector<failures::GpuFailureEvent>& failure_log();

  /// The failure generator behind failure_log() — the source of truth for
  /// defect-node identities (super-offender, weak pool). Reconstructing a
  /// generator from a hand-copied config risks a seed mismatch; use this.
  [[nodiscard]] const failures::FailureGenerator& failure_generator();

 private:
  SimulationConfig config_;
  std::unique_ptr<workload::JobGenerator> generator_;
  std::vector<workload::Job> jobs_;
  workload::SchedulerStats sched_stats_;
  bool jobs_ready_ = false;
  std::unique_ptr<failures::FailureGenerator> failure_gen_;
  std::vector<failures::GpuFailureEvent> failures_;
  bool failures_ready_ = false;
};

}  // namespace exawatt::core
