#pragma once

#include <string>
#include <vector>

#include "facility/cooling.hpp"
#include "power/component.hpp"
#include "stats/histogram.hpp"
#include "thermal/node_thermal.hpp"
#include "workload/allocation_index.hpp"

namespace exawatt::core {

/// The telemetry system's primary *operational* product (paper §2):
/// a near-real-time summary that facility engineers cross-check against
/// MTW supply/return and flow — the histogram-based component-wise
/// temperature distribution of all 27,756 GPUs and 9,252 CPUs, plus the
/// cluster power level and cooling state.
struct DashboardSnapshot {
  /// Panel header; the streaming engine overrides it so live and batch
  /// panels are distinguishable in mixed output.
  std::string title = "facility dashboard";
  util::TimeSec t = 0;
  stats::Histogram gpu_core_c{10.0, 90.0, 16};
  stats::Histogram cpu_core_c{10.0, 90.0, 16};
  double cluster_power_w = 0.0;
  int busy_nodes = 0;
  int sampled_nodes = 0;
  /// GPUs within the warning band below the throttle onset.
  int thermal_warnings = 0;
  facility::CoolingState cooling;

  /// Render the engineer-facing panel (histograms as bars, cooling row).
  [[nodiscard]] std::string render() const;
};

/// Builds snapshots from the simulation state. `sample_stride` subsamples
/// nodes (1 = every node) so full-scale snapshots stay interactive.
class FacilityDashboard {
 public:
  FacilityDashboard(const workload::AllocationIndex& alloc,
                    const power::FleetVariability& fleet,
                    const thermal::FleetThermal& thermals, int machine_nodes,
                    int sample_stride = 1);

  /// Snapshot at time t, given the current cooling state (from
  /// facility::CoolingPlant or a cep frame row).
  [[nodiscard]] DashboardSnapshot snapshot(
      util::TimeSec t, const facility::CoolingState& cooling) const;

 private:
  const workload::AllocationIndex* alloc_;
  const power::FleetVariability* fleet_;
  const thermal::FleetThermal* thermals_;
  int machine_nodes_;
  int stride_;
};

}  // namespace exawatt::core
