#include "core/pue_analysis.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace exawatt::core {

YearTrend year_trend(const ts::Frame& cluster, const ts::Frame& cep) {
  EXA_CHECK(cluster.has("input_power_w"), "need input_power_w");
  EXA_CHECK(cep.has("pue") && cep.has("tower_tons") && cep.has("chiller_tons"),
            "need facility columns");
  EXA_CHECK(cluster.rows() == cep.rows() && cluster.dt() == cep.dt(),
            "frames must share one grid");
  const ts::Series& power = cluster.at("input_power_w");
  const ts::Series& pue = cep.at("pue");
  const ts::Series& tower = cep.at("tower_tons");
  const ts::Series& chiller = cep.at("chiller_tons");

  YearTrend trend;
  const std::size_t n = cluster.rows();
  if (n == 0) return trend;

  const int first_week = util::calendar(power.time_at(0)).week_of_year;
  const int last_week = util::calendar(power.time_at(n - 1)).week_of_year;
  std::vector<std::vector<double>> wk_power;
  std::vector<std::vector<double>> wk_pue;
  std::vector<double> wk_energy;
  std::vector<double> wk_tower;
  std::vector<double> wk_chiller;
  const std::size_t weeks = static_cast<std::size_t>(last_week - first_week) + 1;
  wk_power.resize(weeks);
  wk_pue.resize(weeks);
  wk_energy.assign(weeks, 0.0);
  wk_tower.assign(weeks, 0.0);
  wk_chiller.assign(weeks, 0.0);

  double pue_sum = 0.0;
  double power_sum = 0.0;
  double summer_pue_sum = 0.0;
  std::size_t summer_count = 0;
  double winter_pue_sum = 0.0;
  std::size_t winter_count = 0;

  for (std::size_t i = 0; i < n; ++i) {
    const util::TimeSec t = power.time_at(i);
    const util::CalendarDate d = util::calendar(t);
    const auto w = static_cast<std::size_t>(d.week_of_year - first_week);
    if (w >= weeks) continue;
    wk_power[w].push_back(power[i] / 1.0e6);
    wk_pue[w].push_back(pue[i]);
    wk_energy[w] += power[i] * static_cast<double>(cluster.dt());
    wk_tower[w] += tower[i];
    wk_chiller[w] += chiller[i];
    pue_sum += pue[i];
    power_sum += power[i];
    const bool summer = d.month >= 6 && d.month <= 9;
    if (summer) {
      summer_pue_sum += pue[i];
      ++summer_count;
    } else {
      winter_pue_sum += pue[i];
      ++winter_count;
    }
    trend.max_pue = std::max(trend.max_pue, pue[i]);
  }

  std::size_t chiller_weeks = 0;
  for (std::size_t w = 0; w < weeks; ++w) {
    if (wk_power[w].empty()) continue;
    WeeklySummary s;
    s.week = first_week + static_cast<int>(w);
    s.power_mw = stats::boxplot(wk_power[w]);
    s.pue = stats::boxplot(wk_pue[w]);
    s.max_power_mw = stats::max_value(wk_power[w]);
    s.energy_gwh = wk_energy[w] / 3.6e12;
    const double tons = wk_tower[w] + wk_chiller[w];
    s.chiller_share = tons > 0.0 ? wk_chiller[w] / tons : 0.0;
    if (s.chiller_share > 0.05) ++chiller_weeks;
    trend.weeks.push_back(std::move(s));
  }
  trend.mean_power_mw = power_sum / static_cast<double>(n) / 1.0e6;
  trend.mean_pue = pue_sum / static_cast<double>(n);
  if (summer_count > 0) {
    trend.summer_mean_pue = summer_pue_sum / static_cast<double>(summer_count);
  }
  if (winter_count > 0) {
    trend.winter_mean_pue = winter_pue_sum / static_cast<double>(winter_count);
  }
  if (!trend.weeks.empty()) {
    trend.chiller_weeks_fraction =
        static_cast<double>(chiller_weeks) /
        static_cast<double>(trend.weeks.size());
  }
  return trend;
}

}  // namespace exawatt::core
