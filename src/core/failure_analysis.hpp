#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "failures/generator.hpp"
#include "stats/correlation.hpp"
#include "workload/domain.hpp"
#include "workload/job.hpp"

namespace exawatt::core {

/// Table 4: composition of the failure log by type.
struct FailureComposition {
  failures::XidType type;
  std::uint64_t count = 0;
  std::uint64_t max_per_node = 0;
  double max_per_node_share = 0.0;
};
[[nodiscard]] std::vector<FailureComposition> failure_composition(
    const std::vector<failures::GpuFailureEvent>& log, int machine_nodes);

/// Figure 13: per-node count vectors per type and their Pearson
/// correlation with Bonferroni-corrected significance.
struct FailureCorrelation {
  std::vector<std::vector<double>> per_node_counts;  ///< [type][node]
  stats::CorrelationMatrix matrix;
};
[[nodiscard]] FailureCorrelation failure_correlation(
    const std::vector<failures::GpuFailureEvent>& log, int machine_nodes,
    double alpha = 0.05);

/// Figure 14: failures per node-hour by project (all types, and the
/// hardware-only subset), top-k ranking.
struct ProjectFailureRate {
  std::uint32_t project = 0;
  std::size_t domain = 0;
  double node_hours = 0.0;
  double failures_per_node_hour = 0.0;
  std::vector<std::uint64_t> by_type;  ///< kXidTypeCount entries
};
[[nodiscard]] std::vector<ProjectFailureRate> project_failure_rates(
    const std::vector<failures::GpuFailureEvent>& log,
    const std::vector<workload::Job>& jobs,
    const std::vector<workload::Project>& projects, bool hardware_only,
    std::size_t top_k = 15);

/// Figure 15: thermal extremity (z-score) and absolute temperature
/// distributions per type.
struct ThermalExtremity {
  failures::XidType type;
  std::vector<double> z_scores;
  std::vector<double> temps_c;
  double z_skewness = 0.0;
  double max_temp_c = 0.0;
  double share_above_60c = 0.0;
};
/// `exclude_node` removes a super-offender (the paper drops the node with
/// 97% of NVLink errors before this analysis); pass -1 to keep all.
[[nodiscard]] std::vector<ThermalExtremity> thermal_extremity(
    const std::vector<failures::GpuFailureEvent>& log,
    machine::NodeId exclude_node = -1);

/// Figure 16: counts per GPU slot (0..5) for a set of types.
[[nodiscard]] std::array<std::uint64_t, 6> slot_placement(
    const std::vector<failures::GpuFailureEvent>& log, failures::XidType type);

/// Figure 14's complementary calculation: failure distribution over the
/// three physical coordinates — floor row, cabinet column within the
/// row, and node height within the cabinet. The paper finds these flat
/// apart from the defect nodes; strong structure would indicate an
/// environmental (cooling/power-feed) problem.
struct SpatialBreakdown {
  std::vector<std::uint64_t> by_row;
  std::vector<std::uint64_t> by_column;
  std::vector<std::uint64_t> by_height;
  /// Max/mean ratio per coordinate (1.0 = perfectly flat).
  double row_peak_ratio = 0.0;
  double column_peak_ratio = 0.0;
  double height_peak_ratio = 0.0;
};
[[nodiscard]] SpatialBreakdown spatial_breakdown(
    const std::vector<failures::GpuFailureEvent>& log,
    const machine::Topology& topo, bool exclude_defect_heavy_nodes = true);

}  // namespace exawatt::core
