#pragma once

#include <vector>

#include "failures/generator.hpp"
#include "stats/survival.hpp"

namespace exawatt::core {

/// GPU lifetime study in the style of Ostrouchov et al. (the Titan
/// predecessor analysis the paper builds on): per-GPU time to first
/// hardware failure, right-censored at the observation window end.
struct GpuSurvivalStudy {
  /// Observations for every GPU in the machine (node x slot), hardware
  /// failure types only.
  std::vector<stats::SurvivalObservation> all;
  /// Split: GPUs on the known weak-node pool vs the rest.
  std::vector<stats::SurvivalObservation> weak_pool;
  std::vector<stats::SurvivalObservation> healthy;
  /// Per-slot observations (0..5).
  std::array<std::vector<stats::SurvivalObservation>, 6> by_slot;
  /// Log-rank: weak pool vs healthy (expected: decisively different).
  stats::LogRankResult weak_vs_healthy;
};

[[nodiscard]] GpuSurvivalStudy gpu_survival_study(
    const std::vector<failures::GpuFailureEvent>& log,
    const std::vector<machine::NodeId>& weak_nodes, int machine_nodes,
    util::TimeRange window);

}  // namespace exawatt::core
