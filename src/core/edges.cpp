#include "core/edges.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace exawatt::core {

std::vector<Edge> detect_edges(const ts::Series& power, double node_count,
                               EdgeOptions options) {
  EXA_CHECK(node_count > 0.0, "edge detection needs a node count");
  EXA_CHECK(options.return_fraction > 0.0 && options.return_fraction <= 1.0,
            "return fraction must be in (0, 1]");
  std::vector<Edge> edges;
  if (power.size() < 2) return edges;
  const double threshold = options.per_node_threshold_w * node_count;

  std::size_t i = 0;
  while (i + 1 < power.size()) {
    const double step = power[i + 1] - power[i];
    if (std::fabs(step) < threshold) {
      ++i;
      continue;
    }
    // Merge consecutive steps of the same sign into one edge.
    const bool rising = step > 0.0;
    Edge e;
    e.rising = rising;
    e.start = power.time_at(i);
    e.initial_w = power[i];
    std::size_t j = i + 1;
    while (j + 1 < power.size()) {
      const double next = power[j + 1] - power[j];
      if (rising ? next > 0.0 : next < 0.0) {
        ++j;
      } else {
        break;
      }
    }
    // Track the excursion to its extremum, then find the 80% return.
    double peak = power[j];
    std::size_t peak_idx = j;
    std::size_t k = j;
    bool returned = false;
    for (; k < power.size(); ++k) {
      if (rising ? power[k] > peak : power[k] < peak) {
        peak = power[k];
        peak_idx = k;
      }
      const double excursion = peak - e.initial_w;
      const double given_back = peak - power[k];
      if (std::fabs(excursion) > 0.0 &&
          (rising ? given_back >= options.return_fraction * excursion
                  : given_back <= options.return_fraction * excursion)) {
        returned = true;
        break;
      }
    }
    e.peak_w = peak;
    e.amplitude_w = std::fabs(power[j] - e.initial_w);
    e.returned = returned;
    const std::size_t end_idx = returned ? k : power.size() - 1;
    e.duration_s = power.time_at(end_idx) - e.start;
    edges.push_back(e);
    i = std::max(j, peak_idx);
    ++i;
  }
  return edges;
}

JobEdgeStats job_edge_stats(const ts::Series& power, double node_count,
                            EdgeOptions options) {
  JobEdgeStats stats;
  for (const Edge& e : detect_edges(power, node_count, options)) {
    ++stats.edges;
    stats.durations_min.push_back(static_cast<double>(e.duration_s) / 60.0);
  }
  return stats;
}

}  // namespace exawatt::core
