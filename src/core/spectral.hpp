#pragma once

#include <vector>

#include "stats/fft.hpp"
#include "ts/series.hpp"

namespace exawatt::core {

/// Figure 10 lower row: per-job dominant frequency and amplitude of the
/// *differenced* power series (differencing de-trends the strongly
/// auto-correlated signal before the FFT, as the paper does).
struct JobSpectrum {
  double frequency_hz = 0.0;
  double amplitude_w = 0.0;
  bool valid = false;  ///< false for jobs too short to analyze
};

[[nodiscard]] JobSpectrum job_spectrum(const ts::Series& power);

}  // namespace exawatt::core
