#pragma once

#include <array>
#include <vector>

#include "power/job_power.hpp"
#include "util/rng.hpp"

namespace exawatt::core {

/// Job power-profile fingerprinting (paper §9 future work): a compact
/// vector describing a job's power behaviour, clustered with k-means to
/// build per-user/per-app "power portraits" for predictive scheduling.
struct Fingerprint {
  workload::JobId job = 0;
  std::uint16_t app = 0;  ///< ground-truth archetype (for validation)
  /// Feature vector: log-mean power, log-max power, max/mean ratio,
  /// CPU/GPU balance, log node count, log runtime, relative swing.
  static constexpr std::size_t kDims = 7;
  std::array<double, kDims> v = {};
};

/// Build a fingerprint from a job summary.
[[nodiscard]] Fingerprint fingerprint_of(const power::JobPowerSummary& s);

/// k-means over standardized fingerprints (deterministic k-means++ seed).
struct Clustering {
  std::size_t k = 0;
  std::vector<int> assignment;                 ///< per fingerprint
  std::vector<std::array<double, Fingerprint::kDims>> centroids;
  double inertia = 0.0;  ///< sum of squared distances to centroids
  /// Purity against the ground-truth app labels: fraction of jobs whose
  /// cluster's majority app matches their own.
  double app_purity = 0.0;
};
[[nodiscard]] Clustering cluster_fingerprints(
    const std::vector<Fingerprint>& prints, std::size_t k,
    std::uint64_t seed = 17, int max_iters = 50);

}  // namespace exawatt::core
