#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "power/job_power.hpp"

namespace exawatt::core {

/// Queued-job power prediction from historical power portraits — the
/// paper's §9 proposal: "queued jobs will assume the average power
/// portrait of the user given job size, job launch arguments, and
/// project ID", with an uncertainty that is wide for cold projects and
/// narrow for well-known ones.
///
/// Portraits are keyed by (project, scheduling class) and store per-node
/// power statistics, so predictions transfer across job sizes. Lookups
/// fall back portrait -> per-class -> global.
class PowerPredictor {
 public:
  explicit PowerPredictor(
      const std::vector<power::JobPowerSummary>& history);

  struct Prediction {
    double mean_power_w = 0.0;   ///< predicted total mean input power
    double max_power_w = 0.0;    ///< predicted total peak input power
    double uncertainty = 1.0;    ///< relative sigma of the portrait used
    int portrait_jobs = 0;       ///< history size behind the prediction
    bool from_portrait = false;  ///< false when a fallback was used
  };

  [[nodiscard]] Prediction predict(std::uint32_t project, int sched_class,
                                   int node_count) const;

  /// Out-of-sample evaluation: mean absolute percentage error of this
  /// predictor vs the naive per-class baseline, on a disjoint test set.
  struct Evaluation {
    double mape_mean = 0.0;
    double mape_max = 0.0;
    double baseline_mape_mean = 0.0;
    double baseline_mape_max = 0.0;
    std::size_t jobs = 0;
  };
  [[nodiscard]] Evaluation evaluate(
      const std::vector<power::JobPowerSummary>& test) const;

  [[nodiscard]] std::size_t portraits() const { return portraits_.size(); }

 private:
  struct Portrait {
    double mean_node_w = 0.0;   ///< mean of per-node mean power
    double max_node_w = 0.0;    ///< mean of per-node max power
    double rel_sigma = 1.0;     ///< relative spread of the mean estimate
    int jobs = 0;
  };
  using Key = std::pair<std::uint32_t, int>;
  std::map<Key, Portrait> portraits_;
  std::map<int, Portrait> class_fallback_;
  Portrait global_;
};

}  // namespace exawatt::core
