#include "core/dashboard.hpp"

#include <cstdio>
#include <sstream>

#include "power/job_power.hpp"
#include "util/check.hpp"
#include "util/text_table.hpp"

namespace exawatt::core {

using machine::SummitSpec;

FacilityDashboard::FacilityDashboard(const workload::AllocationIndex& alloc,
                                     const power::FleetVariability& fleet,
                                     const thermal::FleetThermal& thermals,
                                     int machine_nodes, int sample_stride)
    : alloc_(&alloc),
      fleet_(&fleet),
      thermals_(&thermals),
      machine_nodes_(machine_nodes),
      stride_(sample_stride) {
  EXA_CHECK(machine_nodes_ > 0, "dashboard needs a machine");
  EXA_CHECK(stride_ >= 1, "sample stride must be >= 1");
}

DashboardSnapshot FacilityDashboard::snapshot(
    util::TimeSec t, const facility::CoolingState& cooling) const {
  DashboardSnapshot snap;
  snap.t = t;
  snap.cooling = cooling;
  const double warn_c = thermals_->params().throttle_onset_c - 10.0;

  double power_acc = 0.0;
  for (machine::NodeId n = 0; n < machine_nodes_; n += stride_) {
    ++snap.sampled_nodes;
    int rank = 0;
    const workload::Job* job = alloc_->job_at(n, t, &rank);
    const power::NodeComponentPower p =
        job != nullptr ? power::node_power_detail(*job, rank, t, *fleet_)
                       : power::idle_node_power(n, *fleet_);
    if (job != nullptr) ++snap.busy_nodes;
    power_acc += p.input_w;
    const auto temps =
        thermals_->steady_temps(n, p, cooling.mtw_supply_c);
    for (double c : temps.gpu_c) {
      snap.gpu_core_c.add(c);
      if (c >= warn_c) ++snap.thermal_warnings;
    }
    for (double c : temps.cpu_c) snap.cpu_core_c.add(c);
  }
  // Scale the sampled power back to the machine.
  snap.cluster_power_w =
      power_acc * static_cast<double>(machine_nodes_) /
      std::max(1, snap.sampled_nodes);
  return snap;
}

std::string DashboardSnapshot::render() const {
  std::ostringstream os;
  os << "=== " << title << " @ " << util::format_time(t) << " ===\n";
  char line[160];
  std::snprintf(line, sizeof line,
                "power %7.2f MW | busy %d/%d nodes | PUE %.3f | warnings %d\n",
                cluster_power_w / 1e6, busy_nodes, sampled_nodes, cooling.pue,
                thermal_warnings);
  os << line;
  std::snprintf(line, sizeof line,
                "MTW supply %.1f C  return %.1f C | towers %.0f tons  "
                "chillers %.0f tons\n",
                cooling.mtw_supply_c, cooling.mtw_return_c,
                cooling.tower_tons, cooling.chiller_tons);
  os << line;

  auto histogram_rows = [&](const char* title, const stats::Histogram& h) {
    os << title << '\n';
    std::uint64_t peak = 0;
    for (std::size_t b = 0; b < h.bins(); ++b) {
      peak = std::max(peak, h.count(b));
    }
    for (std::size_t b = 0; b < h.bins(); ++b) {
      if (h.count(b) == 0) continue;
      std::snprintf(line, sizeof line, "  %4.0f-%-4.0f C %8llu %s\n",
                    h.lo() + static_cast<double>(b) * h.bin_width(),
                    h.lo() + static_cast<double>(b + 1) * h.bin_width(),
                    static_cast<unsigned long long>(h.count(b)),
                    util::fmt_bar(static_cast<double>(h.count(b)),
                                  static_cast<double>(peak), 32)
                        .c_str());
      os << line;
    }
  };
  histogram_rows("GPU core temperature distribution:", gpu_core_c);
  histogram_rows("CPU core temperature distribution:", cpu_core_c);
  return os.str();
}

}  // namespace exawatt::core
