#include "core/variability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/correlation.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace exawatt::core {

using machine::SummitSpec;

VariabilityStudy variability_study(const workload::Job& job,
                                   const power::FleetVariability& fleet,
                                   const thermal::FleetThermal& thermals,
                                   double mtw_supply_c,
                                   std::size_t instants) {
  EXA_CHECK(job.start >= 0 && job.end > job.start, "job must be scheduled");
  EXA_CHECK(instants >= 1, "need at least one instant");
  VariabilityStudy study;
  study.job = job.id;
  study.node_count = job.node_count;
  study.runtime_min = static_cast<double>(job.end - job.start) / 60.0;

  const machine::Topology& topo = thermals.topology();
  const auto cabinets = static_cast<std::size_t>(topo.cabinets());
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

  std::size_t readings = 0;
  std::size_t readings_below_60 = 0;

  for (std::size_t s = 0; s < instants; ++s) {
    const util::TimeSec t =
        job.start + (job.end - job.start) *
                        static_cast<util::TimeSec>(2 * s + 1) /
                        static_cast<util::TimeSec>(2 * instants);
    VariabilitySnapshot snap;
    snap.t = t;

    std::vector<double> powers;
    std::vector<double> temps;
    powers.reserve(static_cast<std::size_t>(job.node_count) *
                   SummitSpec::kGpusPerNode);
    temps.reserve(powers.capacity());
    std::vector<double> cab_sum(cabinets, 0.0);
    std::vector<double> cab_cnt(cabinets, 0.0);
    std::vector<double> cab_max(cabinets, kNan);

    int rank = 0;
    for (const auto& r : job.nodes) {
      for (int i = 0; i < r.count; ++i, ++rank) {
        const machine::NodeId node = r.first + i;
        const power::NodeComponentPower p =
            power::node_power_detail(job, rank, t, fleet);
        const thermal::FleetThermal::NodeTemps nt =
            thermals.steady_temps(node, p, mtw_supply_c);
        const auto cab = static_cast<std::size_t>(topo.cabinet_of(node));
        for (int g = 0; g < SummitSpec::kGpusPerNode; ++g) {
          powers.push_back(p.gpu_w[g]);
          temps.push_back(nt.gpu_c[g]);
          cab_sum[cab] += nt.gpu_c[g];
          cab_cnt[cab] += 1.0;
          if (std::isnan(cab_max[cab]) || nt.gpu_c[g] > cab_max[cab]) {
            cab_max[cab] = nt.gpu_c[g];
          }
          ++readings;
          if (nt.gpu_c[g] < 60.0) ++readings_below_60;
          study.max_temp_c = std::max(study.max_temp_c, nt.gpu_c[g]);
        }
      }
    }

    snap.gpu_power_w = stats::boxplot(powers);
    snap.gpu_temp_c = stats::boxplot(temps);
    snap.power_spread_w = snap.gpu_power_w.spread();
    snap.temp_spread_c = snap.gpu_temp_c.spread();
    snap.power_temp_corr = stats::pearson(powers, temps);
    snap.cabinet_mean_c.assign(cabinets, kNan);
    for (std::size_t c = 0; c < cabinets; ++c) {
      if (cab_cnt[c] > 0.0) snap.cabinet_mean_c[c] = cab_sum[c] / cab_cnt[c];
    }
    snap.cabinet_max_c = std::move(cab_max);
    study.snapshots.push_back(std::move(snap));
  }

  if (readings > 0) {
    study.share_below_60c =
        static_cast<double>(readings_below_60) /
        static_cast<double>(readings);
  }
  return study;
}

const workload::Job* select_exemplar(const std::vector<workload::Job>& jobs,
                                     int min_nodes, double min_minutes,
                                     double max_minutes) {
  const workload::Job* best = nullptr;
  for (const auto& j : jobs) {
    if (j.start < 0 || j.node_count < min_nodes) continue;
    const double minutes = static_cast<double>(j.end - j.start) / 60.0;
    if (minutes < min_minutes || minutes > max_minutes) continue;
    if (best == nullptr || j.node_count > best->node_count) best = &j;
  }
  return best;
}

}  // namespace exawatt::core
