#pragma once

#include <vector>

#include "stats/descriptive.hpp"
#include "ts/frame.hpp"

namespace exawatt::core {

/// Figure 5 reproduction: weekly power/PUE distributions over the year
/// plus the headline seasonal PUE numbers (winter ~1.11, summer ~1.22,
/// February maintenance spike ~1.3).
struct WeeklySummary {
  int week = 0;
  stats::BoxplotStats power_mw;
  stats::BoxplotStats pue;
  double max_power_mw = 0.0;
  double energy_gwh = 0.0;
  double chiller_share = 0.0;  ///< chiller tons / total tons
};

struct YearTrend {
  std::vector<WeeklySummary> weeks;
  double mean_power_mw = 0.0;
  double mean_pue = 0.0;
  double summer_mean_pue = 0.0;   ///< weeks overlapping Jun-Sep
  double winter_mean_pue = 0.0;   ///< the remaining weeks
  double max_pue = 0.0;
  double chiller_weeks_fraction = 0.0;  ///< weeks with chillers > 5% share
};

/// `cluster` must carry input_power_w; `cep` the matching facility frame.
[[nodiscard]] YearTrend year_trend(const ts::Frame& cluster,
                                   const ts::Frame& cep);

}  // namespace exawatt::core
