#pragma once

#include <vector>

#include "core/edges.hpp"
#include "stats/snapshot.hpp"
#include "ts/frame.hpp"

namespace exawatt::core {

/// Figure 11/12 machinery: detect cluster-level rising (or falling)
/// edges, bin them by amplitude in MW, cut aligned windows around each
/// edge from any co-registered column, and superimpose with 95% CI.
struct SnapshotOptions {
  util::TimeSec before_s = 60;    ///< window starts 1 min before the edge
  util::TimeSec after_s = 240;    ///< and runs 4 min past it
  double amplitude_bin_mw = 1.0;  ///< 1 MW bins, as in Figure 11
  /// Keep only edges whose pre-window is steady: the power spread over
  /// `before_s` before the edge must stay under this fraction of the
  /// edge amplitude. Filters the periodic-oscillation edges out of the
  /// superposition so the mean curves are as clean as the paper's
  /// (set > 1 to disable).
  double steady_pre_fraction = 0.35;
  EdgeOptions edges = {};
};

/// One amplitude class worth of aligned snapshots.
struct EdgeSnapshotSet {
  int amplitude_mw = 0;              ///< lower edge of the MW bin
  bool rising = true;
  std::vector<util::TimeSec> at;     ///< edge start times
};

/// Detect and bin edges of one direction on the cluster power series.
[[nodiscard]] std::vector<EdgeSnapshotSet> collect_edge_sets(
    const ts::Series& cluster_power, double machine_nodes, bool rising,
    SnapshotOptions options = {});

/// Cut the aligned windows for one edge set from `column` (any series on
/// the same clock) and superimpose them. Windows that run off the series
/// are padded with NaN (skipped per-offset by the superposition).
[[nodiscard]] stats::SnapshotBand superimpose_column(
    const ts::Series& column, const EdgeSnapshotSet& set,
    SnapshotOptions options = {});

}  // namespace exawatt::core
