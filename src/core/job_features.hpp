#pragma once

#include <vector>

#include "power/job_power.hpp"
#include "stats/ecdf.hpp"

namespace exawatt::core {

/// Summarize every scheduled job in parallel (paper Datasets 5-7).
[[nodiscard]] std::vector<power::JobPowerSummary> summarize_jobs(
    const std::vector<workload::Job>& jobs, util::TimeSec dt = 0);

/// Filter helpers.
[[nodiscard]] std::vector<power::JobPowerSummary> by_class(
    const std::vector<power::JobPowerSummary>& all, int sched_class);

/// Extract one scalar feature across summaries.
enum class JobFeature {
  kNodeCount,
  kWalltimeHours,
  kMeanPowerW,
  kMaxPowerW,
  kMaxMinusMeanW,
  kEnergyJ,
  kMeanCpuNodeW,
  kMaxCpuNodeW,
  kMeanGpuNodeW,
  kMaxGpuNodeW,
};
[[nodiscard]] std::vector<double> feature(
    const std::vector<power::JobPowerSummary>& jobs, JobFeature f);

/// Figure 7 row: the CDF of one feature for one class with the paper's
/// 80th-percentile marker.
struct FeatureCdf {
  JobFeature what;
  stats::Ecdf cdf;
  double p80 = 0.0;
  double max = 0.0;
};
[[nodiscard]] FeatureCdf feature_cdf(
    const std::vector<power::JobPowerSummary>& jobs, JobFeature f);

}  // namespace exawatt::core
