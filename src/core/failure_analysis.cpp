#include "core/failure_analysis.hpp"

#include <algorithm>
#include <unordered_map>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace exawatt::core {

using failures::kXidTypeCount;
using failures::XidType;

std::vector<FailureComposition> failure_composition(
    const std::vector<failures::GpuFailureEvent>& log, int machine_nodes) {
  EXA_CHECK(machine_nodes > 0, "need machine node count");
  std::vector<std::vector<std::uint64_t>> per_node(
      kXidTypeCount,
      std::vector<std::uint64_t>(static_cast<std::size_t>(machine_nodes), 0));
  std::vector<std::uint64_t> totals(kXidTypeCount, 0);
  for (const auto& ev : log) {
    const auto t = static_cast<std::size_t>(ev.type);
    if (ev.node >= 0 && ev.node < machine_nodes) {
      ++per_node[t][static_cast<std::size_t>(ev.node)];
    }
    ++totals[t];
  }
  std::vector<FailureComposition> out;
  for (std::size_t t = 0; t < kXidTypeCount; ++t) {
    FailureComposition c;
    c.type = static_cast<XidType>(t);
    c.count = totals[t];
    c.max_per_node =
        *std::max_element(per_node[t].begin(), per_node[t].end());
    c.max_per_node_share =
        c.count > 0 ? static_cast<double>(c.max_per_node) /
                          static_cast<double>(c.count)
                    : 0.0;
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const FailureComposition& a, const FailureComposition& b) {
              return a.count > b.count;
            });
  return out;
}

FailureCorrelation failure_correlation(
    const std::vector<failures::GpuFailureEvent>& log, int machine_nodes,
    double alpha) {
  EXA_CHECK(machine_nodes > 0, "need machine node count");
  std::vector<std::vector<double>> counts(
      kXidTypeCount,
      std::vector<double>(static_cast<std::size_t>(machine_nodes), 0.0));
  for (const auto& ev : log) {
    if (ev.node >= 0 && ev.node < machine_nodes) {
      counts[static_cast<std::size_t>(ev.type)]
            [static_cast<std::size_t>(ev.node)] += 1.0;
    }
  }
  stats::CorrelationMatrix matrix(counts, alpha);
  return {std::move(counts), std::move(matrix)};
}

std::vector<ProjectFailureRate> project_failure_rates(
    const std::vector<failures::GpuFailureEvent>& log,
    const std::vector<workload::Job>& jobs,
    const std::vector<workload::Project>& projects, bool hardware_only,
    std::size_t top_k) {
  std::unordered_map<std::uint32_t, ProjectFailureRate> by_project;
  for (const auto& job : jobs) {
    if (job.start < 0) continue;
    auto& p = by_project[job.project];
    p.project = job.project;
    if (job.project < projects.size()) {
      p.domain = projects[job.project].domain;
    }
    p.node_hours += job.node_hours();
  }
  for (const auto& ev : log) {
    if (hardware_only && failures::xid_is_application(ev.type)) continue;
    auto it = by_project.find(ev.project);
    if (it == by_project.end()) continue;
    if (it->second.by_type.empty()) {
      it->second.by_type.assign(kXidTypeCount, 0);
    }
    ++it->second.by_type[static_cast<std::size_t>(ev.type)];
  }
  std::vector<ProjectFailureRate> out;
  out.reserve(by_project.size());
  for (auto& [id, p] : by_project) {
    if (p.by_type.empty()) p.by_type.assign(kXidTypeCount, 0);
    std::uint64_t total = 0;
    for (auto c : p.by_type) total += c;
    if (p.node_hours > 1.0) {
      p.failures_per_node_hour = static_cast<double>(total) / p.node_hours;
    }
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const ProjectFailureRate& a, const ProjectFailureRate& b) {
              return a.failures_per_node_hour > b.failures_per_node_hour;
            });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

std::vector<ThermalExtremity> thermal_extremity(
    const std::vector<failures::GpuFailureEvent>& log,
    machine::NodeId exclude_node) {
  std::vector<ThermalExtremity> out(kXidTypeCount);
  for (std::size_t t = 0; t < kXidTypeCount; ++t) {
    out[t].type = static_cast<XidType>(t);
  }
  for (const auto& ev : log) {
    if (exclude_node >= 0 && ev.node == exclude_node) continue;
    auto& e = out[static_cast<std::size_t>(ev.type)];
    e.z_scores.push_back(ev.z_score);
    e.temps_c.push_back(ev.temp_c);
  }
  for (auto& e : out) {
    if (e.z_scores.size() >= 3) {
      e.z_skewness = stats::skewness(e.z_scores);
    }
    if (!e.temps_c.empty()) {
      e.max_temp_c = stats::max_value(e.temps_c);
      std::size_t hot = 0;
      for (double c : e.temps_c) {
        if (c >= 60.0) ++hot;
      }
      e.share_above_60c =
          static_cast<double>(hot) / static_cast<double>(e.temps_c.size());
    }
  }
  return out;
}

std::array<std::uint64_t, 6> slot_placement(
    const std::vector<failures::GpuFailureEvent>& log,
    failures::XidType type) {
  std::array<std::uint64_t, 6> slots{};
  for (const auto& ev : log) {
    if (ev.type == type && ev.slot >= 0 && ev.slot < 6) {
      ++slots[static_cast<std::size_t>(ev.slot)];
    }
  }
  return slots;
}

SpatialBreakdown spatial_breakdown(
    const std::vector<failures::GpuFailureEvent>& log,
    const machine::Topology& topo, bool exclude_defect_heavy_nodes) {
  SpatialBreakdown out;
  out.by_row.assign(static_cast<std::size_t>(topo.rows()), 0);
  out.by_column.assign(static_cast<std::size_t>(topo.columns()), 0);
  out.by_height.assign(
      static_cast<std::size_t>(topo.scale().nodes_per_cabinet), 0);

  // Defect-heavy nodes (top 0.2% of per-node counts) are excluded so the
  // spatial view reflects the healthy fleet, as the paper's narrative
  // separates chip defects from environmental structure.
  std::vector<std::uint64_t> per_node(
      static_cast<std::size_t>(topo.nodes()), 0);
  for (const auto& ev : log) {
    if (ev.node >= 0 && ev.node < topo.nodes()) {
      ++per_node[static_cast<std::size_t>(ev.node)];
    }
  }
  std::uint64_t cutoff = ~0ULL;
  if (exclude_defect_heavy_nodes) {
    std::vector<std::uint64_t> sorted = per_node;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        0.998 * static_cast<double>(sorted.size()));
    cutoff = std::max<std::uint64_t>(sorted[std::min(idx, sorted.size() - 1)],
                                     1);
  }

  for (const auto& ev : log) {
    if (ev.node < 0 || ev.node >= topo.nodes()) continue;
    if (per_node[static_cast<std::size_t>(ev.node)] > cutoff) continue;
    const machine::FloorPosition pos = topo.position_of(ev.node);
    ++out.by_row[static_cast<std::size_t>(pos.row)];
    ++out.by_column[static_cast<std::size_t>(pos.column)];
    ++out.by_height[static_cast<std::size_t>(pos.height)];
  }

  auto peak_ratio = [](const std::vector<std::uint64_t>& v) {
    std::uint64_t peak = 0;
    std::uint64_t total = 0;
    std::size_t nonzero_bins = 0;
    for (std::uint64_t c : v) {
      peak = std::max(peak, c);
      total += c;
      ++nonzero_bins;
    }
    if (total == 0 || nonzero_bins == 0) return 0.0;
    const double mean =
        static_cast<double>(total) / static_cast<double>(nonzero_bins);
    return mean > 0.0 ? static_cast<double>(peak) / mean : 0.0;
  };
  out.row_peak_ratio = peak_ratio(out.by_row);
  out.column_peak_ratio = peak_ratio(out.by_column);
  out.height_peak_ratio = peak_ratio(out.by_height);
  return out;
}

}  // namespace exawatt::core
