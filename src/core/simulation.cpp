#include "core/simulation.hpp"

#include "util/check.hpp"

namespace exawatt::core {

Simulation::Simulation(SimulationConfig config) : config_(std::move(config)) {
  EXA_CHECK(config_.range.duration() > 0, "simulation range must be non-empty");
  config_.workload.scale = config_.scale;
  config_.workload.seed = config_.seed;
  config_.failures.seed = util::hash_combine(config_.seed, 0xf417ULL);
  // Facility parasitics sized for the full plant scale down with the
  // machine so PUE stays meaningful in reduced-scale runs.
  const double f = config_.scale.fraction();
  config_.cep.cooling.pump_power_w *= f;
  config_.cep.cooling.loop_w_per_c *= f;
  generator_ = std::make_unique<workload::JobGenerator>(config_.workload);
}

const std::vector<workload::Job>& Simulation::jobs() {
  if (!jobs_ready_) {
    jobs_ = generator_->generate(config_.range);
    workload::Scheduler scheduler(config_.scale);
    sched_stats_ = scheduler.run(jobs_, config_.range.end);
    jobs_ready_ = true;
  }
  return jobs_;
}

const workload::SchedulerStats& Simulation::scheduler_stats() {
  (void)jobs();
  return sched_stats_;
}

const std::vector<workload::Project>& Simulation::projects() {
  return generator_->projects();
}

ts::Frame Simulation::cluster_frame(util::TimeRange range,
                                    power::ClusterSeriesOptions options) {
  return power::cluster_power_frame(jobs(), config_.scale, range, options);
}

ts::Frame Simulation::cep_frame(const ts::Frame& cluster) {
  facility::CepOptions options = config_.cep;
  options.weather_seed = util::hash_combine(config_.seed, 0x3ea1ULL);
  return facility::simulate_cep(cluster, options);
}

const failures::FailureGenerator& Simulation::failure_generator() {
  if (!failure_gen_) {
    failure_gen_ = std::make_unique<failures::FailureGenerator>(
        config_.scale, projects(), config_.failures);
  }
  return *failure_gen_;
}

const std::vector<failures::GpuFailureEvent>& Simulation::failure_log() {
  if (!failures_ready_) {
    failures_ = failure_generator().generate(jobs());
    failures_ready_ = true;
  }
  return failures_;
}

}  // namespace exawatt::core
