#include "core/spectral.hpp"

namespace exawatt::core {

JobSpectrum job_spectrum(const ts::Series& power) {
  JobSpectrum s;
  if (power.size() < 8) return s;
  const ts::Series d = power.diff();
  const stats::DominantFrequency dom =
      stats::dominant_frequency(d.values(), static_cast<double>(power.dt()));
  s.frequency_hz = dom.frequency_hz;
  s.amplitude_w = dom.amplitude;
  s.valid = dom.amplitude > 0.0;
  return s;
}

}  // namespace exawatt::core
