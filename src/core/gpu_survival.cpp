#include "core/gpu_survival.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace exawatt::core {

GpuSurvivalStudy gpu_survival_study(
    const std::vector<failures::GpuFailureEvent>& log,
    const std::vector<machine::NodeId>& weak_nodes, int machine_nodes,
    util::TimeRange window) {
  EXA_CHECK(machine_nodes > 0, "need a machine");
  EXA_CHECK(window.duration() > 0, "need a non-empty window");
  constexpr int kSlots = machine::SummitSpec::kGpusPerNode;

  // First hardware-failure time per GPU; infinity = no failure observed.
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> first_failure(
      static_cast<std::size_t>(machine_nodes) * kSlots, inf);
  for (const auto& ev : log) {
    if (failures::xid_is_application(ev.type)) continue;
    if (ev.node < 0 || ev.node >= machine_nodes) continue;
    if (!window.contains(ev.time)) continue;
    auto& slot = first_failure[static_cast<std::size_t>(ev.node) * kSlots +
                               static_cast<std::size_t>(ev.slot)];
    slot = std::min(slot, static_cast<double>(ev.time - window.begin));
  }

  std::vector<bool> weak(static_cast<std::size_t>(machine_nodes), false);
  for (machine::NodeId n : weak_nodes) {
    if (n >= 0 && n < machine_nodes) weak[static_cast<std::size_t>(n)] = true;
  }

  GpuSurvivalStudy study;
  const auto horizon = static_cast<double>(window.duration());
  for (machine::NodeId n = 0; n < machine_nodes; ++n) {
    for (int s = 0; s < kSlots; ++s) {
      const double t =
          first_failure[static_cast<std::size_t>(n) * kSlots +
                        static_cast<std::size_t>(s)];
      stats::SurvivalObservation obs;
      if (t < inf) {
        obs.time = t;
        obs.event = true;
      } else {
        obs.time = horizon;
        obs.event = false;  // right-censored: survived the window
      }
      study.all.push_back(obs);
      study.by_slot[static_cast<std::size_t>(s)].push_back(obs);
      (weak[static_cast<std::size_t>(n)] ? study.weak_pool : study.healthy)
          .push_back(obs);
    }
  }
  if (!study.weak_pool.empty() && !study.healthy.empty()) {
    study.weak_vs_healthy =
        stats::log_rank_test(study.weak_pool, study.healthy);
  }
  return study;
}

}  // namespace exawatt::core
