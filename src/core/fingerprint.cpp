#include "core/fingerprint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/check.hpp"

namespace exawatt::core {

Fingerprint fingerprint_of(const power::JobPowerSummary& s) {
  Fingerprint f;
  f.job = s.id;
  f.app = s.app;
  const double mean_w = std::max(s.mean_power_w, 1.0);
  const double max_w = std::max(s.max_power_w, 1.0);
  const double cpu = std::max(s.mean_cpu_node_w, 1.0);
  const double gpu = std::max(s.mean_gpu_node_w, 1.0);
  f.v = {std::log(mean_w),
         std::log(max_w),
         max_w / mean_w,
         std::log(gpu / cpu),
         std::log(std::max(1, s.node_count)),
         std::log(std::max(s.runtime_s, 1.0)),
         (s.max_power_w - s.mean_power_w) / mean_w};
  return f;
}

namespace {
using Vec = std::array<double, Fingerprint::kDims>;

double dist2(const Vec& a, const Vec& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}
}  // namespace

Clustering cluster_fingerprints(const std::vector<Fingerprint>& prints,
                                std::size_t k, std::uint64_t seed,
                                int max_iters) {
  EXA_CHECK(k >= 1, "k must be at least 1");
  EXA_CHECK(prints.size() >= k, "need at least k fingerprints");
  const std::size_t n = prints.size();
  constexpr std::size_t D = Fingerprint::kDims;

  // Standardize features (zero mean, unit variance).
  Vec mean{};
  Vec std{};
  for (const auto& p : prints) {
    for (std::size_t d = 0; d < D; ++d) mean[d] += p.v[d];
  }
  for (std::size_t d = 0; d < D; ++d) mean[d] /= static_cast<double>(n);
  for (const auto& p : prints) {
    for (std::size_t d = 0; d < D; ++d) {
      std[d] += (p.v[d] - mean[d]) * (p.v[d] - mean[d]);
    }
  }
  for (std::size_t d = 0; d < D; ++d) {
    std[d] = std::sqrt(std[d] / static_cast<double>(n));
    if (std[d] <= 0.0) std[d] = 1.0;
  }
  std::vector<Vec> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < D; ++d) {
      x[i][d] = (prints[i].v[d] - mean[d]) / std[d];
    }
  }

  // k-means++ initialization.
  util::Rng rng(seed);
  Clustering out;
  out.k = k;
  out.centroids.clear();
  out.centroids.push_back(x[rng.uniform_index(n)]);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  while (out.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], dist2(x[i], out.centroids.back()));
      total += d2[i];
    }
    double r = rng.uniform() * total;
    std::size_t pick = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (r < d2[i]) {
        pick = i;
        break;
      }
      r -= d2[i];
    }
    out.centroids.push_back(x[pick]);
  }

  // Lloyd iterations.
  out.assignment.assign(n, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = dist2(x[i], out.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int>(c);
        }
      }
      if (out.assignment[i] != best) {
        out.assignment[i] = best;
        changed = true;
      }
    }
    std::vector<Vec> sums(k, Vec{});
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(out.assignment[i]);
      for (std::size_t d = 0; d < D; ++d) sums[c][d] += x[i][d];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid
      for (std::size_t d = 0; d < D; ++d) {
        out.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  out.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.inertia +=
        dist2(x[i], out.centroids[static_cast<std::size_t>(out.assignment[i])]);
  }

  // Purity against ground-truth archetypes.
  std::vector<std::map<std::uint16_t, std::size_t>> votes(k);
  for (std::size_t i = 0; i < n; ++i) {
    ++votes[static_cast<std::size_t>(out.assignment[i])][prints[i].app];
  }
  std::vector<std::uint16_t> majority(k, 0);
  for (std::size_t c = 0; c < k; ++c) {
    std::size_t best = 0;
    for (const auto& [app, cnt] : votes[c]) {
      if (cnt > best) {
        best = cnt;
        majority[c] = app;
      }
    }
  }
  std::size_t pure = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (majority[static_cast<std::size_t>(out.assignment[i])] ==
        prints[i].app) {
      ++pure;
    }
  }
  out.app_purity = static_cast<double>(pure) / static_cast<double>(n);
  return out;
}

}  // namespace exawatt::core
