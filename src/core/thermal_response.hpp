#pragma once

#include "thermal/node_thermal.hpp"
#include "ts/frame.hpp"

namespace exawatt::core {

/// Cluster-level component temperature series derived from the cluster
/// power frame and the facility supply temperature (paper Figure 12 rows
/// 2-3). Mean temperature follows the fleet-average steady state through
/// the RC filter; max tracks a high quantile of the fleet's thermal-
/// resistance distribution (the hottest chips keep rising after a step
/// while the mean has settled — exactly the paper's 7 MW observation).
///
/// Input frames: `cluster` needs gpu_power_w / cpu_power_w / alloc_nodes;
/// `cep` needs mtw_supply_c (same grid). Output columns:
///   gpu_mean_c, gpu_max_c, cpu_mean_c, cpu_max_c
[[nodiscard]] ts::Frame cluster_thermal_frame(
    const ts::Frame& cluster, const ts::Frame& cep, int machine_nodes,
    thermal::ThermalParams params = {});

}  // namespace exawatt::core
