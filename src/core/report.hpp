#pragma once

#include <string>
#include <vector>

#include "machine/topology.hpp"
#include "ts/series.hpp"

namespace exawatt::core {

/// Terminal rendering of the paper's visual artifacts: the Figure 17
/// floor heatmap (per-cabinet values laid out in rows/columns) and
/// sparkline strips for time series.

/// Render per-cabinet values as the machine-floor grid. NaN cells render
/// as '.' (no job nodes — the paper's grey), and cells are bucketed into
/// intensity glyphs " .:-=+*#%@" between lo and hi (auto when lo >= hi).
[[nodiscard]] std::string floor_heatmap(const machine::Topology& topo,
                                        const std::vector<double>& per_cabinet,
                                        double lo = 0.0, double hi = 0.0);

/// One-line unicode-free sparkline of a series (levels " .:-=+*#%@").
[[nodiscard]] std::string sparkline(const ts::Series& series,
                                    std::size_t width = 72);

}  // namespace exawatt::core
