#include "core/prediction.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/welford.hpp"

namespace exawatt::core {

namespace {
struct Acc {
  util::Welford mean_node;
  util::Welford max_node;
};

PowerPredictor::Prediction scale_portrait(double mean_node_w,
                                          double max_node_w, int node_count) {
  PowerPredictor::Prediction p;
  p.mean_power_w = mean_node_w * static_cast<double>(node_count);
  p.max_power_w = max_node_w * static_cast<double>(node_count);
  return p;
}
}  // namespace

PowerPredictor::PowerPredictor(
    const std::vector<power::JobPowerSummary>& history) {
  EXA_CHECK(!history.empty(), "predictor needs training history");
  std::map<Key, Acc> acc;
  std::map<int, Acc> class_acc;
  Acc global;
  for (const auto& s : history) {
    if (s.node_count <= 0 || s.mean_power_w <= 0.0) continue;
    const double mean_node = s.mean_power_w / s.node_count;
    const double max_node = s.max_power_w / s.node_count;
    auto& a = acc[{s.project, s.sched_class}];
    a.mean_node.add(mean_node);
    a.max_node.add(max_node);
    auto& c = class_acc[s.sched_class];
    c.mean_node.add(mean_node);
    c.max_node.add(max_node);
    global.mean_node.add(mean_node);
    global.max_node.add(max_node);
  }
  auto finish = [](const Acc& a) {
    Portrait p;
    p.jobs = static_cast<int>(a.mean_node.count());
    p.mean_node_w = a.mean_node.mean();
    p.max_node_w = a.max_node.mean();
    const double sample_rel =
        p.mean_node_w > 0.0 ? a.mean_node.sample_stddev() / p.mean_node_w
                            : 1.0;
    // Shrink toward a wide prior so thin portraits stay honest about
    // their uncertainty (the paper's "default measure of uncertainty ...
    // would converge" as the portrait deepens).
    constexpr double kPriorRelSigma = 0.5;
    constexpr double kPriorWeight = 4.0;
    const auto n = static_cast<double>(p.jobs);
    p.rel_sigma = std::sqrt((sample_rel * sample_rel * n +
                             kPriorRelSigma * kPriorRelSigma * kPriorWeight) /
                            (n + kPriorWeight));
    return p;
  };
  for (const auto& [key, a] : acc) portraits_[key] = finish(a);
  for (const auto& [cls, a] : class_acc) class_fallback_[cls] = finish(a);
  global_ = finish(global);
}

PowerPredictor::Prediction PowerPredictor::predict(std::uint32_t project,
                                                   int sched_class,
                                                   int node_count) const {
  EXA_CHECK(node_count > 0, "prediction needs a node count");
  const auto it = portraits_.find({project, sched_class});
  if (it != portraits_.end() && it->second.jobs >= 3) {
    Prediction p = scale_portrait(it->second.mean_node_w,
                                  it->second.max_node_w, node_count);
    p.uncertainty = it->second.rel_sigma;
    p.portrait_jobs = it->second.jobs;
    p.from_portrait = true;
    return p;
  }
  const auto cls = class_fallback_.find(sched_class);
  const Portrait& fb =
      cls != class_fallback_.end() ? cls->second : global_;
  Prediction p = scale_portrait(fb.mean_node_w, fb.max_node_w, node_count);
  // A default (wide) uncertainty for cold projects, as the paper sketches.
  p.uncertainty = std::max(fb.rel_sigma, 0.5);
  p.portrait_jobs = fb.jobs;
  p.from_portrait = false;
  return p;
}

PowerPredictor::Evaluation PowerPredictor::evaluate(
    const std::vector<power::JobPowerSummary>& test) const {
  Evaluation e;
  double ape_mean = 0.0;
  double ape_max = 0.0;
  double base_mean = 0.0;
  double base_max = 0.0;
  for (const auto& s : test) {
    if (s.node_count <= 0 || s.mean_power_w <= 0.0 || s.max_power_w <= 0.0) {
      continue;
    }
    const Prediction p = predict(s.project, s.sched_class, s.node_count);
    ape_mean += std::fabs(p.mean_power_w - s.mean_power_w) / s.mean_power_w;
    ape_max += std::fabs(p.max_power_w - s.max_power_w) / s.max_power_w;
    // Baseline: the per-class portrait regardless of project.
    const auto cls = class_fallback_.find(s.sched_class);
    const Portrait& fb =
        cls != class_fallback_.end() ? cls->second : global_;
    const Prediction b =
        scale_portrait(fb.mean_node_w, fb.max_node_w, s.node_count);
    base_mean += std::fabs(b.mean_power_w - s.mean_power_w) / s.mean_power_w;
    base_max += std::fabs(b.max_power_w - s.max_power_w) / s.max_power_w;
    ++e.jobs;
  }
  if (e.jobs > 0) {
    const auto n = static_cast<double>(e.jobs);
    e.mape_mean = ape_mean / n;
    e.mape_max = ape_max / n;
    e.baseline_mape_mean = base_mean / n;
    e.baseline_mape_max = base_max / n;
  }
  return e;
}

}  // namespace exawatt::core
