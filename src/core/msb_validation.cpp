#include "core/msb_validation.hpp"

#include <algorithm>

#include "power/job_power.hpp"
#include "stats/correlation.hpp"
#include "util/check.hpp"
#include "util/welford.hpp"

namespace exawatt::core {

namespace {

/// Nodes of one job that fall under one MSB, and the sum of their sensor
/// calibration factors (so the summation path applies per-node bias
/// without a per-node time loop).
struct JobMsbSlice {
  double node_count = 0.0;
  double factor_sum = 0.0;
};

JobMsbSlice slice_job(const workload::Job& job, const machine::Topology& topo,
                      const facility::MsbModel& msb, machine::MsbId m) {
  JobMsbSlice s;
  for (const auto& r : job.nodes) {
    for (int i = 0; i < r.count; ++i) {
      const machine::NodeId n = r.first + i;
      if (topo.msb_of(n) == m) {
        s.node_count += 1.0;
        s.factor_sum += msb.node_sensor_factor(n);
      }
    }
  }
  return s;
}

}  // namespace

MsbValidationResult validate_msbs(const std::vector<workload::Job>& jobs,
                                  const machine::Topology& topo,
                                  const facility::MsbModel& msb,
                                  util::TimeRange window, util::TimeSec dt) {
  EXA_CHECK(dt > 0, "validation dt must be positive");
  EXA_CHECK(window.duration() >= dt, "validation window too small");
  const auto n_windows = static_cast<std::size_t>(window.duration() / dt);
  const int n_msbs = topo.msbs();

  // Idle baseline per MSB: node counts and factor sums over all nodes.
  std::vector<double> msb_nodes(static_cast<std::size_t>(n_msbs), 0.0);
  std::vector<double> msb_factors(static_cast<std::size_t>(n_msbs), 0.0);
  for (machine::NodeId n = 0; n < topo.nodes(); ++n) {
    const auto m = static_cast<std::size_t>(topo.msb_of(n));
    msb_nodes[m] += 1.0;
    msb_factors[m] += msb.node_sensor_factor(n);
  }

  const double idle_w = power::node_input_power_w({});

  // true_w[m][w] and biased_w[m][w]: start from the idle baseline.
  std::vector<std::vector<double>> true_w(
      static_cast<std::size_t>(n_msbs), std::vector<double>(n_windows));
  std::vector<std::vector<double>> biased_w = true_w;
  for (int m = 0; m < n_msbs; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    std::fill(true_w[mi].begin(), true_w[mi].end(), msb_nodes[mi] * idle_w);
    std::fill(biased_w[mi].begin(), biased_w[mi].end(),
              msb_factors[mi] * idle_w);
  }

  for (const auto& job : jobs) {
    if (job.start < 0) continue;
    const util::TimeRange overlap = window.clamp(job.interval());
    if (overlap.duration() <= 0) continue;
    std::vector<JobMsbSlice> slices;
    slices.reserve(static_cast<std::size_t>(n_msbs));
    for (int m = 0; m < n_msbs; ++m) {
      slices.push_back(slice_job(job, topo, msb, m));
    }
    for (util::TimeSec t = overlap.begin; t < overlap.end; t += dt) {
      const auto w = static_cast<std::size_t>((t - window.begin) / dt);
      if (w >= n_windows) break;
      const double p = power::job_node_input_w(job, std::min(t + dt / 2,
                                                             overlap.end - 1));
      for (int m = 0; m < n_msbs; ++m) {
        const auto mi = static_cast<std::size_t>(m);
        if (slices[mi].node_count <= 0.0) continue;
        true_w[mi][w] += slices[mi].node_count * (p - idle_w);
        biased_w[mi][w] += slices[mi].factor_sum * (p - idle_w);
      }
    }
  }

  MsbValidationResult result;
  util::Welford overall_diff;
  double total_meter = 0.0;
  for (int m = 0; m < n_msbs; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    MsbComparison cmp;
    cmp.msb = m;
    std::vector<double> meter(n_windows);
    for (std::size_t w = 0; w < n_windows; ++w) {
      meter[w] = msb.meter_reading(
          m, true_w[mi][w],
          window.begin + dt * static_cast<util::TimeSec>(w));
    }
    util::Welford diff;
    util::Welford meter_level;
    for (std::size_t w = 0; w < n_windows; ++w) {
      diff.add(meter[w] - biased_w[mi][w]);
      meter_level.add(meter[w]);
    }
    cmp.mean_diff_w = diff.mean();
    cmp.std_diff_w = diff.stddev();
    cmp.relative_diff =
        meter_level.mean() > 0.0 ? std::fabs(diff.mean()) / meter_level.mean()
                                 : 0.0;
    cmp.phase_correlation = stats::pearson(meter, biased_w[mi]);
    cmp.meter_w = ts::Series(window.begin, dt, std::move(meter));
    cmp.summation_w = ts::Series(window.begin, dt, std::move(biased_w[mi]));
    overall_diff.add(cmp.mean_diff_w);
    total_meter += meter_level.mean();
    result.per_msb.push_back(std::move(cmp));
  }
  result.overall_mean_diff_w = overall_diff.mean();
  result.overall_relative =
      total_meter > 0.0
          ? std::fabs(overall_diff.mean()) * n_msbs / total_meter
          : 0.0;
  return result;
}

}  // namespace exawatt::core
