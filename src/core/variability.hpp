#pragma once

#include <vector>

#include "power/job_power.hpp"
#include "stats/descriptive.hpp"
#include "thermal/node_thermal.hpp"

namespace exawatt::core {

/// Figure 17 reproduction: per-GPU power/temperature variability during a
/// compute-intense full-scale job, including the spatial (cabinet) view.
struct VariabilitySnapshot {
  util::TimeSec t = 0;
  stats::BoxplotStats gpu_power_w;
  stats::BoxplotStats gpu_temp_c;
  double power_temp_corr = 0.0;  ///< Pearson r across the job's GPUs
  double power_spread_w = 0.0;   ///< non-outlier spread (paper: ~62 W)
  double temp_spread_c = 0.0;    ///< non-outlier spread (paper: ~15.8 °C)
  std::vector<double> cabinet_mean_c;  ///< per cabinet; NaN = no job nodes
  std::vector<double> cabinet_max_c;
};

struct VariabilityStudy {
  workload::JobId job = 0;
  int node_count = 0;
  double runtime_min = 0.0;
  std::vector<VariabilitySnapshot> snapshots;
  double max_temp_c = 0.0;       ///< hottest GPU over all snapshots
  double share_below_60c = 1.0;  ///< fraction of GPU readings under 60 °C
};

/// Evaluate `instants` evenly spaced snapshots across the job's runtime.
[[nodiscard]] VariabilityStudy variability_study(
    const workload::Job& job, const power::FleetVariability& fleet,
    const thermal::FleetThermal& thermals, double mtw_supply_c = 20.0,
    std::size_t instants = 6);

/// Pick the exemplar: the largest near-full-machine job whose runtime
/// falls in [min_minutes, max_minutes] (paper: 4,608 nodes, ~21 min).
/// Returns nullptr if none qualifies.
[[nodiscard]] const workload::Job* select_exemplar(
    const std::vector<workload::Job>& jobs, int min_nodes,
    double min_minutes = 10.0, double max_minutes = 40.0);

}  // namespace exawatt::core
