#pragma once

#include <vector>

#include "ts/series.hpp"

namespace exawatt::core {

/// A detected power edge (paper §4.2): a swing whose per-10-second step
/// exceeds the per-node threshold times the job's (or system's) node
/// count. Consecutive same-sign steps merge into one edge.
struct Edge {
  bool rising = true;
  util::TimeSec start = 0;      ///< time of the first step of the edge
  double amplitude_w = 0.0;     ///< total power change across the edge
  double initial_w = 0.0;       ///< power level before the edge
  double peak_w = 0.0;          ///< extremum reached after the edge
  util::TimeSec duration_s = 0; ///< start -> 80% return toward initial
  bool returned = false;        ///< false when the series ended first
};

struct EdgeOptions {
  /// The paper's rule: 868 W averaged across the job's nodes per step
  /// (4 MW at the full 4,608-node system scale).
  double per_node_threshold_w = 868.0;
  /// Fraction of the excursion that must be given back for the edge to
  /// count as "returned" (duration endpoint).
  double return_fraction = 0.8;
};

/// Detect rising and falling edges in a power series normalized by
/// `node_count` (the job's size, or the full machine for cluster series).
[[nodiscard]] std::vector<Edge> detect_edges(const ts::Series& power,
                                             double node_count,
                                             EdgeOptions options = {});

/// Figure 10 upper row inputs: per-job edge count and all edge durations.
struct JobEdgeStats {
  std::size_t edges = 0;
  std::vector<double> durations_min;
};
[[nodiscard]] JobEdgeStats job_edge_stats(const ts::Series& power,
                                          double node_count,
                                          EdgeOptions options = {});

}  // namespace exawatt::core
