#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace exawatt::core {

namespace {
constexpr const char kGlyphs[] = " .:-=+*#%@";
constexpr int kLevels = 10;

char glyph(double v, double lo, double hi) {
  if (std::isnan(v)) return '.';
  if (hi <= lo) return kGlyphs[kLevels / 2];
  int level = static_cast<int>((v - lo) / (hi - lo) * (kLevels - 1) + 0.5);
  level = std::clamp(level, 0, kLevels - 1);
  return kGlyphs[level];
}

void auto_range(const std::vector<double>& values, double& lo, double& hi) {
  if (hi > lo) return;
  lo = std::numeric_limits<double>::infinity();
  hi = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!std::isfinite(lo)) {
    lo = 0.0;
    hi = 1.0;
  }
}
}  // namespace

std::string floor_heatmap(const machine::Topology& topo,
                          const std::vector<double>& per_cabinet, double lo,
                          double hi) {
  EXA_CHECK(per_cabinet.size() ==
                static_cast<std::size_t>(topo.cabinets()),
            "need one value per cabinet");
  auto_range(per_cabinet, lo, hi);
  std::ostringstream os;
  for (int r = 0; r < topo.rows(); ++r) {
    for (int c = 0; c < topo.columns(); ++c) {
      const int cab = r * topo.columns() + c;
      if (cab >= topo.cabinets()) break;
      os << glyph(per_cabinet[static_cast<std::size_t>(cab)], lo, hi);
    }
    os << '\n';
  }
  char footer[96];
  std::snprintf(footer, sizeof footer, "scale: '%c' = %.1f ... '%c' = %.1f\n",
                kGlyphs[0], lo, kGlyphs[kLevels - 1], hi);
  os << footer;
  return os.str();
}

std::string sparkline(const ts::Series& series, std::size_t width) {
  if (series.empty() || width == 0) return "";
  double lo = 0.0;
  double hi = 0.0;
  std::vector<double> v(series.values().begin(), series.values().end());
  auto_range(v, lo, hi);
  std::string out;
  out.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t idx = i * series.size() / width;
    out += glyph(series[idx], lo, hi);
  }
  return out;
}

}  // namespace exawatt::core
