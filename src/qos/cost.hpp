#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "server/wire.hpp"
#include "telemetry/metric.hpp"
#include "util/sim_time.hpp"

namespace exawatt::store {
class Store;
}

namespace exawatt::qos {

/// Calibrated unit costs behind the admission price, all in estimated
/// execution microseconds. The defaults are honest order-of-magnitude
/// numbers; `from_bench_json` replaces the decode rate with the machine's
/// own measured one so prices track the hardware the server runs on.
struct CostProfile {
  /// Decoding + filtering one codec block (events_per_block events at
  /// the calibrated decode rate).
  double block_decode_us = 12.0;
  /// Pushing one decoded event through the streaming replay engine
  /// (pue_rollup / scenario legs) — watermarking, windowing, facility
  /// model; dominates block decode on replay-shaped methods.
  double replay_us_per_event = 0.15;
  /// Fixed per-request overhead: parse, dispatch, encode, queueing. The
  /// whole price of ping / server_stats / directory.
  double floor_us = 25.0;
  /// Events a full codec block carries (StoreOptions::block_events).
  std::size_t events_per_block = 4096;

  /// Calibrate `block_decode_us` from a BENCH_codec.json
  /// ("decode_into_eps": sustained decode events/s on this machine). A
  /// missing or malformed file keeps the built-in defaults — pricing
  /// degrades in accuracy, never in availability.
  [[nodiscard]] static CostProfile from_bench_json(
      const std::string& path, std::size_t events_per_block = 4096);
};

/// Deterministic pricing seam: (ids, range) -> how many codec blocks a
/// scan of exactly that shape will touch. The store-backed counter walks
/// the per-metric block directory; a coordinator front-end could price
/// from its cached shard directories. Null counter = structure-only
/// pricing (floors and multipliers, no block term).
using BlockCounter = std::function<std::uint64_t(
    std::span<const telemetry::MetricId>, util::TimeRange)>;

/// Prices a request before admission. Deliberately cheap relative to
/// what it prices: a directory walk (binary searches over in-memory
/// block indexes), never an I/O.
class CostModel {
 public:
  CostModel(CostProfile profile, BlockCounter blocks);

  /// Estimated execution cost of `request` in microseconds, >= floor.
  /// Method shapes:
  ///  - ping / server_stats / directory / subscribe: the floor (stats
  ///    answer from counters; a subscription's cost is open-ended and
  ///    priced by its admission, not its lifetime).
  ///  - window_sum / scan / cluster_sum: floor + blocks * decode.
  ///  - pue_rollup: the above + replay of every decoded event.
  ///  - scenario / sweep: replay term additionally multiplied by
  ///    2 * variants (each leg replays baseline + intervention).
  [[nodiscard]] std::uint64_t price(
      const server::wire::Request& request) const;

  [[nodiscard]] const CostProfile& profile() const { return profile_; }

 private:
  CostProfile profile_;
  BlockCounter blocks_;
};

/// The canonical store-backed counter: Store::estimate_blocks. The store
/// must outlive the returned counter (same contract as the executor).
[[nodiscard]] BlockCounter store_block_counter(const store::Store& store);

}  // namespace exawatt::qos
