#include "qos/cost.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "store/store.hpp"
#include "util/check.hpp"

namespace exawatt::qos {

namespace {

/// Extract `"key": <number>` from a flat JSON object without a JSON
/// dependency (the bench emitters write one object, one line per key).
/// Returns false when the key is absent or the value is not a number.
bool json_number(const std::string& text, const std::string& key,
                 double* out) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  std::size_t i = text.find(':', at + needle.size());
  if (i == std::string::npos) return false;
  ++i;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  const char* begin = text.c_str() + i;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

CostProfile CostProfile::from_bench_json(const std::string& path,
                                         std::size_t events_per_block) {
  CostProfile profile;
  profile.events_per_block = events_per_block > 0 ? events_per_block : 4096;
  std::ifstream in(path);
  if (!in) return profile;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  double eps = 0.0;
  if (json_number(text, "decode_into_eps", &eps) && eps > 0.0) {
    profile.block_decode_us =
        static_cast<double>(profile.events_per_block) / eps * 1e6;
  }
  return profile;
}

CostModel::CostModel(CostProfile profile, BlockCounter blocks)
    : profile_(profile), blocks_(std::move(blocks)) {}

std::uint64_t CostModel::price(const server::wire::Request& request) const {
  using server::wire::Method;
  const auto blocks_for = [this](std::span<const telemetry::MetricId> ids,
                                 util::TimeRange range) -> double {
    if (!blocks_ || ids.empty() || range.begin > range.end) return 0.0;
    return static_cast<double>(blocks_(ids, range));
  };
  const auto power_ids = [](const server::wire::Request& req) {
    // pue_rollup / scenario replays fetch each node's input-power
    // channel — the same ids the executor will query.
    const int channel =
        telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
    std::vector<telemetry::MetricId> ids;
    ids.reserve(req.nodes.size());
    for (const machine::NodeId n : req.nodes) {
      ids.push_back(telemetry::metric_id(n, channel));
    }
    return ids;
  };

  double cost = profile_.floor_us;
  switch (request.method) {
    case Method::kPing:
    case Method::kServerStats:
    case Method::kDirectory:
    case Method::kSubscribe:
      break;
    case Method::kWindowSum: {
      const telemetry::MetricId id = request.metric;
      cost += blocks_for({&id, 1}, request.range) * profile_.block_decode_us;
      break;
    }
    case Method::kScan:
    case Method::kScanBlocks:
      cost += blocks_for(request.metrics, request.range) *
              profile_.block_decode_us;
      break;
    case Method::kClusterSum: {
      std::vector<telemetry::MetricId> ids;
      ids.reserve(request.nodes.size());
      for (const machine::NodeId n : request.nodes) {
        ids.push_back(telemetry::metric_id(n, request.channel));
      }
      cost += blocks_for(ids, request.range) * profile_.block_decode_us;
      break;
    }
    case Method::kPueRollup: {
      const auto ids = power_ids(request);
      const double blocks = blocks_for(ids, request.range);
      // Replayed events estimated from the directory: every touched
      // block's events go through the engine. Boundary blocks replay
      // fewer, so this is a slight overestimate — conservative is the
      // right direction for admission.
      cost += blocks * profile_.block_decode_us +
              blocks * static_cast<double>(profile_.events_per_block) *
                  profile_.replay_us_per_event;
      break;
    }
    case Method::kScenario:
    case Method::kScenarioSweep: {
      const auto ids = power_ids(request);
      const double blocks = blocks_for(ids, request.range);
      const double legs =
          2.0 * static_cast<double>(std::max<std::size_t>(
                    1, request.scenarios.size()));  // baseline + variant
      cost += blocks * profile_.block_decode_us +
              legs * blocks *
                  static_cast<double>(profile_.events_per_block) *
                  profile_.replay_us_per_event;
      break;
    }
  }
  cost = std::max(cost, profile_.floor_us);
  // Saturate far below the u64 edge so downstream backlog sums of many
  // maximal prices cannot overflow.
  cost = std::min(cost, 1e15);
  return static_cast<std::uint64_t>(cost);
}

BlockCounter store_block_counter(const store::Store& store) {
  return [&store](std::span<const telemetry::MetricId> ids,
                  util::TimeRange range) {
    return store.estimate_blocks(ids, range);
  };
}

}  // namespace exawatt::qos
