#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>

#include "qos/autoscale.hpp"
#include "qos/scheduler.hpp"
#include "util/sim_time.hpp"

namespace exawatt::qos {

struct WorkerPoolOptions {
  AutoScalerOptions autoscaler;
  /// Workers kept clear of normal/batch work: concurrent non-interactive
  /// items are capped at workers - reserve (floor 1), so a pool full of
  /// long replays still has an open lane for the next health check —
  /// priority alone cannot help a ping that arrives after every worker
  /// has already committed to a minute of batch work.
  std::size_t interactive_reserve = 1;
};

/// The execution half of the QoS subsystem: a grow/shrinkable set of
/// worker threads pulling from one Scheduler, scaled by the AutoScaler
/// on every push and completion. The pool never owns queued work — on
/// stop(), unstarted items remain in the Scheduler for the owner to
/// drain and shed.
class WorkerPool {
 public:
  WorkerPool(Scheduler* sched, WorkerPoolOptions options, util::Clock* clock);
  ~WorkerPool();

  /// Call after Scheduler::push: wakes a worker and re-evaluates scale.
  void notify();
  /// Stop pulling, join every worker. Running items finish first.
  void stop();

  [[nodiscard]] std::size_t workers() const;
  [[nodiscard]] std::size_t busy() const;

 private:
  void worker_loop(std::size_t index);
  void maybe_scale_locked();
  /// Spawn/retire threads toward `target`; caller holds mu_.
  void apply_target_locked(std::size_t target);

  Scheduler& sched_;
  WorkerPoolOptions options_;
  util::Clock& clock_;
  AutoScaler scaler_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  struct Slot {
    std::thread thread;
    bool exited = true;
  };
  std::deque<Slot> slots_;  ///< index-stable; slot i belongs to worker i
  std::size_t target_ = 0;
  std::size_t live_ = 0;
  std::size_t busy_ = 0;
  /// Running items per class — the source of the PopLimits caps.
  std::array<std::size_t, kClassCount> running_{};
  bool stop_ = false;
};

}  // namespace exawatt::qos
