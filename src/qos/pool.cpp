#include "qos/pool.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"

namespace exawatt::qos {

WorkerPool::WorkerPool(Scheduler* sched, WorkerPoolOptions options,
                       util::Clock* clock)
    : sched_(*sched),
      options_(options),
      clock_(clock != nullptr ? *clock : util::Clock::steady()),
      scaler_(options.autoscaler) {
  EXA_CHECK(sched != nullptr, "worker pool needs a scheduler");
  std::lock_guard lk(mu_);
  apply_target_locked(scaler_.options().min_workers);
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::notify() {
  {
    std::lock_guard lk(mu_);
    if (stop_) return;
    maybe_scale_locked();
  }
  cv_.notify_all();
}

void WorkerPool::maybe_scale_locked() {
  if (stop_) return;  // never spawn into a stopping pool
  const std::int64_t now = clock_.now_us();
  const SchedulerSnapshot q = sched_.snapshot(now);
  ScaleSignals s;
  s.now_us = now;
  s.queued = q.queued;
  s.oldest_wait_us = q.oldest_wait_us;
  s.backlog_cost_us = q.backlog_cost_us;
  s.workers = target_;
  s.busy = busy_;
  const std::size_t want = scaler_.decide(s);
  if (want != target_) apply_target_locked(want);
}

void WorkerPool::apply_target_locked(std::size_t target) {
  target_ = target;
  while (slots_.size() < target_) slots_.emplace_back();
  for (std::size_t i = 0; i < target_; ++i) {
    Slot& slot = slots_[i];
    if (!slot.exited) continue;
    // A retired worker's thread object lingers in its slot until the
    // slot is re-grown (or stop()); joining here is cheap — the thread
    // finished when it marked the slot exited.
    if (slot.thread.joinable()) slot.thread.join();
    slot.exited = false;
    ++live_;
    slot.thread = std::thread([this, i] { worker_loop(i); });
  }
  // Shrink is lazy: workers with index >= target_ observe it and exit.
}

void WorkerPool::worker_loop(std::size_t index) {
  std::unique_lock lk(mu_);
  for (;;) {
    if (stop_ || index >= target_) break;
    PopLimits limits;
    const std::size_t reserve =
        target_ > 1 ? std::min(options_.interactive_reserve, target_ - 1)
                    : 0;
    const std::size_t cap = target_ - reserve;
    const std::size_t noninteractive =
        running_[static_cast<std::size_t>(Class::kNormal)] +
        running_[static_cast<std::size_t>(Class::kBatch)];
    limits.allow_normal = noninteractive < cap;
    limits.allow_batch = noninteractive < cap;
    std::optional<Item> item = sched_.pop(clock_.now_us(), limits);
    if (!item) {
      // Timed wait doubles as the idle-shrink heartbeat: a sleeping pool
      // still feeds the autoscaler observations.
      cv_.wait_for(lk, std::chrono::milliseconds(50));
      maybe_scale_locked();
      continue;
    }
    ++busy_;
    ++running_[static_cast<std::size_t>(item->cls)];
    lk.unlock();
    item->run();
    lk.lock();
    --busy_;
    --running_[static_cast<std::size_t>(item->cls)];
    maybe_scale_locked();
    // A completion can open a class-cap or fairness slot for a waiting
    // sibling; wake the pool to re-check.
    cv_.notify_all();
  }
  slots_[index].exited = true;
  --live_;
  cv_.notify_all();
}

void WorkerPool::stop() {
  {
    std::lock_guard lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (Slot& slot : slots_) {
    // slots_ never shrinks once stop_ is set, so iterating without the
    // lock is safe; join needs the lock released for workers to finish.
    if (slot.thread.joinable()) slot.thread.join();
  }
}

std::size_t WorkerPool::workers() const {
  std::lock_guard lk(mu_);
  return live_;
}

std::size_t WorkerPool::busy() const {
  std::lock_guard lk(mu_);
  return busy_;
}

}  // namespace exawatt::qos
