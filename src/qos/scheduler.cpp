#include "qos/scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace exawatt::qos {

const char* class_name(Class c) {
  switch (c) {
    case Class::kInteractive: return "interactive";
    case Class::kNormal: return "normal";
    case Class::kBatch: return "batch";
  }
  return "?";
}

Class class_from_wire(std::uint32_t v) {
  if (v == 0) return Class::kInteractive;
  if (v == 1) return Class::kNormal;
  return Class::kBatch;
}

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {
  EXA_CHECK(options_.max_queue > 0, "scheduler queue must hold something");
  EXA_CHECK(options_.quantum_us > 0, "DRR quantum must be positive");
  EXA_CHECK(options_.promote_stride > 0, "promote stride must be positive");
}

PushResult Scheduler::push(Item item, std::int64_t now_us) {
  PushResult result;
  std::lock_guard lk(mu_);
  item.enqueued_us = now_us;
  item.seq = seq_++;
  if (item.cost_us == 0) item.cost_us = 1;

  const bool over_count = queued_ + 1 > options_.max_queue;
  const bool over_cost =
      options_.max_backlog_cost_us != 0 &&
      backlog_cost_us_ + item.cost_us > options_.max_backlog_cost_us;
  if (over_count || over_cost) {
    // Shed the cheapest-to-refuse: the worst (class, cost, age) item in
    // the whole queue, the incoming one included. Refusing an expensive
    // batch sweep costs its tenant one retry; refusing a cheap
    // interactive ping costs someone their health check — so class
    // outranks cost outranks age, compared worst-first.
    const auto worse = [](Class ac, std::uint64_t acost, std::uint64_t aseq,
                          Class bc, std::uint64_t bcost, std::uint64_t bseq) {
      if (ac != bc) return ac > bc;        // lower priority first
      if (acost != bcost) return acost > bcost;  // pricier first
      return aseq > bseq;                  // younger first
    };
    std::size_t vc = static_cast<std::size_t>(item.cls);
    std::map<std::uint64_t, TenantQueue>::iterator vt;
    std::deque<Item>::iterator vi;
    bool victim_is_incoming = true;
    Class best_c = item.cls;
    std::uint64_t best_cost = item.cost_us;
    std::uint64_t best_seq = item.seq;
    for (std::size_t c = 0; c < kClassCount; ++c) {
      for (auto t = classes_[c].tenants.begin();
           t != classes_[c].tenants.end(); ++t) {
        for (auto i = t->second.items.begin(); i != t->second.items.end();
             ++i) {
          if (worse(i->cls, i->cost_us, i->seq, best_c, best_cost,
                    best_seq)) {
            best_c = i->cls;
            best_cost = i->cost_us;
            best_seq = i->seq;
            vc = c;
            vt = t;
            vi = i;
            victim_is_incoming = false;
          }
        }
      }
    }
    if (victim_is_incoming) {
      result.admitted = false;
      result.evicted = std::move(item);
      return result;
    }
    result.evicted = std::move(*vi);
    vt->second.items.erase(vi);
    --classes_[vc].queued;
    --queued_;
    backlog_cost_us_ -= result.evicted->cost_us;
    // The emptied tenant's ring entry is dropped lazily at pop.
  }

  ClassState& cs = classes_[static_cast<std::size_t>(item.cls)];
  TenantQueue& tq = cs.tenants[item.tenant];
  if (!tq.in_ring) {
    cs.ring.push_back(item.tenant);
    tq.in_ring = true;
    tq.deficit_us = 0;  // no banking credit across idle periods
  }
  backlog_cost_us_ += item.cost_us;
  tq.items.push_back(std::move(item));
  ++cs.queued;
  ++queued_;
  result.admitted = true;
  return result;
}

std::optional<Scheduler::HeadKey> Scheduler::oldest_head_locked(
    const ClassState& cs) const {
  std::optional<HeadKey> oldest;
  for (const auto& [tenant, tq] : cs.tenants) {
    if (tq.items.empty()) continue;
    const HeadKey head{tq.items.front().enqueued_us,
                       tq.items.front().seq};
    if (!oldest || head.older_than(*oldest)) oldest = head;
  }
  return oldest;
}

std::optional<Item> Scheduler::pop_class_locked(ClassState& cs) {
  // Deficit round-robin over the tenant ring. When no active tenant has
  // banked enough deficit for its head, every active tenant is granted
  // the same whole number of quanta in one step (the minimum that lets
  // someone run) — identical proportions to spinning the ring, without
  // ever looping cost/quantum times on a single expensive head.
  for (int round = 0; round < 2; ++round) {
    std::size_t seen = 0;
    const std::size_t ring_size = cs.ring.size();
    while (seen < ring_size && !cs.ring.empty()) {
      const std::uint64_t tenant = cs.ring.front();
      auto it = cs.tenants.find(tenant);
      if (it == cs.tenants.end() || it->second.items.empty()) {
        cs.ring.pop_front();  // went idle (or was shed empty) — drop
        if (it != cs.tenants.end()) cs.tenants.erase(it);
        continue;
      }
      TenantQueue& tq = it->second;
      if (tq.deficit_us >= tq.items.front().cost_us) {
        Item item = std::move(tq.items.front());
        tq.items.pop_front();
        tq.deficit_us -= item.cost_us;
        --cs.queued;
        --queued_;
        backlog_cost_us_ -= item.cost_us;
        // Rotate: the tenant goes to the back whether or not it has
        // more queued (round-robin turn taken).
        cs.ring.pop_front();
        if (tq.items.empty()) {
          cs.tenants.erase(it);
        } else {
          cs.ring.push_back(tenant);
        }
        return item;
      }
      cs.ring.pop_front();
      cs.ring.push_back(tenant);
      ++seen;
    }
    if (cs.ring.empty()) return std::nullopt;
    // Nobody qualified: top up every active tenant by the minimal whole
    // number of quanta that unblocks the cheapest-to-unblock head.
    std::uint64_t min_rounds = 0;
    bool first = true;
    for (const std::uint64_t tenant : cs.ring) {
      const TenantQueue& tq = cs.tenants.at(tenant);
      const std::uint64_t need = tq.items.front().cost_us - tq.deficit_us;
      const std::uint64_t rounds =
          (need + options_.quantum_us - 1) / options_.quantum_us;
      if (first || rounds < min_rounds) min_rounds = rounds;
      first = false;
    }
    for (const std::uint64_t tenant : cs.ring) {
      cs.tenants.at(tenant).deficit_us += min_rounds * options_.quantum_us;
    }
  }
  return std::nullopt;  // unreachable: the top-up guarantees a qualifier
}

std::optional<Item> Scheduler::pop(std::int64_t now_us, PopLimits limits) {
  std::lock_guard lk(mu_);
  if (queued_ == 0) return std::nullopt;
  const std::array<bool, kClassCount> allowed = {true, limits.allow_normal,
                                                 limits.allow_batch};

  // Pick the class: highest priority non-empty by default, overridden by
  // the two promotion rules so lower classes always drain (header doc).
  int chosen = -1;
  for (std::size_t c = 0; c < kClassCount; ++c) {
    if (allowed[c] && classes_[c].queued > 0) {
      chosen = static_cast<int>(c);
      break;
    }
  }
  if (chosen < 0) return std::nullopt;  // only capped classes have work

  ++pops_;
  int oldest_class = -1;
  HeadKey oldest_head{};
  for (std::size_t c = 0; c < kClassCount; ++c) {
    if (!allowed[c] || classes_[c].queued == 0) continue;
    const auto head = oldest_head_locked(classes_[c]);
    if (head && (oldest_class < 0 || head->older_than(oldest_head))) {
      oldest_class = static_cast<int>(c);
      oldest_head = *head;
    }
  }
  const bool aged = oldest_class > chosen &&
                    now_us - oldest_head.t >= options_.promote_after_us;
  const bool stride = oldest_class > chosen &&
                      pops_ % options_.promote_stride == 0;
  if (aged || stride) chosen = oldest_class;

  return pop_class_locked(classes_[static_cast<std::size_t>(chosen)]);
}

std::vector<Item> Scheduler::drain_all() {
  std::lock_guard lk(mu_);
  std::vector<Item> out;
  out.reserve(queued_);
  for (ClassState& cs : classes_) {
    for (auto& [tenant, tq] : cs.tenants) {
      for (Item& item : tq.items) out.push_back(std::move(item));
    }
    cs.tenants.clear();
    cs.ring.clear();
    cs.queued = 0;
  }
  queued_ = 0;
  backlog_cost_us_ = 0;
  std::sort(out.begin(), out.end(),
            [](const Item& a, const Item& b) { return a.seq < b.seq; });
  return out;
}

SchedulerSnapshot Scheduler::snapshot(std::int64_t now_us) const {
  std::lock_guard lk(mu_);
  SchedulerSnapshot s;
  s.queued = queued_;
  s.backlog_cost_us = backlog_cost_us_;
  std::optional<HeadKey> oldest;
  for (std::size_t c = 0; c < kClassCount; ++c) {
    s.queued_by_class[c] = classes_[c].queued;
    const auto head = oldest_head_locked(classes_[c]);
    if (head && (!oldest || head->older_than(*oldest))) oldest = head;
  }
  if (oldest) {
    s.oldest_wait_us = std::max<std::int64_t>(0, now_us - oldest->t);
  }
  return s;
}

}  // namespace exawatt::qos
