#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace exawatt::qos {

/// Priority classes of the multi-tenant service, ordered best-first.
/// Carried on the wire as request-extension tag 3 (absent = kNormal), so
/// class-less legacy clients land in the middle tier unchanged.
enum class Class : std::uint8_t {
  kInteractive = 0,  ///< health checks, dashboards — latency-critical
  kNormal = 1,       ///< ordinary queries (and every legacy client)
  kBatch = 2,        ///< replays, sweeps, compaction — throughput work
};

inline constexpr std::size_t kClassCount = 3;
inline constexpr Class kDefaultClass = Class::kNormal;

[[nodiscard]] const char* class_name(Class c);

/// Wire value -> Class. Unknown future values demote to kBatch: a newer
/// peer's unrecognized tier must never jump the interactive lane.
[[nodiscard]] Class class_from_wire(std::uint32_t v);

struct SchedulerOptions {
  /// Queued items beyond this shed the cheapest-to-refuse (see push).
  std::size_t max_queue = 256;
  /// Estimated-cost backlog cap in microseconds; 0 = count-bounded only.
  /// A queue of 256 pings and a queue of 256 year-long sweeps are very
  /// different promises — this bounds the promise, not the list.
  std::uint64_t max_backlog_cost_us = 0;
  /// DRR quantum: estimated-cost microseconds granted per tenant per
  /// round. Smaller = finer interleave, larger = batchier turns.
  std::uint64_t quantum_us = 2000;
  /// A queued item older than this promotes its class to the front of
  /// the next dispatch regardless of priority — the clock-based half of
  /// starvation freedom.
  std::int64_t promote_after_us = 100'000;
  /// Every Nth pop serves the oldest head across all classes — the
  /// count-based half, so batch drains even when the clock stands still
  /// (ManualClock tests) or interactive load never pauses.
  std::uint64_t promote_stride = 8;
};

/// One admitted unit of work. `run`/`shed` are never invoked by the
/// Scheduler itself — it is a pure synchronized queue; the WorkerPool
/// runs what pop() returns and the service sheds what push() rejects,
/// keeping every callback outside the scheduler lock.
struct Item {
  Class cls = kDefaultClass;
  std::uint64_t tenant = 0;
  std::uint64_t cost_us = 1;   ///< admission-time estimate (CostModel)
  std::int64_t enqueued_us = 0;  ///< stamped by push
  std::uint64_t seq = 0;         ///< admission order, stamped by push
  std::function<void()> run;
  std::function<void()> shed;
};

struct PushResult {
  /// False = the incoming item itself was the cheapest to refuse; it is
  /// returned in `evicted` (the caller still owns its callbacks).
  bool admitted = false;
  /// The item shed to make room (possibly the incoming one). The caller
  /// must invoke its `shed` — outside any scheduler/service lock.
  std::optional<Item> evicted;
};

/// Per-pop class gate computed by the caller from its running mix: the
/// WorkerPool caps concurrent non-interactive work below the worker
/// count so a long replay can never occupy the whole pool and head-of-
/// line-block a ping. Interactive is always allowed.
struct PopLimits {
  bool allow_normal = true;
  bool allow_batch = true;
};

struct SchedulerSnapshot {
  std::size_t queued = 0;
  std::uint64_t backlog_cost_us = 0;  ///< sum of queued cost estimates
  std::int64_t oldest_wait_us = 0;    ///< now - oldest enqueue; 0 if empty
  std::array<std::size_t, kClassCount> queued_by_class{};
};

/// Three priority classes, deficit-round-robin fair queues per tenant
/// inside each class, cost-based shedding, and starvation-proof class
/// promotion. Internally synchronized; deterministic given the sequence
/// of (push, pop, now_us) calls — time is always passed in, never read,
/// so ManualClock tests drive it without a single real sleep.
///
/// Invariants:
///  - Within one (class, tenant) queue, items pop in admission order.
///  - Within one class, DRR bounds any two backlogged tenants' served
///    cost divergence by quantum_us + the largest single item cost.
///  - Across classes, a lower class is served at least once every
///    promote_stride pops and whenever its head is older than
///    promote_after_us — batch always drains.
///  - Shedding removes the worst (class, cost, age) queued item — never
///    anything already running — and never refuses item A to admit a
///    strictly worse item B.
class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});

  PushResult push(Item item, std::int64_t now_us);
  [[nodiscard]] std::optional<Item> pop(std::int64_t now_us,
                                        PopLimits limits = {});
  /// Remove everything still queued (shutdown); callers shed the items.
  [[nodiscard]] std::vector<Item> drain_all();
  [[nodiscard]] SchedulerSnapshot snapshot(std::int64_t now_us) const;
  [[nodiscard]] const SchedulerOptions& options() const { return options_; }

 private:
  struct TenantQueue {
    std::deque<Item> items;
    std::uint64_t deficit_us = 0;
    /// Guards against duplicate ring entries when a tenant is shed empty
    /// and re-pushes before the ring catches up; the map entry lives
    /// exactly as long as its ring slot does.
    bool in_ring = false;
  };
  struct ClassState {
    std::map<std::uint64_t, TenantQueue> tenants;
    /// Round-robin ring of tenants with queued work; entries whose queue
    /// emptied are dropped lazily at pop.
    std::deque<std::uint64_t> ring;
    std::size_t queued = 0;
  };

  /// Head age for promotion: enqueue time with admission order as the
  /// tie-break, so same-microsecond arrivals (or a frozen test clock)
  /// still have a well-defined oldest — without the seq, a class whose
  /// head tied on time could dodge stride promotion forever.
  struct HeadKey {
    std::int64_t t = 0;
    std::uint64_t seq = 0;
    [[nodiscard]] bool older_than(const HeadKey& other) const {
      return t < other.t || (t == other.t && seq < other.seq);
    }
  };

  [[nodiscard]] std::optional<Item> pop_class_locked(ClassState& cs);
  /// Oldest head of `cs` by (enqueue time, admission seq); nullopt when
  /// empty.
  [[nodiscard]] std::optional<HeadKey> oldest_head_locked(
      const ClassState& cs) const;

  SchedulerOptions options_;
  mutable std::mutex mu_;
  std::array<ClassState, kClassCount> classes_;
  std::uint64_t seq_ = 0;
  std::uint64_t pops_ = 0;
  std::size_t queued_ = 0;
  std::uint64_t backlog_cost_us_ = 0;
};

}  // namespace exawatt::qos
