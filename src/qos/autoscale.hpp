#pragma once

#include <cstddef>
#include <cstdint>

namespace exawatt::qos {

struct AutoScalerOptions {
  std::size_t min_workers = 1;
  /// 0 = 2 * hardware_concurrency, resolved by the WorkerPool.
  std::size_t max_workers = 0;
  /// Decisions are rate-limited to one per interval so a burst of
  /// signals cannot stack multiplicative growth in one instant.
  std::int64_t eval_interval_us = 10'000;
  /// Queue-delay growth trigger: grow when the oldest queued item has
  /// waited this long.
  std::int64_t grow_wait_us = 2'000;
  /// Cost-backlog growth trigger: grow when the estimated queued cost
  /// exceeds this much per current worker (i.e. more than this much
  /// work ahead of the newest arrival even at perfect utilization).
  std::uint64_t backlog_per_worker_us = 100'000;
  /// Shrink only after the pool has been continuously underworked this
  /// long, and then only one worker per further interval — growth is
  /// multiplicative, shrink is linear, so an oscillating load settles
  /// high instead of flapping.
  std::int64_t shrink_after_idle_us = 500'000;
};

/// Everything a scaling decision sees, snapshotted by the caller. Time
/// is a field, not a clock read: the controller is a pure state machine
/// over (signals -> target), deterministic under ManualClock tests.
struct ScaleSignals {
  std::int64_t now_us = 0;
  std::size_t queued = 0;
  std::int64_t oldest_wait_us = 0;
  std::uint64_t backlog_cost_us = 0;
  std::size_t workers = 0;
  std::size_t busy = 0;
};

/// Control law: grow by half the current pool (at least one) when work
/// is waiting and either delay or cost-backlog says the pool is behind;
/// shrink by one after sustained underwork. Hysteresis comes from the
/// idle timer resetting on every busy observation and from the
/// asymmetric step sizes.
class AutoScaler {
 public:
  explicit AutoScaler(AutoScalerOptions options);

  /// Returns the desired worker count given `s` (== s.workers when no
  /// change is warranted). Clamped to [min_workers, max_workers].
  [[nodiscard]] std::size_t decide(const ScaleSignals& s);

  [[nodiscard]] const AutoScalerOptions& options() const { return options_; }

 private:
  AutoScalerOptions options_;
  bool evaluated_ = false;
  std::int64_t last_eval_us_ = 0;
  bool idle_tracked_ = false;
  std::int64_t idle_since_us_ = 0;
};

}  // namespace exawatt::qos
