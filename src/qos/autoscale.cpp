#include "qos/autoscale.hpp"

#include <algorithm>
#include <thread>

#include "util/check.hpp"

namespace exawatt::qos {

AutoScaler::AutoScaler(AutoScalerOptions options) : options_(options) {
  if (options_.max_workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.max_workers = 2 * (hw > 0 ? hw : 2);
  }
  EXA_CHECK(options_.min_workers > 0, "autoscaler wants at least one worker");
  options_.max_workers = std::max(options_.max_workers, options_.min_workers);
  EXA_CHECK(options_.eval_interval_us > 0, "eval interval must be positive");
}

std::size_t AutoScaler::decide(const ScaleSignals& s) {
  const auto clamp = [this](std::size_t n) {
    return std::clamp(n, options_.min_workers, options_.max_workers);
  };
  const std::size_t keep = clamp(s.workers);

  // The idle timer tracks continuous underwork; any observation of a
  // fully busy pool or queued work restarts it, independent of the
  // decision rate limit below (a shrink must be earned by *every*
  // observation in the window, not just the sampled ones).
  const bool underworked = s.queued == 0 && s.busy < s.workers;
  if (!underworked) {
    idle_tracked_ = false;
  } else if (!idle_tracked_) {
    idle_tracked_ = true;
    idle_since_us_ = s.now_us;
  }

  if (evaluated_ && s.now_us - last_eval_us_ < options_.eval_interval_us) {
    return keep;
  }

  const bool behind =
      s.queued > 0 &&
      (s.oldest_wait_us >= options_.grow_wait_us ||
       s.backlog_cost_us >= options_.backlog_per_worker_us * s.workers);
  if (behind) {
    evaluated_ = true;
    last_eval_us_ = s.now_us;
    idle_tracked_ = false;
    return clamp(s.workers + std::max<std::size_t>(1, s.workers / 2));
  }

  if (underworked && idle_tracked_ &&
      s.now_us - idle_since_us_ >= options_.shrink_after_idle_us &&
      s.workers > options_.min_workers) {
    evaluated_ = true;
    last_eval_us_ = s.now_us;
    // Restart the window: the next single-worker shrink needs another
    // full stretch of underwork.
    idle_since_us_ = s.now_us;
    return clamp(s.workers - 1);
  }

  return keep;
}

}  // namespace exawatt::qos
