#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace exawatt::net {

/// Wire framing of the query service (all integers little-endian):
///
///   [4]  magic "EXWN"
///   [1]  u8  protocol version (1)
///   [1]  u8  frame type (FrameType)
///   [2]  u16 flags (chunked-stream continuation bits; 0 on every other
///        frame — the field pre-chunking peers required to be zero)
///   [8]  u64 request id (echoed on responses/ticks of that request)
///   [4]  u32 payload length (bounded by kMaxPayload)
///   [4]  u32 CRC-32 of the payload (util::crc32, the store's checksum)
///   [..] payload
///
/// The decoder treats the wire as adversarial: every field is validated
/// before a single payload byte is trusted, lengths are bounded before
/// buffering, and any violation surfaces as a typed FrameError — the
/// server answers with a goodbye frame and closes, it never crashes.
inline constexpr std::uint8_t kFrameMagic[4] = {'E', 'X', 'W', 'N'};
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;
/// Generous for any sane response (a day of 10 s windows is ~70 KB) but
/// small enough that a hostile length can't balloon server memory.
/// Responses larger than this must travel as a chunked stream.
inline constexpr std::size_t kMaxPayload = std::size_t{32} << 20;

/// Continuation flags of a chunked response stream. Exactly one may be
/// set, and only on kResponse frames; they appear on the wire only after
/// the client negotiated chunking for that request (a pre-chunking peer
/// treats any nonzero flag as its fatal "nonzero reserved field", which
/// is why negotiation is per-request, never assumed).
inline constexpr std::uint16_t kFrameFlagChunk = 0x1;  ///< fragment, more follow
inline constexpr std::uint16_t kFrameFlagFinal = 0x2;  ///< last fragment
/// Stream aborted mid-flight: the payload is a complete error response
/// that REPLACES every fragment streamed so far (a scan that hit its
/// deadline after three chunks cannot be unsent; it can be disowned).
inline constexpr std::uint16_t kFrameFlagAbort = 0x4;
inline constexpr std::uint16_t kFrameFlagMask = 0x7;

/// Reassembly cap: chunking exists to stream results *larger* than one
/// frame, but the assembled response must still be bounded somewhere.
inline constexpr std::size_t kMaxAssembledResponse = std::size_t{256} << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,   ///< client -> server; payload is a wire::Request
  kResponse = 2,  ///< server -> client; payload is a wire::Response
  kTick = 3,      ///< server -> client subscription push; wire::Tick
  kGoodbye = 4,   ///< connection-fatal notice; payload is a reason string
};

[[nodiscard]] const char* frame_type_name(FrameType type);

/// Why a frame (or stream) was rejected.
enum class FrameFault : std::uint8_t {
  kBadMagic = 0,
  kBadVersion,
  kBadType,
  kBadReserved,  ///< undefined flag bits set
  kOversized,    ///< declared payload length exceeds kMaxPayload
  kBadCrc,
  /// Continuation flags somewhere they cannot mean anything: a non-
  /// response frame, or more than one of chunk/final/abort at once.
  kBadChunkFlags,
  kChunkInterleaved,  ///< a chunk of another request inside an open stream
  kChunkTruncated,    ///< stream ended without its kFinal fragment
  kChunkOversized,    ///< assembled stream exceeds kMaxAssembledResponse
};

[[nodiscard]] const char* frame_fault_name(FrameFault fault);

/// Protocol-level framing violation. Once framing is lost there is no
/// way to resynchronize a byte stream, so every FrameFault is
/// connection-fatal (answered with kGoodbye, then close).
class FrameError : public std::runtime_error {
 public:
  FrameError(FrameFault fault, const std::string& detail)
      : std::runtime_error(std::string(frame_fault_name(fault)) +
                           (detail.empty() ? "" : ": " + detail)),
        fault_(fault) {}
  [[nodiscard]] FrameFault fault() const { return fault_; }

 private:
  FrameFault fault_;
};

struct Frame {
  FrameType type = FrameType::kRequest;
  std::uint64_t request_id = 0;
  std::uint16_t flags = 0;  ///< kFrameFlag* continuation bits
  std::vector<std::uint8_t> payload;
};

/// Serialize one frame (header + CRC + payload).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::uint64_t request_id,
    std::span<const std::uint8_t> payload);
/// Same, with continuation flags (kResponse frames of a chunked stream).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::uint64_t request_id,
    std::span<const std::uint8_t> payload, std::uint16_t flags);

/// Incremental, bounds-checked frame parser. Feed arbitrary byte chunks
/// (as the socket delivers them — possibly one byte at a time, the
/// slow-loris case); complete validated frames pop out of `next()`.
/// Header fields are validated as soon as the header is complete, so a
/// hostile length is rejected *before* any buffering is sized from it.
class FrameDecoder {
 public:
  /// Append bytes from the wire. Throws FrameError on any violation;
  /// after a throw the decoder is poisoned and must be discarded (the
  /// stream cannot be resynchronized).
  void feed(std::span<const std::uint8_t> bytes);

  /// Pop the next complete frame; false when more bytes are needed.
  [[nodiscard]] bool next(Frame& out);

  /// Bytes buffered but not yet popped (partial frame + queued frames).
  [[nodiscard]] std::size_t buffered_bytes() const;

 private:
  void validate_header();

  std::vector<std::uint8_t> buf_;  ///< header + payload of the open frame
  std::deque<Frame> ready_;
  std::size_t ready_bytes_ = 0;
  bool header_valid_ = false;
  bool poisoned_ = false;
  FrameType type_ = FrameType::kRequest;
  std::uint64_t request_id_ = 0;
  std::uint16_t flags_ = 0;
  std::uint32_t payload_len_ = 0;
  std::uint32_t payload_crc_ = 0;
};

/// Receive side of chunked response streams: feed every decoded frame
/// through it; chunk fragments are buffered (keyed by the single open
/// stream this connection may carry) and the completed response pops out
/// as one logical frame whose payload is byte-identical to the unchunked
/// encoding. Non-chunked frames — ticks interleaved with a stream,
/// responses to other requests, goodbyes — pass straight through.
///
/// Stream contract it enforces (violations throw a typed FrameError,
/// which is connection-fatal like every framing fault — a neighbor
/// connection's reassembly is untouched):
///  - fragments of one response are contiguous: a chunk/final/abort for a
///    different request id while a stream is open is kChunkInterleaved;
///  - a flag-less response for the open stream's id is kChunkTruncated
///    (the stream lost its kFinal), as is `finish()` with a stream open;
///  - the assembled payload is bounded by `max_bytes` (kChunkOversized).
class ChunkAssembler {
 public:
  explicit ChunkAssembler(std::size_t max_bytes = kMaxAssembledResponse)
      : max_bytes_(max_bytes) {}

  /// Consume one decoded frame. True: `frame` now holds a complete
  /// logical frame for the caller (possibly just reassembled, flags
  /// cleared). False: the fragment was buffered, read on.
  [[nodiscard]] bool feed(Frame& frame);

  /// Orderly end of the byte stream: throws kChunkTruncated when a chunk
  /// stream is still open (the peer hung up mid-response).
  void finish() const;

  [[nodiscard]] bool streaming() const { return open_; }
  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size(); }

 private:
  std::size_t max_bytes_ = kMaxAssembledResponse;
  bool open_ = false;
  std::uint64_t stream_id_ = 0;
  std::vector<std::uint8_t> buf_;
};

}  // namespace exawatt::net
