#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace exawatt::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: a socketpair or exotic transport without TCP_NODELAY
  // still works, just with Nagle latency.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

IoResult classify_io(ssize_t n, bool is_read) {
  if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
  if (n == 0) {
    // A zero read is orderly EOF. A zero write accepted no bytes but is
    // not an error, and errno is stale either way — report would-block
    // and let the caller wait for POLLOUT rather than acting on leftover
    // errno from an unrelated call.
    return is_read ? IoResult{IoStatus::kClosed, 0}
                   : IoResult{IoStatus::kWouldBlock, 0};
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return {IoStatus::kWouldBlock, 0};
  }
  return {IoStatus::kError, 0};
}

bool poll_one(int fd, short events, int timeout_ms) {
  pollfd p{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return rc > 0;
  }
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream::TcpStream(Fd fd) : fd_(std::move(fd)) {
  set_nonblocking(fd_.get());
  set_nodelay(fd_.get());
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port,
                             int timeout_ms) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  set_nonblocking(fd.get());

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("invalid address: " + host);
  }
  const int rc =
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) throw_errno("connect " + host);
  if (rc < 0) {
    if (!poll_one(fd.get(), POLLOUT, timeout_ms)) {
      throw NetError("connect timeout: " + host + ":" + std::to_string(port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      throw NetError("connect " + host + ":" + std::to_string(port) + ": " +
                     std::strerror(err != 0 ? err : errno));
    }
  }
  set_nodelay(fd.get());
  TcpStream stream;
  stream.fd_ = std::move(fd);
  return stream;
}

IoResult TcpStream::read_some(std::uint8_t* buf, std::size_t len) {
  const ssize_t n = ::recv(fd_.get(), buf, len, 0);
  return classify_io(n, /*is_read=*/true);
}

IoResult TcpStream::write_some(const std::uint8_t* buf, std::size_t len) {
  const ssize_t n = ::send(fd_.get(), buf, len, MSG_NOSIGNAL);
  return classify_io(n, /*is_read=*/false);
}

bool TcpStream::wait_readable(int timeout_ms) {
  return poll_one(fd_.get(), POLLIN, timeout_ms);
}

bool TcpStream::wait_writable(int timeout_ms) {
  return poll_one(fd_.get(), POLLOUT, timeout_ms);
}

void TcpStream::write_all(const std::uint8_t* buf, std::size_t len,
                          int deadline_poll_ms) {
  std::size_t sent = 0;
  while (sent < len) {
    const IoResult r = write_some(buf + sent, len - sent);
    switch (r.status) {
      case IoStatus::kOk:
        sent += r.n;
        break;
      case IoStatus::kWouldBlock:
        if (!wait_writable(deadline_poll_ms)) {
          throw NetError("write timeout");
        }
        break;
      default:
        throw NetError("write failed: connection lost");
    }
  }
}

void TcpStream::shutdown_write() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_WR);
}

TcpListener TcpListener::bind(std::uint16_t port, bool loopback_only,
                              int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind port " + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) throw_errno("listen");
  set_nonblocking(fd.get());

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw_errno("getsockname");
  }
  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

TcpStream TcpListener::accept() {
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return {};
    }
    throw_errno("accept");
  }
  return TcpStream(Fd(fd));
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw_errno("pipe");
  read_ = Fd(fds[0]);
  write_ = Fd(fds[1]);
  set_nonblocking(read_.get());
  set_nonblocking(write_.get());
}

void WakePipe::notify() {
  const std::uint8_t b = 1;
  // A full pipe or EINTR is fine: the poller is already due to wake.
  [[maybe_unused]] const ssize_t rc = ::write(write_.get(), &b, 1);
}

void WakePipe::drain() {
  std::uint8_t buf[256];
  while (::read(read_.get(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace exawatt::net
