#include "net/event_loop.hpp"

#include <poll.h>

#include <cerrno>
#include <cstring>

namespace exawatt::net {

EventLoop::EventLoop(TcpListener listener, Callbacks callbacks,
                     LoopOptions options)
    : listener_(std::move(listener)),
      callbacks_(std::move(callbacks)),
      options_(options) {}

EventLoop::~EventLoop() = default;

void EventLoop::stop() {
  {
    std::lock_guard lk(mail_mu_);
    stop_requested_ = true;
  }
  wake_.notify();
}

bool EventLoop::send(ConnId conn, std::vector<std::uint8_t> frame_bytes) {
  {
    std::lock_guard lk(mail_mu_);
    if (!live_.contains(conn)) return false;
    mailbox_.push_back({conn, std::move(frame_bytes)});
  }
  wake_.notify();
  return true;
}

void EventLoop::close_after_flush(ConnId conn) {
  {
    std::lock_guard lk(mail_mu_);
    if (!live_.contains(conn)) return;
    mailbox_.push_back({conn, {}});
  }
  wake_.notify();
}

void EventLoop::pause_accept() {
  std::lock_guard lk(mail_mu_);
  accept_paused_ = true;
}

std::size_t EventLoop::open_connections() const {
  std::lock_guard lk(mail_mu_);
  return live_.size();
}

bool EventLoop::output_idle() const {
  {
    std::lock_guard lk(mail_mu_);
    if (!mailbox_.empty()) return false;
  }
  for (const auto& [id, conn] : conns_) {
    if (!conn.outbox.empty()) return false;
  }
  return true;
}

LoopStats EventLoop::stats() const {
  std::lock_guard lk(mail_mu_);
  return stats_;
}

void EventLoop::drain_mailbox() {
  std::vector<Mail> mail;
  {
    std::lock_guard lk(mail_mu_);
    mail.swap(mailbox_);
  }
  for (Mail& m : mail) {
    const auto it = conns_.find(m.conn);
    if (it == conns_.end()) continue;  // raced with a close; drop
    if (m.bytes.empty()) {
      it->second.closing = true;
      continue;
    }
    it->second.pending_bytes += m.bytes.size();
    it->second.outbox.push_back(std::move(m.bytes));
    {
      std::lock_guard lk(mail_mu_);
      ++stats_.frames_out;
    }
    if (it->second.pending_bytes > options_.max_pending_write_bytes) {
      // The peer stopped consuming; unbounded buffering is the real
      // hazard, so the slow consumer loses its connection.
      {
        std::lock_guard lk(mail_mu_);
        ++stats_.backpressure_closes;
      }
      close_conn(it->first);
    }
  }
}

void EventLoop::accept_ready() {
  for (;;) {
    TcpStream stream = listener_.accept();
    if (!stream.valid()) return;
    const ConnId id = next_id_++;
    Conn conn;
    conn.stream = std::move(stream);
    conns_.emplace(id, std::move(conn));
    {
      std::lock_guard lk(mail_mu_);
      live_.insert(id);
      ++stats_.accepted;
    }
    if (callbacks_.on_open) callbacks_.on_open(id);
  }
}

void EventLoop::fail_protocol(ConnId id, Conn& conn, const FrameError& err) {
  {
    std::lock_guard lk(mail_mu_);
    ++stats_.protocol_errors;
  }
  if (callbacks_.on_protocol_error) callbacks_.on_protocol_error(id, err);
  // Best-effort goodbye so a buggy (rather than hostile) client learns
  // why it was cut off; then close once it flushes.
  const std::string reason = err.what();
  auto bytes = encode_frame(
      FrameType::kGoodbye, 0,
      {reinterpret_cast<const std::uint8_t*>(reason.data()), reason.size()});
  conn.pending_bytes += bytes.size();
  conn.outbox.push_back(std::move(bytes));
  conn.closing = true;
}

void EventLoop::read_ready(ConnId id, Conn& conn) {
  std::vector<std::uint8_t> chunk(options_.read_chunk);
  for (;;) {
    const IoResult r = conn.stream.read_some(chunk.data(), chunk.size());
    if (r.status == IoStatus::kWouldBlock) return;
    if (r.status == IoStatus::kClosed || r.status == IoStatus::kError) {
      close_conn(id);
      return;
    }
    {
      std::lock_guard lk(mail_mu_);
      stats_.bytes_in += r.n;
    }
    if (conn.closing) continue;  // discard input while flushing a goodbye
    try {
      conn.decoder.feed({chunk.data(), r.n});
    } catch (const FrameError& err) {
      fail_protocol(id, conn, err);
      return;
    }
    Frame frame;
    while (conn.decoder.next(frame)) {
      {
        std::lock_guard lk(mail_mu_);
        ++stats_.frames_in;
      }
      if (callbacks_.on_frame) callbacks_.on_frame(id, std::move(frame));
      if (!conns_.contains(id)) return;  // callback closed the connection
    }
    if (r.n < chunk.size()) return;  // likely drained the socket
  }
}

bool EventLoop::write_ready(ConnId id, Conn& conn) {
  while (!conn.outbox.empty()) {
    const std::vector<std::uint8_t>& front = conn.outbox.front();
    const IoResult r = conn.stream.write_some(
        front.data() + conn.outbox_offset, front.size() - conn.outbox_offset);
    if (r.status == IoStatus::kWouldBlock) return true;
    if (r.status != IoStatus::kOk) {
      close_conn(id);
      return false;
    }
    {
      std::lock_guard lk(mail_mu_);
      stats_.bytes_out += r.n;
    }
    conn.outbox_offset += r.n;
    conn.pending_bytes -= r.n;
    if (conn.outbox_offset == front.size()) {
      conn.outbox.pop_front();
      conn.outbox_offset = 0;
    }
  }
  if (conn.closing) {
    close_conn(id);
    return false;
  }
  return true;
}

void EventLoop::close_conn(ConnId id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  conns_.erase(it);
  {
    std::lock_guard lk(mail_mu_);
    live_.erase(id);
    ++stats_.closed;
  }
  if (callbacks_.on_close) callbacks_.on_close(id);
}

bool EventLoop::run_once(int timeout_ms) {
  bool paused;
  {
    std::lock_guard lk(mail_mu_);
    if (stop_requested_) return false;
    paused = accept_paused_;
  }
  drain_mailbox();

  std::vector<pollfd> fds;
  std::vector<ConnId> ids;  // parallel to fds, 0 for non-connection slots
  fds.push_back({wake_.read_fd(), POLLIN, 0});
  ids.push_back(0);
  if (listener_.valid() && !paused) {
    fds.push_back({listener_.fd(), POLLIN, 0});
    ids.push_back(0);
  }
  for (auto& [id, conn] : conns_) {
    short events = POLLIN;
    if (!conn.outbox.empty()) events |= POLLOUT;
    fds.push_back({conn.stream.fd(), events, 0});
    ids.push_back(id);
  }

  const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc < 0 && errno != EINTR) {
    throw NetError(std::string("poll: ") + std::strerror(errno));
  }
  wake_.drain();
  drain_mailbox();  // apply sends that triggered the wake before I/O

  for (std::size_t i = 0; i < fds.size(); ++i) {
    const short got = fds[i].revents;
    if (got == 0) continue;
    if (fds[i].fd == wake_.read_fd()) continue;
    if (listener_.valid() && fds[i].fd == listener_.fd()) {
      accept_ready();
      continue;
    }
    const ConnId id = ids[i];
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // closed earlier this round
    if ((got & (POLLERR | POLLNVAL)) != 0) {
      close_conn(id);
      continue;
    }
    if ((got & POLLOUT) != 0 && !write_ready(id, it->second)) continue;
    it = conns_.find(id);
    if (it == conns_.end()) continue;
    if ((got & (POLLIN | POLLHUP)) != 0) read_ready(id, it->second);
  }

  // Flush connections whose outbox was filled by the mailbox this round
  // but that did not poll writable yet (common for small responses: the
  // socket buffer is empty, write succeeds immediately).
  for (auto it = conns_.begin(); it != conns_.end();) {
    const ConnId id = it->first;
    Conn& conn = it->second;
    ++it;  // write_ready may erase this element; map iterators elsewhere stay valid
    if (!conn.outbox.empty() || conn.closing) {
      (void)write_ready(id, conn);
    }
  }

  std::lock_guard lk(mail_mu_);
  return !stop_requested_;
}

void EventLoop::run() {
  while (run_once(-1)) {
  }
}

}  // namespace exawatt::net
