#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace exawatt::net {

namespace {

/// epoll user-data tags for the two non-connection fds. ConnIds count up
/// from 1, so the top of the 64-bit space can never collide.
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};
constexpr std::uint64_t kListenerTag = ~std::uint64_t{0} - 1;

}  // namespace

bool StreamGate::acquire(std::size_t n,
                         const std::function<bool()>& cancelled) {
  if (cancelled && cancelled()) return false;
  std::unique_lock lk(mu_);
  bool paused = false;
  while (!closed_ && !fits(n)) {
    if (!paused) {
      paused = true;
      ++stats_.pauses;
    }
    // Short slices rather than a pure cv wait: the cancel token has no
    // way to notify this cv, and a cancelled request must not stay
    // parked on a gate its peer will never drain.
    cv_.wait_for(lk, std::chrono::milliseconds(5));
    if (cancelled && cancelled()) return false;
  }
  if (closed_) return false;
  if (paused) ++stats_.resumes;
  in_flight_ += n;
  stats_.peak_buffered =
      std::max(stats_.peak_buffered, std::uint64_t{in_flight_});
  return true;
}

void StreamGate::release(std::size_t n) {
  {
    std::lock_guard lk(mu_);
    in_flight_ -= std::min(n, in_flight_);
  }
  cv_.notify_all();
}

void StreamGate::close() {
  {
    std::lock_guard lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool StreamGate::closed() const {
  std::lock_guard lk(mu_);
  return closed_;
}

std::size_t StreamGate::in_flight() const {
  std::lock_guard lk(mu_);
  return in_flight_;
}

StreamGateStats StreamGate::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

EventLoop::EventLoop(TcpListener listener, Callbacks callbacks,
                     LoopOptions options)
    : listener_(std::move(listener)),
      callbacks_(std::move(callbacks)),
      options_(options) {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) {
    throw NetError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  ep_add(wake_.read_fd(), kWakeTag, /*edge=*/false);
  if (listener_.valid()) {
    ep_add(listener_.fd(), kListenerTag, /*edge=*/false);
    listener_registered_ = true;
  }
}

EventLoop::~EventLoop() {
  if (epfd_ >= 0) ::close(epfd_);
}

void EventLoop::ep_add(int fd, std::uint64_t tag, bool edge) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (edge) ev.events |= EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = tag;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw NetError(std::string("epoll_ctl add: ") + std::strerror(errno));
  }
}

void EventLoop::stop() {
  {
    std::lock_guard lk(mail_mu_);
    stop_requested_ = true;
  }
  wake_.notify();
}

bool EventLoop::send(ConnId conn, std::vector<std::uint8_t> frame_bytes,
                     bool gated) {
  {
    std::lock_guard lk(mail_mu_);
    if (!live_.contains(conn)) return false;
    mailbox_.push_back({conn, std::move(frame_bytes), gated});
  }
  wake_.notify();
  return true;
}

std::shared_ptr<StreamGate> EventLoop::gate_of(ConnId conn) const {
  std::lock_guard lk(mail_mu_);
  const auto it = live_.find(conn);
  return it == live_.end() ? nullptr : it->second;
}

void EventLoop::close_after_flush(ConnId conn) {
  {
    std::lock_guard lk(mail_mu_);
    if (!live_.contains(conn)) return;
    mailbox_.push_back({conn, {}, false});
  }
  wake_.notify();
}

void EventLoop::pause_accept() {
  {
    std::lock_guard lk(mail_mu_);
    accept_paused_ = true;
  }
  wake_.notify();
}

std::size_t EventLoop::open_connections() const {
  std::lock_guard lk(mail_mu_);
  return live_.size();
}

bool EventLoop::output_idle() const {
  {
    std::lock_guard lk(mail_mu_);
    if (!mailbox_.empty()) return false;
  }
  for (const auto& [id, conn] : conns_) {
    if (!conn.outbox.empty()) return false;
  }
  return true;
}

LoopStats EventLoop::stats() const {
  std::lock_guard lk(mail_mu_);
  LoopStats s = stats_;
  for (const auto& [id, gate] : live_) {
    const StreamGateStats gs = gate->stats();
    s.stream_pauses += gs.pauses;
    s.stream_resumes += gs.resumes;
    s.stream_peak_buffered = std::max(s.stream_peak_buffered, gs.peak_buffered);
  }
  return s;
}

void EventLoop::drain_mailbox() {
  std::vector<Mail> mail;
  {
    std::lock_guard lk(mail_mu_);
    mail.swap(mailbox_);
  }
  for (Mail& m : mail) {
    const auto it = conns_.find(m.conn);
    if (it == conns_.end()) continue;  // raced with a close; drop
    Conn& conn = it->second;
    if (m.bytes.empty()) {
      conn.closing = true;
      dirty_.push_back(m.conn);
      continue;
    }
    conn.pending_bytes += m.bytes.size();
    if (m.gated) conn.gated_pending += m.bytes.size();
    conn.outbox.push_back({std::move(m.bytes), m.gated});
    dirty_.push_back(m.conn);
    {
      std::lock_guard lk(mail_mu_);
      ++stats_.frames_out;
    }
    // Gated bytes are excluded: they are bounded by the stream gate and
    // pause their producer, so only ungated growth means the peer
    // stopped consuming faster than we are willing to buffer.
    if (conn.pending_bytes - conn.gated_pending >
        options_.max_pending_write_bytes) {
      {
        std::lock_guard lk(mail_mu_);
        ++stats_.backpressure_closes;
      }
      close_conn(it->first);
    }
  }
}

void EventLoop::flush_dirty() {
  if (dirty_.empty()) return;
  std::vector<ConnId> work;
  work.swap(dirty_);
  for (const ConnId id : work) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // closed since it was marked
    if (!it->second.outbox.empty() || it->second.closing) {
      (void)write_ready(id, it->second);
    }
  }
}

void EventLoop::accept_ready() {
  for (;;) {
    TcpStream stream = listener_.accept();
    if (!stream.valid()) return;
    const ConnId id = next_id_++;
    Conn conn;
    conn.stream = std::move(stream);
    const int fd = conn.stream.fd();
    conns_.emplace(id, std::move(conn));
    try {
      ep_add(fd, id, /*edge=*/true);
    } catch (const NetError&) {
      conns_.erase(id);  // out of epoll capacity; drop the newcomer
      continue;
    }
    {
      std::lock_guard lk(mail_mu_);
      live_.emplace(id,
                    std::make_shared<StreamGate>(options_.stream_budget_bytes));
      ++stats_.accepted;
    }
    if (callbacks_.on_open) callbacks_.on_open(id);
  }
}

void EventLoop::fail_protocol(ConnId id, Conn& conn, const FrameError& err) {
  {
    std::lock_guard lk(mail_mu_);
    ++stats_.protocol_errors;
  }
  if (callbacks_.on_protocol_error) callbacks_.on_protocol_error(id, err);
  // Best-effort goodbye so a buggy (rather than hostile) client learns
  // why it was cut off; then close once it flushes.
  const std::string reason = err.what();
  auto bytes = encode_frame(
      FrameType::kGoodbye, 0,
      {reinterpret_cast<const std::uint8_t*>(reason.data()), reason.size()});
  conn.pending_bytes += bytes.size();
  conn.outbox.push_back({std::move(bytes), false});
  conn.closing = true;
  dirty_.push_back(id);
}

void EventLoop::read_ready(ConnId id, Conn& conn, bool hangup) {
  std::vector<std::uint8_t> chunk(options_.read_chunk);
  for (;;) {
    const IoResult r = conn.stream.read_some(chunk.data(), chunk.size());
    if (r.status == IoStatus::kWouldBlock) return;
    if (r.status == IoStatus::kClosed || r.status == IoStatus::kError) {
      close_conn(id);
      return;
    }
    {
      std::lock_guard lk(mail_mu_);
      stats_.bytes_in += r.n;
    }
    if (conn.closing) continue;  // discard input while flushing a goodbye
    try {
      conn.decoder.feed({chunk.data(), r.n});
    } catch (const FrameError& err) {
      fail_protocol(id, conn, err);
      return;
    }
    Frame frame;
    while (conn.decoder.next(frame)) {
      {
        std::lock_guard lk(mail_mu_);
        ++stats_.frames_in;
      }
      if (callbacks_.on_frame) callbacks_.on_frame(id, std::move(frame));
      if (!conns_.contains(id)) return;  // callback closed the connection
    }
    // A short read proves the socket buffer was emptied at that instant,
    // which is enough for edge-triggered correctness: any byte arriving
    // after it re-arms the EPOLLIN edge. EXCEPT after a hangup — the
    // peer's close was edge-signalled together with its final bytes and
    // will never fire again, so the EOF must be read out right now.
    if (r.n < chunk.size() && !hangup) return;
  }
}

bool EventLoop::write_ready(ConnId id, Conn& conn) {
  while (!conn.outbox.empty()) {
    Out& front = conn.outbox.front();
    const IoResult r =
        conn.stream.write_some(front.bytes.data() + conn.outbox_offset,
                               front.bytes.size() - conn.outbox_offset);
    if (r.status == IoStatus::kWouldBlock) return true;
    if (r.status != IoStatus::kOk) {
      close_conn(id);
      return false;
    }
    {
      std::lock_guard lk(mail_mu_);
      stats_.bytes_out += r.n;
    }
    conn.outbox_offset += r.n;
    conn.pending_bytes -= r.n;
    if (front.gated) {
      conn.gated_pending -= std::min(r.n, conn.gated_pending);
      if (const auto gate = gate_of(id)) gate->release(r.n);
    }
    if (conn.outbox_offset == front.bytes.size()) {
      conn.outbox.pop_front();
      conn.outbox_offset = 0;
    }
  }
  if (conn.closing) {
    close_conn(id);
    return false;
  }
  return true;
}

void EventLoop::close_conn(ConnId id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, it->second.stream.fd(), nullptr);
  conns_.erase(it);
  std::shared_ptr<StreamGate> gate;
  {
    std::lock_guard lk(mail_mu_);
    const auto lit = live_.find(id);
    if (lit != live_.end()) {
      gate = std::move(lit->second);
      live_.erase(lit);
    }
    if (gate) {
      // Fold the dying gate's counters into the loop totals so stats()
      // never loses pauses to a connection churn race.
      const StreamGateStats gs = gate->stats();
      stats_.stream_pauses += gs.pauses;
      stats_.stream_resumes += gs.resumes;
      stats_.stream_peak_buffered =
          std::max(stats_.stream_peak_buffered, gs.peak_buffered);
    }
    ++stats_.closed;
  }
  if (gate) gate->close();  // frees any producer paused on this peer
  if (callbacks_.on_close) callbacks_.on_close(id);
}

bool EventLoop::run_once(int timeout_ms) {
  bool paused;
  {
    std::lock_guard lk(mail_mu_);
    if (stop_requested_) return false;
    paused = accept_paused_;
  }
  if (paused && listener_registered_) {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
    listener_registered_ = false;
  }
  drain_mailbox();
  flush_dirty();  // never sleep on output that could be written right now

  std::array<epoll_event, 128> events;
  const int rc = ::epoll_wait(epfd_, events.data(),
                              static_cast<int>(events.size()), timeout_ms);
  if (rc < 0 && errno != EINTR) {
    throw NetError(std::string("epoll_wait: ") + std::strerror(errno));
  }
  wake_.drain();
  drain_mailbox();  // apply sends that triggered the wake before I/O
  flush_dirty();

  for (int i = 0; i < std::max(rc, 0); ++i) {
    const std::uint64_t tag = events[static_cast<std::size_t>(i)].data.u64;
    const std::uint32_t got = events[static_cast<std::size_t>(i)].events;
    if (tag == kWakeTag) continue;
    if (tag == kListenerTag) {
      if (listener_registered_) accept_ready();
      continue;
    }
    const ConnId id = tag;
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // closed earlier this round
    if ((got & EPOLLERR) != 0) {
      close_conn(id);
      continue;
    }
    if ((got & EPOLLOUT) != 0 && !write_ready(id, it->second)) continue;
    it = conns_.find(id);
    if (it == conns_.end()) continue;
    if ((got & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
      read_ready(id, it->second, (got & (EPOLLRDHUP | EPOLLHUP)) != 0);
    }
  }

  // Flush output queued by on_frame callbacks during this round's reads.
  drain_mailbox();
  flush_dirty();

  std::lock_guard lk(mail_mu_);
  return !stop_requested_;
}

void EventLoop::run() {
  while (run_once(-1)) {
  }
}

}  // namespace exawatt::net
