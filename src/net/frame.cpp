#include "net/frame.hpp"

#include <bit>
#include <cstring>

#include "util/check.hpp"
#include "util/crc32.hpp"

namespace exawatt::net {

namespace {

void put_u16(std::uint16_t v, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::uint32_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::uint64_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
    case FrameType::kTick: return "tick";
    case FrameType::kGoodbye: return "goodbye";
  }
  return "unknown";
}

const char* frame_fault_name(FrameFault fault) {
  switch (fault) {
    case FrameFault::kBadMagic: return "bad frame magic";
    case FrameFault::kBadVersion: return "unsupported protocol version";
    case FrameFault::kBadType: return "unknown frame type";
    case FrameFault::kBadReserved: return "undefined flag bits set";
    case FrameFault::kOversized: return "payload length over limit";
    case FrameFault::kBadCrc: return "payload CRC mismatch";
    case FrameFault::kBadChunkFlags: return "invalid chunk flags";
    case FrameFault::kChunkInterleaved: return "chunk stream interleaved";
    case FrameFault::kChunkTruncated: return "chunk stream truncated";
    case FrameFault::kChunkOversized: return "assembled stream over limit";
  }
  return "frame fault";
}

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::uint64_t request_id,
                                       std::span<const std::uint8_t> payload) {
  return encode_frame(type, request_id, payload, 0);
}

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::uint64_t request_id,
                                       std::span<const std::uint8_t> payload,
                                       std::uint16_t flags) {
  EXA_CHECK(payload.size() <= kMaxPayload, "frame payload over limit");
  EXA_CHECK((flags & ~kFrameFlagMask) == 0, "undefined frame flags");
  EXA_CHECK(flags == 0 || type == FrameType::kResponse,
            "chunk flags on a non-response frame");
  EXA_CHECK(std::popcount(flags) <= 1, "conflicting chunk flags");
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.insert(out.end(), std::begin(kFrameMagic), std::end(kFrameMagic));
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(flags, out);
  put_u64(request_id, out);
  put_u32(static_cast<std::uint32_t>(payload.size()), out);
  put_u32(util::crc32(payload), out);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameDecoder::validate_header() {
  const std::uint8_t* h = buf_.data();
  if (std::memcmp(h, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    throw FrameError(FrameFault::kBadMagic, "");
  }
  if (h[4] != kProtocolVersion) {
    throw FrameError(FrameFault::kBadVersion,
                     "got " + std::to_string(int{h[4]}));
  }
  const std::uint8_t type = h[5];
  if (type < static_cast<std::uint8_t>(FrameType::kRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kGoodbye)) {
    throw FrameError(FrameFault::kBadType, "got " + std::to_string(int{type}));
  }
  const std::uint16_t flags = get_u16(h + 6);
  if ((flags & ~kFrameFlagMask) != 0) {
    throw FrameError(FrameFault::kBadReserved, "");
  }
  if (flags != 0 && (static_cast<FrameType>(type) != FrameType::kResponse ||
                     std::popcount(flags) != 1)) {
    throw FrameError(FrameFault::kBadChunkFlags,
                     "flags " + std::to_string(flags) + " on " +
                         frame_type_name(static_cast<FrameType>(type)));
  }
  flags_ = flags;
  request_id_ = get_u64(h + 8);
  payload_len_ = get_u32(h + 16);
  payload_crc_ = get_u32(h + 20);
  if (payload_len_ > kMaxPayload) {
    throw FrameError(FrameFault::kOversized,
                     std::to_string(payload_len_) + " bytes");
  }
  type_ = static_cast<FrameType>(type);
  header_valid_ = true;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  EXA_CHECK(!poisoned_, "frame decoder used after a protocol violation");
  std::size_t i = 0;
  const auto take_into = [&](std::size_t target) {
    const std::size_t take = std::min(target - buf_.size(), bytes.size() - i);
    buf_.insert(buf_.end(), bytes.begin() + static_cast<std::ptrdiff_t>(i),
                bytes.begin() + static_cast<std::ptrdiff_t>(i + take));
    i += take;
    return buf_.size() == target;
  };
  try {
    for (;;) {
      if (!header_valid_) {
        if (!take_into(kFrameHeaderBytes)) break;
        validate_header();
        // Payload buffering is sized only after the header validated, so
        // a hostile length can never drive the allocation below.
        buf_.clear();
        buf_.reserve(payload_len_);
      }
      if (!take_into(payload_len_)) break;
      if (util::crc32(buf_) != payload_crc_) {
        throw FrameError(FrameFault::kBadCrc, "");
      }
      Frame frame;
      frame.type = type_;
      frame.request_id = request_id_;
      frame.flags = flags_;
      frame.payload = std::move(buf_);
      ready_bytes_ += frame.payload.size() + kFrameHeaderBytes;
      ready_.push_back(std::move(frame));
      buf_ = {};
      header_valid_ = false;
    }
  } catch (const FrameError&) {
    poisoned_ = true;
    throw;
  }
}

bool FrameDecoder::next(Frame& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  ready_bytes_ -= out.payload.size() + kFrameHeaderBytes;
  return true;
}

std::size_t FrameDecoder::buffered_bytes() const {
  return buf_.size() + ready_bytes_;
}

bool ChunkAssembler::feed(Frame& frame) {
  if (frame.flags == 0) {
    // Ticks and responses for *other* requests may legally interleave
    // with an open chunk stream (the server's per-connection mailbox
    // orders frames from many in-flight requests). A flag-less response
    // for the stream's own id, though, means its kFinal is never coming.
    if (open_ && frame.type == FrameType::kResponse &&
        frame.request_id == stream_id_) {
      throw FrameError(FrameFault::kChunkTruncated,
                       "unchunked response closed an open chunk stream");
    }
    return true;
  }
  // Decoder validation guarantees: kResponse, exactly one flag set.
  if (open_ && frame.request_id != stream_id_) {
    throw FrameError(FrameFault::kChunkInterleaved,
                     "request " + std::to_string(frame.request_id) +
                         " inside stream " + std::to_string(stream_id_));
  }
  if (frame.flags == kFrameFlagAbort) {
    // The abort payload is a complete error response replacing every
    // fragment streamed so far.
    buf_.clear();
    open_ = false;
    frame.flags = 0;
    return true;
  }
  if (!open_) {
    open_ = true;
    stream_id_ = frame.request_id;
    buf_.clear();
  }
  if (buf_.size() + frame.payload.size() > max_bytes_) {
    throw FrameError(FrameFault::kChunkOversized,
                     std::to_string(buf_.size() + frame.payload.size()) +
                         " bytes assembled");
  }
  buf_.insert(buf_.end(), frame.payload.begin(), frame.payload.end());
  if (frame.flags == kFrameFlagChunk) return false;
  // kFrameFlagFinal: hand the reassembled logical response back.
  frame.payload = std::move(buf_);
  frame.flags = 0;
  buf_ = {};
  open_ = false;
  return true;
}

void ChunkAssembler::finish() const {
  if (open_) {
    throw FrameError(FrameFault::kChunkTruncated,
                     "connection ended inside a chunk stream");
  }
}

}  // namespace exawatt::net
