#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace exawatt::net {

/// Stable identity of one accepted connection (never reused within a
/// loop's lifetime, so a late completion can't address a new peer).
using ConnId = std::uint64_t;

struct LoopOptions {
  /// A connection whose unsent *ungated* outbound queue exceeds this is
  /// closed: the consumer stopped reading (or is reading adversarially
  /// slowly) and unbounded buffering is the real denial-of-service.
  /// Gated (streamed) bytes are excluded — they are bounded by
  /// `stream_budget_bytes` and pause their producer instead.
  std::size_t max_pending_write_bytes = std::size_t{64} << 20;
  /// Read chunk per readiness event.
  std::size_t read_chunk = 64 << 10;
  /// Per-connection in-flight budget for *gated* sends (chunked stream
  /// frames). A producer that would exceed it blocks in
  /// StreamGate::acquire until the peer drains — backpressure pauses the
  /// scan, it never closes the connection.
  std::size_t stream_budget_bytes = std::size_t{4} << 20;
};

/// Counters of one stream gate (and, folded, of the whole loop).
struct StreamGateStats {
  std::uint64_t pauses = 0;   ///< producer blocked on a full budget
  std::uint64_t resumes = 0;  ///< producer unblocked by the peer draining
  std::uint64_t peak_buffered = 0;  ///< max in-flight gated bytes observed
};

/// Lifetime counters of one loop (loop thread reads/writes; `stats()`
/// is safe from other threads).
struct LoopStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t backpressure_closes = 0;
  std::uint64_t stream_pauses = 0;
  std::uint64_t stream_resumes = 0;
  std::uint64_t stream_peak_buffered = 0;
};

/// Per-connection in-flight-bytes budget for streamed responses. The
/// producing worker calls `acquire()` before every chunk it hands to
/// `EventLoop::send(..., gated=true)`; the loop thread `release()`s as
/// those bytes reach the socket. When the peer stops draining, acquire
/// blocks — the scan pauses exactly where it stands — and wakes either
/// when capacity frees (a resume), when the connection dies (`close()`),
/// or when the request's cancel token fires.
class StreamGate {
 public:
  explicit StreamGate(std::size_t budget) : budget_(budget) {}

  /// Block until `n` more bytes fit under the budget. Polls `cancelled`
  /// (may be null) in short slices so a cancelled request never stays
  /// parked on a full gate. False when the gate closed or the request
  /// was cancelled — the producer must stop streaming.
  [[nodiscard]] bool acquire(std::size_t n,
                             const std::function<bool()>& cancelled);

  /// Loop thread: `n` gated bytes reached the socket.
  void release(std::size_t n);

  /// Connection gone: unblock every paused producer with failure.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] StreamGateStats stats() const;

 private:
  // A producer whose single chunk exceeds the whole budget must still
  // make progress, so an empty gate admits any size.
  [[nodiscard]] bool fits(std::size_t n) const {
    return in_flight_ == 0 || in_flight_ + n <= budget_;
  }

  const std::size_t budget_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t in_flight_ = 0;
  bool closed_ = false;
  StreamGateStats stats_;
};

/// epoll(7)-driven single-threaded reactor over one listener: accepts
/// connections, decodes frames with the adversarial-input FrameDecoder,
/// and writes queued responses with backpressure. Connections are
/// registered edge-triggered (EPOLLIN|EPOLLOUT|EPOLLET|EPOLLRDHUP) once
/// at accept, so a wakeup costs O(ready) rather than the old poll(2)
/// loop's O(connections) pollfd rebuild; newly queued output is flushed
/// eagerly off a dirty list and the EPOLLOUT edge takes over only when
/// the socket buffer actually fills. Worker threads hand finished
/// responses back with `send()`, which is thread-safe and wakes the
/// reactor through a self-pipe; everything else runs on the loop thread.
class EventLoop {
 public:
  struct Callbacks {
    /// A validated frame arrived. Runs on the loop thread — hand real
    /// work to a pool and return.
    std::function<void(ConnId, Frame&&)> on_frame;
    /// Framing violated: a goodbye frame with the fault text has already
    /// been queued; the connection closes once it flushes.
    std::function<void(ConnId, const FrameError&)> on_protocol_error;
    std::function<void(ConnId)> on_open;
    /// Fires exactly once per accepted connection, on the loop thread —
    /// the cancellation hook for in-flight work of that peer.
    std::function<void(ConnId)> on_close;
  };

  EventLoop(TcpListener listener, Callbacks callbacks, LoopOptions options = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// One epoll_wait + dispatch round; `timeout_ms < 0` blocks until
  /// activity. Returns false once `stop()` has been consumed.
  bool run_once(int timeout_ms);
  /// run_once until stop().
  void run();

  /// Thread-safe: request the loop to exit its run()/run_once cycle.
  void stop();

  /// Thread-safe: queue an already-encoded frame for `conn`. Returns
  /// false when the connection is gone (the bytes are dropped — the
  /// caller's cancel token fires via on_close, never silently for a live
  /// peer). Wakes the reactor. `gated` marks bytes whose budget the
  /// sender already acquired from the connection's StreamGate; the loop
  /// releases that budget as they reach the socket, and they are exempt
  /// from the max_pending_write_bytes kill.
  bool send(ConnId conn, std::vector<std::uint8_t> frame_bytes,
            bool gated = false);

  /// Thread-safe: the stream gate of a live connection (nullptr once it
  /// closed). Producers must re-check acquire()'s result, not liveness.
  [[nodiscard]] std::shared_ptr<StreamGate> gate_of(ConnId conn) const;

  /// Thread-safe: close `conn` after flushing everything queued so far.
  void close_after_flush(ConnId conn);

  /// Stop accepting new connections (drain mode); existing ones live on.
  void pause_accept();

  /// Loop-thread only: true when nothing is waiting to be written — the
  /// cross-thread mailbox is empty and every connection outbox flushed.
  /// Drain sequences spin run_once until this holds.
  [[nodiscard]] bool output_idle() const;

  [[nodiscard]] std::uint16_t port() const { return listener_.local_port(); }
  [[nodiscard]] std::size_t open_connections() const;
  [[nodiscard]] LoopStats stats() const;

 private:
  struct Out {
    std::vector<std::uint8_t> bytes;
    bool gated = false;
  };
  struct Conn {
    TcpStream stream;
    FrameDecoder decoder;
    std::deque<Out> outbox;         ///< loop-thread owned
    std::size_t outbox_offset = 0;  ///< sent bytes of outbox.front()
    std::size_t pending_bytes = 0;
    std::size_t gated_pending = 0;  ///< pending bytes under the gate
    bool closing = false;           ///< close once the outbox flushes
  };

  void ep_add(int fd, std::uint64_t tag, bool edge);
  void accept_ready();
  void read_ready(ConnId id, Conn& conn, bool hangup);
  bool write_ready(ConnId id, Conn& conn);  ///< false when conn was closed
  void fail_protocol(ConnId id, Conn& conn, const FrameError& err);
  void close_conn(ConnId id);
  void drain_mailbox();
  /// Attempt an immediate flush of every connection whose outbox gained
  /// bytes since the last flush (edge-triggered EPOLLOUT only fires on a
  /// full->writable transition, so fresh output must be pushed eagerly).
  void flush_dirty();

  TcpListener listener_;
  Callbacks callbacks_;
  LoopOptions options_;
  WakePipe wake_;
  int epfd_ = -1;
  bool listener_registered_ = false;
  std::map<ConnId, Conn> conns_;  ///< loop thread only
  std::vector<ConnId> dirty_;     ///< loop thread only; may hold dupes
  ConnId next_id_ = 1;

  /// Cross-thread state: the mailbox (send()/close_after_flush() land
  /// here, the loop thread applies them after each wake), the live
  /// connection map mirroring conns_ (value = that connection's stream
  /// gate), stats, and the stop/pause flags.
  mutable std::mutex mail_mu_;
  struct Mail {
    ConnId conn = 0;
    std::vector<std::uint8_t> bytes;  ///< empty => close_after_flush
    bool gated = false;
  };
  std::vector<Mail> mailbox_;
  std::unordered_map<ConnId, std::shared_ptr<StreamGate>> live_;
  bool stop_requested_ = false;
  bool accept_paused_ = false;
  LoopStats stats_;  ///< gate counters folded in at close; stats() adds live gates
};

}  // namespace exawatt::net
