#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace exawatt::net {

/// Stable identity of one accepted connection (never reused within a
/// loop's lifetime, so a late completion can't address a new peer).
using ConnId = std::uint64_t;

struct LoopOptions {
  /// A connection whose unsent outbound queue exceeds this is closed:
  /// the consumer stopped reading (or is reading adversarially slowly)
  /// and unbounded buffering is the real denial-of-service.
  std::size_t max_pending_write_bytes = std::size_t{64} << 20;
  /// Read chunk per readiness event.
  std::size_t read_chunk = 64 << 10;
};

/// Lifetime counters of one loop (loop thread reads/writes; `snapshot`
/// is safe from other threads).
struct LoopStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t backpressure_closes = 0;
};

/// poll(2)-driven single-threaded reactor over one listener: accepts
/// connections, decodes frames with the adversarial-input FrameDecoder,
/// and writes queued responses with backpressure (POLLOUT only while a
/// connection has pending bytes). Worker threads hand finished responses
/// back with `send()`, which is thread-safe and wakes the poller through
/// a self-pipe; everything else runs on the loop thread.
class EventLoop {
 public:
  struct Callbacks {
    /// A validated frame arrived. Runs on the loop thread — hand real
    /// work to a pool and return.
    std::function<void(ConnId, Frame&&)> on_frame;
    /// Framing violated: a goodbye frame with the fault text has already
    /// been queued; the connection closes once it flushes (or next poll).
    std::function<void(ConnId, const FrameError&)> on_protocol_error;
    std::function<void(ConnId)> on_open;
    /// Fires exactly once per accepted connection, on the loop thread —
    /// the cancellation hook for in-flight work of that peer.
    std::function<void(ConnId)> on_close;
  };

  EventLoop(TcpListener listener, Callbacks callbacks, LoopOptions options = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// One poll + dispatch round; `timeout_ms < 0` blocks until activity.
  /// Returns false once `stop()` has been consumed (loop should exit).
  bool run_once(int timeout_ms);
  /// run_once until stop().
  void run();

  /// Thread-safe: request the loop to exit its run()/run_once cycle.
  void stop();

  /// Thread-safe: queue an already-encoded frame for `conn`. Returns
  /// false when the connection is gone (the bytes are dropped — the
  /// caller's cancel token fires via on_close, never silently for a live
  /// peer). Wakes the poller.
  bool send(ConnId conn, std::vector<std::uint8_t> frame_bytes);

  /// Thread-safe: close `conn` after flushing everything queued so far.
  void close_after_flush(ConnId conn);

  /// Stop accepting new connections (drain mode); existing ones live on.
  void pause_accept();

  /// Loop-thread only: true when nothing is waiting to be written — the
  /// cross-thread mailbox is empty and every connection outbox flushed.
  /// Drain sequences spin run_once until this holds.
  [[nodiscard]] bool output_idle() const;

  [[nodiscard]] std::uint16_t port() const { return listener_.local_port(); }
  [[nodiscard]] std::size_t open_connections() const;
  [[nodiscard]] LoopStats stats() const;

 private:
  struct Conn {
    TcpStream stream;
    FrameDecoder decoder;
    std::deque<std::vector<std::uint8_t>> outbox;  ///< loop-thread owned
    std::size_t outbox_offset = 0;  ///< sent bytes of outbox.front()
    std::size_t pending_bytes = 0;
    bool closing = false;  ///< close once the outbox flushes
  };

  void accept_ready();
  void read_ready(ConnId id, Conn& conn);
  bool write_ready(ConnId id, Conn& conn);  ///< false when conn was closed
  void fail_protocol(ConnId id, Conn& conn, const FrameError& err);
  void close_conn(ConnId id);
  void drain_mailbox();

  TcpListener listener_;
  Callbacks callbacks_;
  LoopOptions options_;
  WakePipe wake_;
  std::map<ConnId, Conn> conns_;  ///< loop thread only
  ConnId next_id_ = 1;

  /// Cross-thread state: the mailbox (send()/close_after_flush() land
  /// here, the loop thread applies them after each poll wake), the live
  /// connection set mirroring conns_, stats, and the stop/pause flags.
  mutable std::mutex mail_mu_;
  struct Mail {
    ConnId conn = 0;
    std::vector<std::uint8_t> bytes;  ///< empty => close_after_flush
  };
  std::vector<Mail> mailbox_;
  std::unordered_set<ConnId> live_;
  bool stop_requested_ = false;
  bool accept_paused_ = false;
  LoopStats stats_;
};

}  // namespace exawatt::net
