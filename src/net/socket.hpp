#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace exawatt::net {

/// Transport-layer error: failed syscalls, refused connections, timeouts.
/// Protocol-level damage (bad magic, CRC mismatch) is FrameError instead —
/// the two are handled differently: transport errors close the peer,
/// protocol errors are answered first.
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// RAII file descriptor. Move-only; closes on destruction. The base of
/// every socket/pipe wrapper in src/net so no error path can leak an fd.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Release ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

/// Result of one non-blocking read/write attempt.
enum class IoStatus : std::uint8_t {
  kOk,          ///< progress was made (`n` bytes)
  kWouldBlock,  ///< no progress now; retry after poll readiness
  kClosed,      ///< orderly peer shutdown (reads only)
  kError,       ///< connection-fatal errno (reset, broken pipe, ...)
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t n = 0;
};

/// A connected TCP stream in non-blocking mode (TCP_NODELAY set: the
/// request/response protocol is latency-bound, not throughput-bound).
class TcpStream {
 public:
  TcpStream() = default;
  /// Adopt an accepted fd (switches it to non-blocking).
  explicit TcpStream(Fd fd);

  /// Blocking connect with timeout, then switch to non-blocking.
  /// Throws NetError on failure or timeout.
  [[nodiscard]] static TcpStream connect(const std::string& host,
                                         std::uint16_t port,
                                         int timeout_ms);

  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] bool valid() const { return fd_.valid(); }

  /// One recv(2) attempt into `buf`; never blocks.
  [[nodiscard]] IoResult read_some(std::uint8_t* buf, std::size_t len);
  /// One send(2) attempt; never blocks, may write a prefix.
  [[nodiscard]] IoResult write_some(const std::uint8_t* buf, std::size_t len);

  /// Wait for readability/writability; true when ready, false on timeout.
  /// `timeout_ms < 0` waits forever. Throws NetError on poll failure.
  [[nodiscard]] bool wait_readable(int timeout_ms);
  [[nodiscard]] bool wait_writable(int timeout_ms);

  /// Send everything or throw NetError; `deadline_poll_ms` bounds each
  /// internal poll wait (the sync client's per-request timeout).
  void write_all(const std::uint8_t* buf, std::size_t len,
                 int deadline_poll_ms);

  void shutdown_write();
  void close() { fd_.reset(); }

 private:
  Fd fd_;
};

/// A listening TCP socket bound to 127.0.0.1 (or all interfaces) with
/// SO_REUSEADDR; `port == 0` binds an ephemeral port — `local_port()`
/// reports the kernel's choice, which is how tests and benches avoid
/// port collisions.
class TcpListener {
 public:
  TcpListener() = default;
  [[nodiscard]] static TcpListener bind(std::uint16_t port,
                                        bool loopback_only = true,
                                        int backlog = 128);

  [[nodiscard]] int fd() const { return fd_.get(); }
  [[nodiscard]] bool valid() const { return fd_.valid(); }
  [[nodiscard]] std::uint16_t local_port() const { return port_; }

  /// Accept one pending connection; invalid stream when none is pending
  /// (the listener is non-blocking). Throws NetError on fatal failure.
  [[nodiscard]] TcpStream accept();

  void close() { fd_.reset(); }

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// A non-blocking self-pipe: worker threads write a byte to wake the
/// poll loop out of its wait. Writes from any thread are async-safe.
class WakePipe {
 public:
  WakePipe();

  [[nodiscard]] int read_fd() const { return read_.get(); }
  /// Wake the poller; coalesces (a full pipe is already a wakeup).
  void notify();
  /// Drain pending wakeups (loop thread only).
  void drain();

 private:
  Fd read_;
  Fd write_;
};

}  // namespace exawatt::net
