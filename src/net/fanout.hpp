#pragma once

#include <cstddef>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace exawatt::net {

/// One task's outcome from fan_out: either `value` or `error`.
template <typename R>
struct FanResult {
  bool ok = false;
  R value{};
  std::string error;
};

/// Run `fn(0..n-1)` concurrently, one dedicated thread per task, and
/// collect every outcome. Exceptions become per-task errors instead of
/// propagating — a scatter over N shards must report each shard's fate
/// independently, not die on the first broken link.
///
/// Dedicated threads, deliberately not the shared util::ThreadPool: the
/// tasks block on socket I/O (connect / read with timeouts), and parking
/// blocked work on the pool would starve — or, when the coordinator
/// itself executes on that pool, deadlock — the compute it exists for.
/// N is the shard count (single digits), so thread spawn cost is noise
/// next to a network round trip.
template <typename Fn>
auto fan_out(std::size_t n, Fn&& fn)
    -> std::vector<FanResult<decltype(fn(std::size_t{0}))>> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<FanResult<R>> results(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads.emplace_back([i, &fn, &results] {
      try {
        results[i].value = fn(i);
        results[i].ok = true;
      } catch (const std::exception& e) {
        results[i].error = e.what();
      } catch (...) {
        results[i].error = "unknown error";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return results;
}

}  // namespace exawatt::net
