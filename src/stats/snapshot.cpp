#include "stats/snapshot.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/welford.hpp"

namespace exawatt::stats {

SnapshotBand superimpose(const std::vector<std::vector<double>>& snapshots) {
  SnapshotBand band;
  if (snapshots.empty()) return band;
  const std::size_t len = snapshots[0].size();
  for (const auto& s : snapshots) {
    EXA_CHECK(s.size() == len, "snapshots must share one aligned length");
  }
  band.snapshots = snapshots.size();
  band.mean.resize(len);
  band.lo.resize(len);
  band.hi.resize(len);
  for (std::size_t i = 0; i < len; ++i) {
    util::Welford acc;
    for (const auto& s : snapshots) {
      if (!std::isnan(s[i])) acc.add(s[i]);
    }
    const double m = acc.mean();
    const double se =
        acc.count() > 1
            ? acc.sample_stddev() / std::sqrt(static_cast<double>(acc.count()))
            : 0.0;
    band.mean[i] = m;
    band.lo[i] = m - 1.96 * se;
    band.hi[i] = m + 1.96 * se;
  }
  return band;
}

}  // namespace exawatt::stats
