#include "stats/correlation.hpp"

#include <cmath>

#include "stats/special.hpp"
#include "util/check.hpp"

namespace exawatt::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  EXA_CHECK(x.size() == y.size(), "pearson needs equal-length vectors");
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  double r = sxy / std::sqrt(sxx * syy);
  if (r > 1.0) r = 1.0;
  if (r < -1.0) r = -1.0;
  return r;
}

CorrelationMatrix::CorrelationMatrix(
    const std::vector<std::vector<double>>& vectors, double alpha)
    : k_(vectors.size()) {
  EXA_CHECK(k_ >= 2, "correlation matrix needs at least two variables");
  EXA_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  const std::size_t n = vectors[0].size();
  for (const auto& v : vectors) {
    EXA_CHECK(v.size() == n, "all variables must share one length");
  }
  const std::size_t pairs = k_ * (k_ - 1) / 2;
  adjusted_alpha_ = alpha / static_cast<double>(pairs);
  cells_.resize(k_ * k_);
  for (std::size_t i = 0; i < k_; ++i) {
    cells_[i * k_ + i] = {1.0, 0.0, true};
    for (std::size_t j = i + 1; j < k_; ++j) {
      CorrelationCell c;
      c.r = pearson(vectors[i], vectors[j]);
      c.p = pearson_p_value(c.r, n);
      c.significant = c.p < adjusted_alpha_;
      cells_[i * k_ + j] = c;
      cells_[j * k_ + i] = c;
    }
  }
}

std::size_t CorrelationMatrix::significant_pairs() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = i + 1; j < k_; ++j) {
      if (at(i, j).significant) ++count;
    }
  }
  return count;
}

}  // namespace exawatt::stats
