#pragma once

#include <complex>
#include <span>
#include <vector>

namespace exawatt::stats {

/// FFT machinery for the paper's power-spectrum analysis (Figure 10):
/// per-job power series are differenced (to de-trend the auto-correlated
/// signal) and transformed; the dominant amplitude and its frequency are
/// collected per job.

/// In-place iterative radix-2 Cooley-Tukey; size must be a power of two.
void fft_radix2(std::vector<std::complex<double>>& a, bool inverse);

/// Arbitrary-size DFT via Bluestein's chirp-z algorithm (used when a job's
/// sample count is not a power of two — i.e., almost always).
[[nodiscard]] std::vector<std::complex<double>> fft_any(
    std::span<const std::complex<double>> input, bool inverse = false);

/// Forward DFT of a real signal; returns the full complex spectrum.
[[nodiscard]] std::vector<std::complex<double>> fft_real(
    std::span<const double> input);

/// Dominant (frequency, amplitude) of a real signal sampled every
/// `dt_seconds`: the non-DC bin with the largest magnitude over the
/// positive half-spectrum. Amplitude is scaled to signal units (2|X_k|/N).
struct DominantFrequency {
  double frequency_hz = 0.0;
  double amplitude = 0.0;
};
[[nodiscard]] DominantFrequency dominant_frequency(std::span<const double> x,
                                                   double dt_seconds);

}  // namespace exawatt::stats
