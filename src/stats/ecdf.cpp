#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace exawatt::stats {

Ecdf::Ecdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(std::distance(sorted_.begin(), it)) /
         static_cast<double>(sorted_.size());
}

double Ecdf::percentile(double p) const {
  EXA_CHECK(!sorted_.empty(), "percentile of empty ECDF");
  EXA_CHECK(p >= 0.0 && p <= 1.0, "percentile p must be in [0,1]");
  if (p <= 0.0) return sorted_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

std::vector<Ecdf::Point> Ecdf::grid(std::size_t points) const {
  std::vector<Point> out;
  if (sorted_.empty() || points == 0) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? hi
                    : lo + (hi - lo) * static_cast<double>(i) /
                          static_cast<double>(points - 1);
    out.push_back({x, (*this)(x)});
  }
  return out;
}

}  // namespace exawatt::stats
