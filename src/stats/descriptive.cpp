#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace exawatt::stats {

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double s = 0.0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size());
}

double sample_variance(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  return variance(x) * static_cast<double>(x.size()) /
         static_cast<double>(x.size() - 1);
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double min_value(std::span<const double> x) {
  EXA_CHECK(!x.empty(), "min of empty span");
  return *std::min_element(x.begin(), x.end());
}

double max_value(std::span<const double> x) {
  EXA_CHECK(!x.empty(), "max of empty span");
  return *std::max_element(x.begin(), x.end());
}

double sum(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v;
  return s;
}

double quantile_sorted(std::span<const double> sorted, double q) {
  EXA_CHECK(!sorted.empty(), "quantile of empty span");
  EXA_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double quantile(std::span<const double> x, double q) {
  std::vector<double> copy(x.begin(), x.end());
  std::sort(copy.begin(), copy.end());
  return quantile_sorted(copy, q);
}

double median(std::span<const double> x) { return quantile(x, 0.5); }

double skewness(std::span<const double> x) {
  if (x.size() < 3) return 0.0;
  const double m = mean(x);
  double m2 = 0.0;
  double m3 = 0.0;
  for (double v : x) {
    const double d = v - m;
    m2 += d * d;
    m3 += d * d * d;
  }
  const auto n = static_cast<double>(x.size());
  m2 /= n;
  m3 /= n;
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

BoxplotStats boxplot(std::span<const double> x) {
  EXA_CHECK(!x.empty(), "boxplot of empty span");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  BoxplotStats b;
  b.n = sorted.size();
  b.q1 = quantile_sorted(sorted, 0.25);
  b.median = quantile_sorted(sorted, 0.5);
  b.q3 = quantile_sorted(sorted, 0.75);
  const double lo_fence = b.q1 - 1.5 * b.iqr();
  const double hi_fence = b.q3 + 1.5 * b.iqr();
  b.whisker_lo = sorted.back();
  b.whisker_hi = sorted.front();
  for (double v : sorted) {
    if (v < lo_fence || v > hi_fence) {
      ++b.outliers;
    } else {
      b.whisker_lo = std::min(b.whisker_lo, v);
      b.whisker_hi = std::max(b.whisker_hi, v);
    }
  }
  if (b.outliers == b.n) {  // degenerate: everything flagged
    b.whisker_lo = sorted.front();
    b.whisker_hi = sorted.back();
  }
  return b;
}

std::vector<double> zscores(std::span<const double> x) {
  std::vector<double> z(x.size(), 0.0);
  if (x.size() < 2) return z;
  const double m = mean(x);
  const double s = std::sqrt(sample_variance(x));
  if (s <= 0.0) return z;
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = (x[i] - m) / s;
  return z;
}

double zscore(double value, double mu, double sigma) {
  return sigma > 0.0 ? (value - mu) / sigma : 0.0;
}

}  // namespace exawatt::stats
