#pragma once

#include <cstddef>

namespace exawatt::stats {

/// Special functions needed for significance testing — implemented from
/// scratch (Numerical-Recipes-style continued fractions) so the library
/// carries no external math dependency.

/// Regularized incomplete beta function I_x(a, b), x in [0, 1].
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// Two-sided p-value of Student's t with `df` degrees of freedom.
[[nodiscard]] double t_sf_two_sided(double t, double df);

/// Two-sided p-value for a Pearson correlation r over n samples
/// (t-test with n-2 degrees of freedom; matches scipy.stats.pearsonr).
[[nodiscard]] double pearson_p_value(double r, std::size_t n);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double x);

}  // namespace exawatt::stats
