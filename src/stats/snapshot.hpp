#pragma once

#include <span>
#include <vector>

namespace exawatt::stats {

/// Superposition of aligned time-series snapshots — Figures 11 and 12:
/// multiple windows around detected power edges are aligned at the edge
/// ("0 mins") and summarized as mean ± 95% confidence interval per offset.
struct SnapshotBand {
  std::vector<double> mean;  ///< per-offset mean over snapshots
  std::vector<double> lo;    ///< mean - 1.96·SE (95% CI lower)
  std::vector<double> hi;    ///< mean + 1.96·SE (95% CI upper)
  std::size_t snapshots = 0;
};

/// All snapshots must share one length (the aligned window); offsets with
/// NaN entries are skipped for that snapshot (missing telemetry).
[[nodiscard]] SnapshotBand superimpose(
    const std::vector<std::vector<double>>& snapshots);

}  // namespace exawatt::stats
