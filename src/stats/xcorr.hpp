#pragma once

#include <span>
#include <vector>

namespace exawatt::stats {

/// Correlation machinery for time-lag analysis — used to *measure* the
/// cooling-plant response delay (~1 minute in the paper) directly from
/// co-registered series rather than eyeballing snapshot plots.

/// Normalized autocorrelation r(k) for lags 0..max_lag (r(0) == 1).
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> x,
                                                  std::size_t max_lag);

/// Normalized cross-correlation of x against y shifted by lag k
/// (k > 0 means y lags x by k samples), for k in [-max_lag, +max_lag].
/// Result index i corresponds to lag i - max_lag.
[[nodiscard]] std::vector<double> cross_correlation(std::span<const double> x,
                                                    std::span<const double> y,
                                                    std::size_t max_lag);

/// Lag (in samples) maximizing the cross-correlation; positive when y
/// follows x. Returns 0 with correlation 0 for degenerate inputs.
struct LagEstimate {
  std::ptrdiff_t lag = 0;
  double correlation = 0.0;
};
[[nodiscard]] LagEstimate estimate_lag(std::span<const double> x,
                                       std::span<const double> y,
                                       std::size_t max_lag);

/// Spearman rank correlation (Pearson on ranks, ties averaged) — a
/// robust alternative for the heavy-tailed failure-rate comparisons.
[[nodiscard]] double spearman(std::span<const double> x,
                              std::span<const double> y);

}  // namespace exawatt::stats
