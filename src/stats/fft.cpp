#include "stats/fft.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace exawatt::stats {

namespace {
bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

void fft_radix2(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  EXA_CHECK(is_pow2(n), "fft_radix2 requires power-of-two size");
  if (n < 2) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * std::numbers::pi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

std::vector<std::complex<double>> fft_any(
    std::span<const std::complex<double>> input, bool inverse) {
  const std::size_t n = input.size();
  if (n == 0) return {};
  if (is_pow2(n)) {
    std::vector<std::complex<double>> a(input.begin(), input.end());
    fft_radix2(a, inverse);
    return a;
  }

  // Bluestein: X_k = b*_k · IFFT(FFT(a_j b_j) · FFT(b-chirp)), where
  // b_j = exp(±i·pi·j²/n). Convolution length is the next power of two
  // >= 2n - 1.
  const double sign = inverse ? 1.0 : -1.0;
  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<std::complex<double>> chirp(n);
  for (std::size_t j = 0; j < n; ++j) {
    // j² mod 2n avoids precision loss for large j.
    const auto j2 = static_cast<double>((j * j) % (2 * n));
    const double ang = sign * std::numbers::pi * j2 / static_cast<double>(n);
    chirp[j] = {std::cos(ang), std::sin(ang)};
  }
  std::vector<std::complex<double>> a(m, {0.0, 0.0});
  std::vector<std::complex<double>> b(m, {0.0, 0.0});
  for (std::size_t j = 0; j < n; ++j) {
    a[j] = input[j] * chirp[j];
    b[j] = std::conj(chirp[j]);
  }
  for (std::size_t j = 1; j < n; ++j) b[m - j] = std::conj(chirp[j]);
  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t j = 0; j < m; ++j) a[j] *= b[j];
  fft_radix2(a, true);

  std::vector<std::complex<double>> out(n);
  for (std::size_t j = 0; j < n; ++j) out[j] = a[j] * chirp[j];
  if (inverse) {
    for (auto& x : out) x /= static_cast<double>(n);
  }
  return out;
}

std::vector<std::complex<double>> fft_real(std::span<const double> input) {
  std::vector<std::complex<double>> c(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) c[i] = {input[i], 0.0};
  return fft_any(c, false);
}

DominantFrequency dominant_frequency(std::span<const double> x,
                                     double dt_seconds) {
  EXA_CHECK(dt_seconds > 0.0, "dominant_frequency needs dt > 0");
  DominantFrequency best;
  const std::size_t n = x.size();
  if (n < 4) return best;
  const auto spectrum = fft_real(x);
  const std::size_t half = n / 2;
  for (std::size_t k = 1; k <= half; ++k) {
    const double mag = std::abs(spectrum[k]);
    if (mag > best.amplitude) {
      best.amplitude = mag;
      best.frequency_hz =
          static_cast<double>(k) / (static_cast<double>(n) * dt_seconds);
    }
  }
  best.amplitude *= 2.0 / static_cast<double>(n);
  return best;
}

}  // namespace exawatt::stats
