#include "stats/kde.hpp"

#include <cmath>
#include <numbers>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace exawatt::stats {

namespace {
double scott_bandwidth(std::span<const double> samples) {
  const double s = std::sqrt(sample_variance(samples));
  const double n = static_cast<double>(samples.size());
  const double h = s * std::pow(n, -0.2);
  return h > 0.0 ? h : 1.0;
}
}  // namespace

Kde1::Kde1(std::span<const double> samples, double bandwidth)
    : samples_(samples.begin(), samples.end()) {
  EXA_CHECK(!samples_.empty(), "KDE needs at least one sample");
  h_ = bandwidth > 0.0 ? bandwidth : scott_bandwidth(samples_);
}

double Kde1::operator()(double x) const {
  const double norm =
      1.0 / (static_cast<double>(samples_.size()) * h_ *
             std::sqrt(2.0 * std::numbers::pi));
  double acc = 0.0;
  for (double s : samples_) {
    const double u = (x - s) / h_;
    acc += std::exp(-0.5 * u * u);
  }
  return acc * norm;
}

std::vector<double> Kde1::grid(double lo, double hi,
                               std::size_t points) const {
  EXA_CHECK(points > 1 && hi > lo, "KDE grid needs points > 1 and hi > lo");
  std::vector<double> out(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(points - 1);
    out[i] = (*this)(x);
  }
  return out;
}

Kde2::Kde2(std::span<const double> xs, std::span<const double> ys,
           double bandwidth_x, double bandwidth_y)
    : xs_(xs.begin(), xs.end()), ys_(ys.begin(), ys.end()) {
  EXA_CHECK(xs_.size() == ys_.size(), "KDE2 needs paired samples");
  EXA_CHECK(!xs_.empty(), "KDE2 needs at least one sample");
  hx_ = bandwidth_x > 0.0 ? bandwidth_x : scott_bandwidth(xs_);
  hy_ = bandwidth_y > 0.0 ? bandwidth_y : scott_bandwidth(ys_);
}

double Kde2::operator()(double x, double y) const {
  const double norm = 1.0 / (static_cast<double>(xs_.size()) * hx_ * hy_ *
                             2.0 * std::numbers::pi);
  double acc = 0.0;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    const double ux = (x - xs_[i]) / hx_;
    const double uy = (y - ys_[i]) / hy_;
    acc += std::exp(-0.5 * (ux * ux + uy * uy));
  }
  return acc * norm;
}

Kde2::GridDensity Kde2::grid(double xlo, double xhi, std::size_t nx,
                             double ylo, double yhi, std::size_t ny) const {
  EXA_CHECK(nx > 1 && ny > 1, "KDE2 grid needs nx, ny > 1");
  EXA_CHECK(xhi > xlo && yhi > ylo, "KDE2 grid needs non-empty ranges");
  GridDensity g;
  g.x.resize(nx);
  g.y.resize(ny);
  for (std::size_t i = 0; i < nx; ++i) {
    g.x[i] = xlo + (xhi - xlo) * static_cast<double>(i) /
                 static_cast<double>(nx - 1);
  }
  for (std::size_t j = 0; j < ny; ++j) {
    g.y[j] = ylo + (yhi - ylo) * static_cast<double>(j) /
                 static_cast<double>(ny - 1);
  }
  g.density.resize(nx * ny);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      g.density[j * nx + i] = (*this)(g.x[i], g.y[j]);
    }
  }
  return g;
}

std::size_t Kde2::count_modes(const GridDensity& g, double threshold) {
  const std::size_t nx = g.x.size();
  const std::size_t ny = g.y.size();
  double peak = 0.0;
  for (double d : g.density) peak = std::max(peak, d);
  if (peak <= 0.0) return 0;
  std::size_t modes = 0;
  for (std::size_t j = 1; j + 1 < ny; ++j) {
    for (std::size_t i = 1; i + 1 < nx; ++i) {
      const double c = g.at(j, i);
      if (c < threshold * peak) continue;
      bool is_peak = true;
      for (int dj = -1; dj <= 1 && is_peak; ++dj) {
        for (int di = -1; di <= 1; ++di) {
          if (di == 0 && dj == 0) continue;
          if (g.at(j + static_cast<std::size_t>(dj + 1) - 1,
                   i + static_cast<std::size_t>(di + 1) - 1) > c) {
            is_peak = false;
            break;
          }
        }
      }
      if (is_peak) ++modes;
    }
  }
  return modes;
}

}  // namespace exawatt::stats
