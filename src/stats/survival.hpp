#pragma once

#include <span>
#include <vector>

namespace exawatt::stats {

/// Survival analysis for component-lifetime studies. The paper's
/// reliability section builds on Ostrouchov et al. (SC'20), who applied
/// survival analysis to Titan's GPU lifetimes; this module provides the
/// same machinery for the simulated fleet: Kaplan-Meier estimation with
/// right-censoring and a two-sample log-rank test.

/// One observed unit: time-to-event (or to censoring).
struct SurvivalObservation {
  double time = 0.0;
  bool event = true;  ///< true = failure observed; false = right-censored
};

/// Kaplan-Meier product-limit estimate S(t).
class KaplanMeier {
 public:
  explicit KaplanMeier(std::vector<SurvivalObservation> observations);

  /// Survival probability at time t (step function; S(0) = 1).
  [[nodiscard]] double operator()(double t) const;

  /// Median survival time: smallest event time with S(t) <= 0.5, or
  /// +infinity when the curve never crosses 0.5.
  [[nodiscard]] double median() const;

  struct Step {
    double time;
    double survival;
    std::size_t at_risk;
    std::size_t events;
  };
  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] std::size_t total_events() const { return events_; }

 private:
  std::vector<Step> steps_;
  std::size_t n_ = 0;
  std::size_t events_ = 0;
};

/// Two-sample log-rank test: chi-square statistic (1 dof) and p-value for
/// the hypothesis that both groups share one survival function.
struct LogRankResult {
  double chi_square = 0.0;
  double p_value = 1.0;
};
[[nodiscard]] LogRankResult log_rank_test(
    std::span<const SurvivalObservation> group_a,
    std::span<const SurvivalObservation> group_b);

}  // namespace exawatt::stats
