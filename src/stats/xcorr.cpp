#include "stats/xcorr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace exawatt::stats {

std::vector<double> autocorrelation(std::span<const double> x,
                                    std::size_t max_lag) {
  EXA_CHECK(x.size() > max_lag, "series shorter than max_lag");
  const double m = mean(x);
  double denom = 0.0;
  for (double v : x) denom += (v - m) * (v - m);
  std::vector<double> r(max_lag + 1, 0.0);
  if (denom <= 0.0) {
    r[0] = 1.0;
    return r;
  }
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i + k < x.size(); ++i) {
      acc += (x[i] - m) * (x[i + k] - m);
    }
    r[k] = acc / denom;
  }
  return r;
}

std::vector<double> cross_correlation(std::span<const double> x,
                                      std::span<const double> y,
                                      std::size_t max_lag) {
  EXA_CHECK(x.size() == y.size(), "cross-correlation needs equal lengths");
  EXA_CHECK(x.size() > max_lag, "series shorter than max_lag");
  const std::size_t n = x.size();
  std::vector<double> out(2 * max_lag + 1, 0.0);
  for (std::size_t i = 0; i <= 2 * max_lag; ++i) {
    const auto lag = static_cast<std::ptrdiff_t>(i) -
                     static_cast<std::ptrdiff_t>(max_lag);
    // Overlapping windows: pair x[j] with y[j + lag].
    std::vector<double> xs;
    std::vector<double> ys;
    xs.reserve(n);
    ys.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(j) + lag;
      if (k < 0 || k >= static_cast<std::ptrdiff_t>(n)) continue;
      xs.push_back(x[j]);
      ys.push_back(y[static_cast<std::size_t>(k)]);
    }
    out[i] = xs.size() >= 3 ? pearson(xs, ys) : 0.0;
  }
  return out;
}

LagEstimate estimate_lag(std::span<const double> x, std::span<const double> y,
                         std::size_t max_lag) {
  const auto xc = cross_correlation(x, y, max_lag);
  LagEstimate best;
  for (std::size_t i = 0; i < xc.size(); ++i) {
    if (xc[i] > best.correlation) {
      best.correlation = xc[i];
      best.lag = static_cast<std::ptrdiff_t>(i) -
                 static_cast<std::ptrdiff_t>(max_lag);
    }
  }
  return best;
}

namespace {
std::vector<double> ranks(std::span<const double> x) {
  const std::size_t n = x.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> r(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg_rank;
    i = j + 1;
  }
  return r;
}
}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  EXA_CHECK(x.size() == y.size(), "spearman needs equal lengths");
  if (x.size() < 2) return 0.0;
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

}  // namespace exawatt::stats
