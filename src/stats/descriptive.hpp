#pragma once

#include <span>
#include <vector>

namespace exawatt::stats {

/// Descriptive statistics over plain double spans. Everything here is a
/// direct C++ port of the numpy/pandas calls in the paper's notebooks.

[[nodiscard]] double mean(std::span<const double> x);
[[nodiscard]] double variance(std::span<const double> x);        ///< population
[[nodiscard]] double sample_variance(std::span<const double> x); ///< n-1
[[nodiscard]] double stddev(std::span<const double> x);
[[nodiscard]] double min_value(std::span<const double> x);
[[nodiscard]] double max_value(std::span<const double> x);
[[nodiscard]] double sum(std::span<const double> x);

/// Linear-interpolated quantile (numpy default), q in [0, 1].
/// Sorts a copy; use quantile_sorted when data is pre-sorted.
[[nodiscard]] double quantile(std::span<const double> x, double q);
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);
[[nodiscard]] double median(std::span<const double> x);

/// Fisher-Pearson skewness coefficient (g1). 0 for n < 3 or zero variance.
[[nodiscard]] double skewness(std::span<const double> x);

/// Five-number summary with Tukey 1.5·IQR whiskers — the paper's boxplots
/// (Figures 5, 8, 17) and its outlier rule ("non-outlier spread").
struct BoxplotStats {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_lo = 0.0;  ///< smallest value >= q1 - 1.5 IQR
  double whisker_hi = 0.0;  ///< largest value <= q3 + 1.5 IQR
  std::size_t n = 0;
  std::size_t outliers = 0;
  [[nodiscard]] double iqr() const { return q3 - q1; }
  /// Non-outlier spread (whisker_hi - whisker_lo); the paper quotes the
  /// exemplar job's 62 W power / 15.8 °C temperature spreads this way.
  [[nodiscard]] double spread() const { return whisker_hi - whisker_lo; }
};

[[nodiscard]] BoxplotStats boxplot(std::span<const double> x);

/// Z-scores of x against its own mean/std (sample std). Zero-variance
/// inputs map to all-zero scores.
[[nodiscard]] std::vector<double> zscores(std::span<const double> x);
/// Z-score of a single value against a population (mean, stddev).
[[nodiscard]] double zscore(double value, double mu, double sigma);

}  // namespace exawatt::stats
