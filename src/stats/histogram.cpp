#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace exawatt::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  EXA_CHECK(bins > 0, "histogram needs at least one bin");
  EXA_CHECK(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    // Convention: hi itself lands in the last bin, beyond-hi overflows.
    if (x == hi_) {
      ++counts_.back();
    } else {
      ++overflow_;
    }
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / bin_width());
  ++counts_[std::min(bin, counts_.size() - 1)];
}

void Histogram::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::density(std::size_t bin) const {
  const std::uint64_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(counts_[bin]) /
         (static_cast<double>(in_range) * bin_width());
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(std::distance(
      counts_.begin(), std::max_element(counts_.begin(), counts_.end())));
}

void Histogram::merge(const Histogram& other) {
  EXA_CHECK(other.lo_ == lo_ && other.hi_ == hi_ &&
                other.counts_.size() == counts_.size(),
            "histogram merge requires identical binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

std::vector<double> log_edges(double lo, double hi, std::size_t bins) {
  EXA_CHECK(lo > 0.0 && hi > lo, "log_edges needs 0 < lo < hi");
  EXA_CHECK(bins > 0, "log_edges needs at least one bin");
  std::vector<double> edges(bins + 1);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = std::pow(
        10.0, llo + (lhi - llo) * static_cast<double>(i) /
                        static_cast<double>(bins));
  }
  return edges;
}

}  // namespace exawatt::stats
