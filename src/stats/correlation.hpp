#pragma once

#include <span>
#include <vector>

namespace exawatt::stats {

/// Pearson correlation coefficient r of two equal-length vectors.
/// Returns 0 when either vector has zero variance.
[[nodiscard]] double pearson(std::span<const double> x,
                             std::span<const double> y);

/// One cell of a pairwise correlation analysis.
struct CorrelationCell {
  double r = 0.0;
  double p = 1.0;
  bool significant = false;  ///< after Bonferroni at the given alpha
};

/// Pairwise Pearson correlation with Bonferroni-corrected significance —
/// exactly the Figure 13 procedure: vectors are per-node failure counts
/// (4,626-dimensional in the paper), tested at alpha with the number of
/// distinct pairs as the correction factor.
class CorrelationMatrix {
 public:
  /// `vectors[k]` is variable k's observations; all must share one length.
  CorrelationMatrix(const std::vector<std::vector<double>>& vectors,
                    double alpha = 0.05);

  [[nodiscard]] std::size_t variables() const { return k_; }
  [[nodiscard]] const CorrelationCell& at(std::size_t i,
                                          std::size_t j) const {
    return cells_[i * k_ + j];
  }
  /// Bonferroni-adjusted per-test threshold actually used.
  [[nodiscard]] double adjusted_alpha() const { return adjusted_alpha_; }
  /// Count of significant off-diagonal pairs (i < j).
  [[nodiscard]] std::size_t significant_pairs() const;

 private:
  std::size_t k_ = 0;
  double adjusted_alpha_ = 0.0;
  std::vector<CorrelationCell> cells_;
};

}  // namespace exawatt::stats
