#include "stats/survival.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "stats/special.hpp"
#include "util/check.hpp"

namespace exawatt::stats {

KaplanMeier::KaplanMeier(std::vector<SurvivalObservation> observations) {
  EXA_CHECK(!observations.empty(), "survival analysis needs observations");
  for (const auto& o : observations) {
    EXA_CHECK(o.time >= 0.0, "survival times must be non-negative");
  }
  std::sort(observations.begin(), observations.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              return a.time < b.time;
            });
  n_ = observations.size();

  double survival = 1.0;
  std::size_t at_risk = n_;
  std::size_t i = 0;
  while (i < observations.size()) {
    const double t = observations[i].time;
    std::size_t events_here = 0;
    std::size_t leaving = 0;
    while (i < observations.size() && observations[i].time == t) {
      if (observations[i].event) ++events_here;
      ++leaving;
      ++i;
    }
    if (events_here > 0) {
      survival *= 1.0 - static_cast<double>(events_here) /
                            static_cast<double>(at_risk);
      events_ += events_here;
      steps_.push_back({t, survival, at_risk, events_here});
    }
    at_risk -= leaving;
  }
}

double KaplanMeier::operator()(double t) const {
  double s = 1.0;
  for (const auto& step : steps_) {
    if (step.time > t) break;
    s = step.survival;
  }
  return s;
}

double KaplanMeier::median() const {
  for (const auto& step : steps_) {
    if (step.survival <= 0.5) return step.time;
  }
  return std::numeric_limits<double>::infinity();
}

LogRankResult log_rank_test(std::span<const SurvivalObservation> group_a,
                            std::span<const SurvivalObservation> group_b) {
  EXA_CHECK(!group_a.empty() && !group_b.empty(),
            "log-rank needs both groups populated");
  // Pooled distinct event times.
  std::map<double, std::pair<std::size_t, std::size_t>> events;  // (dA, dB)
  for (const auto& o : group_a) {
    if (o.event) ++events[o.time].first;
  }
  for (const auto& o : group_b) {
    if (o.event) ++events[o.time].second;
  }
  LogRankResult result;
  if (events.empty()) return result;

  auto at_risk = [](std::span<const SurvivalObservation> g, double t) {
    std::size_t n = 0;
    for (const auto& o : g) {
      if (o.time >= t) ++n;
    }
    return static_cast<double>(n);
  };

  double observed_a = 0.0;
  double expected_a = 0.0;
  double variance = 0.0;
  for (const auto& [t, d] : events) {
    const double na = at_risk(group_a, t);
    const double nb = at_risk(group_b, t);
    const double n = na + nb;
    const double deaths = static_cast<double>(d.first + d.second);
    if (n < 2.0 || deaths <= 0.0) continue;
    observed_a += static_cast<double>(d.first);
    expected_a += deaths * na / n;
    variance += deaths * (na / n) * (nb / n) * (n - deaths) / (n - 1.0);
  }
  if (variance <= 0.0) return result;
  const double z2 =
      (observed_a - expected_a) * (observed_a - expected_a) / variance;
  result.chi_square = z2;
  // Chi-square with 1 dof: p = 2 * (1 - Phi(sqrt(z2))).
  result.p_value = 2.0 * (1.0 - normal_cdf(std::sqrt(z2)));
  return result;
}

}  // namespace exawatt::stats
