#pragma once

#include <span>
#include <vector>

namespace exawatt::stats {

/// Empirical cumulative distribution function — the backbone of Figures 7
/// and 10 (job feature CDFs, edge count/duration CDFs).
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> samples);

  [[nodiscard]] std::size_t n() const { return sorted_.size(); }
  [[nodiscard]] bool empty() const { return sorted_.empty(); }

  /// P(X <= x); right-continuous step function.
  [[nodiscard]] double operator()(double x) const;

  /// Smallest sample value v with P(X <= v) >= p (the p-th percentile as
  /// the paper quotes "80% of jobs ... less than").
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

  /// Evaluate the CDF on an evenly spaced grid of `points` x-values
  /// spanning [min, max]; returns {x, F(x)} pairs for table rendering.
  struct Point {
    double x;
    double f;
  };
  [[nodiscard]] std::vector<Point> grid(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace exawatt::stats
