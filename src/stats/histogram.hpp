#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace exawatt::stats {

/// Fixed-bin histogram (the facility's component-temperature distribution
/// summaries are histogram-based; analysis figures use them for density
/// estimates and heat maps).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add(std::span<const double> xs);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_[bin];
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_width() const {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_center(std::size_t bin) const {
    return lo_ + (static_cast<double>(bin) + 0.5) * bin_width();
  }
  /// Normalized density at bin (integrates to 1 over [lo, hi]).
  [[nodiscard]] double density(std::size_t bin) const;
  /// Index of the fullest bin.
  [[nodiscard]] std::size_t mode_bin() const;

  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Log-spaced bin edges from lo to hi (both > 0), for the paper's
/// log-log energy/power axes.
[[nodiscard]] std::vector<double> log_edges(double lo, double hi,
                                            std::size_t bins);

}  // namespace exawatt::stats
