#include "stats/special.hpp"

#include <cmath>
#include <cstddef>
#include <limits>

#include "util/check.hpp"

namespace exawatt::stats {

namespace {

/// Continued-fraction evaluation for the incomplete beta (Lentz's method).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  EXA_CHECK(a > 0.0 && b > 0.0, "incomplete_beta needs a, b > 0");
  EXA_CHECK(x >= 0.0 && x <= 1.0, "incomplete_beta needs x in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly when it converges fast, else the
  // symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double t_sf_two_sided(double t, double df) {
  EXA_CHECK(df > 0.0, "t-test needs df > 0");
  if (!std::isfinite(t)) return 0.0;
  const double x = df / (df + t * t);
  return incomplete_beta(df / 2.0, 0.5, x);
}

double pearson_p_value(double r, std::size_t n) {
  if (n < 3) return 1.0;
  const double df = static_cast<double>(n - 2);
  const double r2 = r * r;
  if (r2 >= 1.0) return 0.0;
  const double t = r * std::sqrt(df / (1.0 - r2));
  return t_sf_two_sided(t, df);
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

}  // namespace exawatt::stats
