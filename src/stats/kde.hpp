#pragma once

#include <span>
#include <vector>

namespace exawatt::stats {

/// Gaussian kernel density estimation, 1-D and 2-D, with Scott's-rule
/// bandwidth (scipy.stats.gaussian_kde default) — used for the paper's
/// joint density contour plots (Figures 6 and 9).
class Kde1 {
 public:
  /// bandwidth <= 0 selects Scott's rule: n^(-1/5) * sample_std.
  explicit Kde1(std::span<const double> samples, double bandwidth = 0.0);

  [[nodiscard]] double bandwidth() const { return h_; }
  [[nodiscard]] double operator()(double x) const;

  /// Density evaluated on an even grid over [lo, hi].
  [[nodiscard]] std::vector<double> grid(double lo, double hi,
                                         std::size_t points) const;

 private:
  std::vector<double> samples_;
  double h_ = 1.0;
};

/// 2-D product-kernel Gaussian KDE with per-axis Scott bandwidths.
class Kde2 {
 public:
  Kde2(std::span<const double> xs, std::span<const double> ys,
       double bandwidth_x = 0.0, double bandwidth_y = 0.0);

  [[nodiscard]] double bandwidth_x() const { return hx_; }
  [[nodiscard]] double bandwidth_y() const { return hy_; }
  [[nodiscard]] double operator()(double x, double y) const;

  /// Density over an nx × ny grid; row-major, row = y index.
  struct GridDensity {
    std::vector<double> x;       ///< nx grid coordinates
    std::vector<double> y;       ///< ny grid coordinates
    std::vector<double> density; ///< ny * nx values
    [[nodiscard]] double at(std::size_t iy, std::size_t ix) const {
      return density[iy * x.size() + ix];
    }
  };
  [[nodiscard]] GridDensity grid(double xlo, double xhi, std::size_t nx,
                                 double ylo, double yhi, std::size_t ny) const;

  /// Number of local maxima of the gridded density above `threshold`
  /// relative to the global peak — how "multi-modal" a joint distribution
  /// is (the paper contrasts multi-modal small classes vs concentrated
  /// large classes in Figure 6).
  static std::size_t count_modes(const GridDensity& g,
                                 double threshold = 0.05);

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  double hx_ = 1.0;
  double hy_ = 1.0;
};

}  // namespace exawatt::stats
