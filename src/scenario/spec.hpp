#pragma once

#include <cstdint>
#include <string>

#include "facility/cooling.hpp"
#include "stream/engine.hpp"

namespace exawatt::scenario {

/// A declarative counterfactual: what to change about the recorded world
/// before replaying it. Every field defaults to "no intervention"; a
/// default-constructed spec is the identity scenario, whose replay is
/// bit-identical to a plain pue_rollup because apply() then installs no
/// hooks and replaces no parameters — the un-intervened code path runs
/// literally unchanged (the `scenariocheck` gate).
struct ScenarioSpec {
  /// Label echoed through summaries ("cap-18MW", "feb-outage", ...).
  std::string name;
  /// > 0: clamp the rolled-up per-window cluster IT power to this many
  /// watts — the replay analogue of what a power-aware scheduler's
  /// `power::PowerAwareOptions::cluster_cap_w` enforces at schedule time.
  double power_cap_w = 0.0;
  /// Added to the weather trace's wet-bulb before the plant sees it
  /// (season shift: +6 turns shoulder weather into summer).
  double wet_bulb_offset_c = 0.0;
  /// Trim chillers carry the full load for the whole range (the paper's
  /// February tower-maintenance event that spiked PUE to ~1.3).
  bool force_chillers = false;
  /// Replace the weather trace wholesale (a different sampled year).
  bool has_weather_seed = false;
  std::uint64_t weather_seed = 0;
  /// Replace the cooling-plant tunables wholesale (e.g. a degraded
  /// tower approach, a better chiller COP).
  bool has_cooling = false;
  facility::CoolingParams cooling;

  /// True when apply() would change nothing.
  [[nodiscard]] bool is_identity() const;

  /// Out-of-contract values (negative cap, non-finite offsets,
  /// nonsensical cooling tunables) — checked before any plant is built
  /// so a hostile wire spec gets INVALID_ARGUMENT, not a crash.
  [[nodiscard]] bool valid(std::string* why) const;

  /// Install the interventions into `opts` (parameter replacement plus
  /// the `stream::RollupOptions` hooks). No-op for the identity spec.
  void apply(stream::EngineOptions& opts) const;
};

}  // namespace exawatt::scenario
