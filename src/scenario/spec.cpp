#include "scenario/spec.hpp"

#include <cmath>

namespace exawatt::scenario {

namespace {

[[nodiscard]] bool finite(double v) { return std::isfinite(v); }

[[nodiscard]] bool cooling_ok(const facility::CoolingParams& p,
                              std::string* why) {
  const auto positive = [&](double v, const char* what) {
    if (finite(v) && v > 0.0) return true;
    *why = std::string("cooling ") + what + " must be positive";
    return false;
  };
  const auto non_negative = [&](double v, const char* what) {
    if (finite(v) && v >= 0.0) return true;
    *why = std::string("cooling ") + what + " must be >= 0";
    return false;
  };
  return finite(p.mtw_supply_setpoint_c) && finite(p.tower_approach_c) &&
         positive(p.tower_fade_band_c, "tower_fade_band_c") &&
         positive(p.stage_up_tau_s, "stage_up_tau_s") &&
         positive(p.stage_down_tau_s, "stage_down_tau_s") &&
         positive(p.supply_tau_s, "supply_tau_s") &&
         positive(p.loop_w_per_c, "loop_w_per_c") &&
         non_negative(static_cast<double>(p.return_delay_s),
                      "return_delay_s") &&
         p.return_delay_s <= 86400 &&
         non_negative(p.pump_power_w, "pump_power_w") &&
         non_negative(p.distribution_loss_frac, "distribution_loss_frac") &&
         non_negative(p.tower_fan_w_per_w, "tower_fan_w_per_w") &&
         non_negative(p.chiller_w_per_w, "chiller_w_per_w");
}

}  // namespace

bool ScenarioSpec::is_identity() const {
  return power_cap_w <= 0.0 && wet_bulb_offset_c == 0.0 &&
         !force_chillers && !has_weather_seed && !has_cooling;
}

bool ScenarioSpec::valid(std::string* why) const {
  if (!finite(power_cap_w) || power_cap_w < 0.0) {
    *why = "power cap must be finite and >= 0";
    return false;
  }
  if (!finite(wet_bulb_offset_c) || std::abs(wet_bulb_offset_c) > 60.0) {
    *why = "wet-bulb offset must be finite and within +-60 degC";
    return false;
  }
  if (has_cooling && !cooling_ok(cooling, why)) return false;
  if (!why->empty()) why->clear();
  return true;
}

void ScenarioSpec::apply(stream::EngineOptions& opts) const {
  if (has_cooling) opts.rollup.cooling = cooling;
  if (has_weather_seed) opts.rollup.weather_seed = weather_seed;
  if (power_cap_w > 0.0) {
    const double cap = power_cap_w;
    opts.rollup.power_override = [cap](util::TimeSec, double power) {
      return power > cap ? cap : power;
    };
  }
  if (wet_bulb_offset_c != 0.0) {
    const double offset = wet_bulb_offset_c;
    opts.rollup.wet_bulb_override = [offset](util::TimeSec, double wb) {
      return wb + offset;
    };
  }
  if (force_chillers) {
    opts.rollup.force_chillers = [](util::TimeSec) { return true; };
  }
}

}  // namespace exawatt::scenario
