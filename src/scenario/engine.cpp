#include "scenario/engine.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "telemetry/metric.hpp"

namespace exawatt::scenario {

ScenarioSummary summarize(const ScenarioResult& result,
                          const std::string& name, util::TimeSec window) {
  ScenarioSummary s;
  s.name = name;
  s.windows = result.power.size();
  const double w = static_cast<double>(window);
  for (std::size_t i = 0; i < result.power.size(); ++i) {
    s.energy_j += result.power.values()[i] * w;
    s.peak_power_w = std::max(s.peak_power_w, result.power.values()[i]);
    s.mean_pue += result.pue.values()[i];
  }
  if (!result.power.values().empty()) {
    s.mean_pue /= static_cast<double>(result.pue.size());
  }
  for (std::size_t i = 0; i < result.baseline_power.size(); ++i) {
    s.baseline_energy_j += result.baseline_power.values()[i] * w;
    s.baseline_peak_power_w =
        std::max(s.baseline_peak_power_w, result.baseline_power.values()[i]);
    s.baseline_mean_pue += result.baseline_pue.values()[i];
  }
  if (!result.baseline_power.values().empty()) {
    s.baseline_mean_pue /= static_cast<double>(result.baseline_pue.size());
  }
  const std::size_t common =
      std::min(result.power.size(), result.baseline_power.size());
  for (std::size_t i = 0; i < common; ++i) {
    s.max_power_delta_w =
        std::max(s.max_power_delta_w, result.power.values()[i] -
                                          result.baseline_power.values()[i]);
    s.max_pue_delta = std::max(
        s.max_pue_delta,
        result.pue.values()[i] - result.baseline_pue.values()[i]);
  }
  return s;
}

ScenarioResult run_scenario_runs(const std::vector<store::MetricRun>& runs,
                                 const stream::EngineOptions& base,
                                 const ScenarioSpec& spec,
                                 const stream::ReplaySinks& sinks) {
  ScenarioResult out;
  stream::ReplaySinks baseline_sinks;
  baseline_sinks.cancelled = sinks.cancelled;
  stream::RollupReplay baseline =
      stream::replay_rollup_runs(runs, base, baseline_sinks);
  out.baseline_power = std::move(baseline.power);
  out.baseline_pue = std::move(baseline.pue);
  out.cancelled = baseline.cancelled;
  if (out.cancelled) return out;

  stream::EngineOptions opts = base;
  spec.apply(opts);
  stream::RollupReplay variant =
      stream::replay_rollup_runs(runs, std::move(opts), sinks);
  out.power = std::move(variant.power);
  out.pue = std::move(variant.pue);
  out.events = variant.events;
  out.windows = variant.windows;
  out.cancelled = variant.cancelled;
  return out;
}

ScenarioResult run_scenario(const store::Store& store,
                            const std::vector<machine::NodeId>& nodes,
                            const stream::EngineOptions& base,
                            const ScenarioSpec& spec,
                            const stream::ReplaySinks& sinks,
                            store::QueryStats* stats) {
  const int channel =
      telemetry::channel_of(telemetry::MetricKind::kInputPower, 0);
  std::vector<telemetry::MetricId> ids;
  ids.reserve(nodes.size());
  for (const machine::NodeId n : nodes) {
    ids.push_back(telemetry::metric_id(n, channel));
  }
  const auto runs = store.query_many(ids, base.range, nullptr, stats);
  return run_scenario_runs(runs, base, spec, sinks);
}

std::vector<ScenarioResult> run_sweep(
    const std::vector<store::MetricRun>& runs,
    const stream::EngineOptions& base,
    const std::vector<ScenarioSpec>& variants, const SweepOptions& options) {
  std::vector<ScenarioResult> out(variants.size());
  if (variants.empty()) return out;

  // One baseline for the whole sweep; every variant compares against the
  // same series (and an identity variant reproduces it bit-for-bit).
  stream::ReplaySinks baseline_sinks;
  baseline_sinks.cancelled = options.cancelled;
  const stream::RollupReplay baseline =
      stream::replay_rollup_runs(runs, base, baseline_sinks);
  if (baseline.cancelled) {
    for (ScenarioResult& r : out) {
      r.baseline_power = baseline.power;
      r.baseline_pue = baseline.pue;
      r.cancelled = true;
    }
    return out;
  }

  const auto run_variant = [&](std::size_t v) {
    stream::EngineOptions opts = base;
    variants[v].apply(opts);
    stream::ReplaySinks sinks;
    sinks.cancelled = options.cancelled;
    if (options.on_window) {
      sinks.on_window = [&, v](const stream::ClusterWindow& window) {
        options.on_window(v, window);
      };
    }
    stream::RollupReplay variant =
        stream::replay_rollup_runs(runs, std::move(opts), sinks);
    ScenarioResult& r = out[v];
    r.baseline_power = baseline.power;
    r.baseline_pue = baseline.pue;
    r.power = std::move(variant.power);
    r.pue = std::move(variant.pue);
    r.events = variant.events;
    r.windows = variant.windows;
    r.cancelled = variant.cancelled;
  };

  const std::size_t workers =
      std::min(options.threads, variants.size());
  if (workers <= 1) {
    for (std::size_t v = 0; v < variants.size(); ++v) run_variant(v);
    return out;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t v = next.fetch_add(1, std::memory_order_relaxed);
        if (v >= variants.size()) return;
        run_variant(v);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return out;
}

}  // namespace exawatt::scenario
