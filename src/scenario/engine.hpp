#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "store/store.hpp"
#include "stream/replay.hpp"

namespace exawatt::scenario {

/// One replayed counterfactual next to its un-intervened baseline, on
/// the same window grid (both replays consume the same fetched runs).
struct ScenarioResult {
  ts::Series baseline_power;  ///< machine-scaled cluster power, no spec
  ts::Series baseline_pue;
  ts::Series power;           ///< same replay with the spec applied
  ts::Series pue;
  std::uint64_t events = 0;   ///< events re-fed per replay leg
  std::size_t windows = 0;    ///< variant windows closed
  bool cancelled = false;     ///< either leg abandoned early
};

/// Per-variant aggregate of a scenario result — what a sweep response
/// carries over the wire when the full series would be N times too big.
/// Deltas are variant minus baseline over the common window prefix.
struct ScenarioSummary {
  std::string name;
  std::uint64_t windows = 0;
  double energy_j = 0.0;  ///< sum(window mean power) * window seconds
  double baseline_energy_j = 0.0;
  double mean_pue = 0.0;
  double baseline_mean_pue = 0.0;
  double peak_power_w = 0.0;
  double baseline_peak_power_w = 0.0;
  double max_power_delta_w = 0.0;  ///< max over windows, signed
  double max_pue_delta = 0.0;
};

[[nodiscard]] ScenarioSummary summarize(const ScenarioResult& result,
                                        const std::string& name,
                                        util::TimeSec window);

/// Replay `runs` twice through `stream::replay_rollup_runs` — once
/// untouched (the baseline) and once with `spec` applied — and pair the
/// series up. `sinks` observes the *variant* leg (windows/alerts as they
/// close); its `cancelled` hook is also polled by the baseline leg.
/// Because the variant leg with an identity spec installs no hooks, it
/// is bit-identical to the baseline (and to a plain pue_rollup) by
/// construction.
[[nodiscard]] ScenarioResult run_scenario_runs(
    const std::vector<store::MetricRun>& runs,
    const stream::EngineOptions& base, const ScenarioSpec& spec,
    const stream::ReplaySinks& sinks = {});

/// Store-backed convenience: fetch every node's input-power channel over
/// `base.range` (exactly what `stream::replay_rollup` reads) and
/// delegate to run_scenario_runs. Scan degradation merges into `*stats`.
[[nodiscard]] ScenarioResult run_scenario(
    const store::Store& store, const std::vector<machine::NodeId>& nodes,
    const stream::EngineOptions& base, const ScenarioSpec& spec,
    const stream::ReplaySinks& sinks = {},
    store::QueryStats* stats = nullptr);

struct SweepOptions {
  /// Concurrent variant replays. <= 1 runs serially on the caller's
  /// thread. Workers are dedicated short-lived threads, NOT the shared
  /// util::ThreadPool: a sweep is executed *from* a pool task (the
  /// QueryService executor), and fanning out onto the pool it occupies
  /// deadlocks a small pool — the same reasoning as net::fan_out.
  std::size_t threads = 0;
  /// Polled between replayed seconds of every leg, possibly from several
  /// worker threads at once — must be thread-safe.
  std::function<bool()> cancelled;
  /// Every closed window of every variant leg, tagged with the variant
  /// index. Called from worker threads when threads > 1 — must be
  /// thread-safe. Per-variant window order is preserved; variants
  /// interleave.
  std::function<void(std::size_t, const stream::ClusterWindow&)> on_window;
};

/// Fan N specs over the same fetched runs: the baseline is replayed
/// once and shared; each variant replays independently. Results land at
/// their spec's index regardless of completion order.
[[nodiscard]] std::vector<ScenarioResult> run_sweep(
    const std::vector<store::MetricRun>& runs,
    const stream::EngineOptions& base,
    const std::vector<ScenarioSpec>& variants,
    const SweepOptions& options = {});

}  // namespace exawatt::scenario
