#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "store/compactor.hpp"
#include "store/segment.hpp"
#include "ts/series.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace exawatt::store {

struct StoreOptions {
  /// Seal a day-partition buffer into a segment once it holds this many
  /// events (the paper's analogue: one parquet file per day-minute).
  std::size_t segment_events = 1 << 18;
  /// Max events per encoded block inside a segment; smaller blocks give
  /// finer predicate pushdown, larger blocks compress better.
  std::size_t block_events = 4096;
  /// Filesystem seam: nullptr → the real filesystem. Tests install a
  /// faultfs::FaultVfs here to script outages while the store runs. Must
  /// outlive the Store.
  util::Vfs* vfs = nullptr;
  /// Clock the retry policy sleeps on: nullptr → the steady wall clock.
  /// Tests install a util::ManualClock so no test ever really sleeps.
  util::Clock* clock = nullptr;
  /// Transient write-error policy for seal + manifest replace: exponential
  /// backoff with cap and jitter, then the error surfaces as StoreError.
  util::BackoffPolicy retry = {};
  /// Substream seed for the backoff jitter (deterministic per store).
  std::uint64_t retry_seed = 0x5ea1b0ffULL;
  /// Byte budget of the decoded-block cache shared by every query on this
  /// store (0 disables caching entirely). Entries are decoded columns
  /// keyed by (segment, block, CRC), so repeated scans of the same
  /// windows skip disk + CRC + varint decode. Sized in decoded bytes:
  /// the default holds roughly four million events.
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Warm read tier: open sealed segments through `Vfs::map()` and serve
  /// block reads as zero-copy slices of the mapped view (no per-block
  /// open/seek, and readers survive the compactor unlinking their file).
  /// Off by default — mapping claims read-fault ops, which would shift
  /// the op numbering existing fault schedules aim at.
  bool mmap_segments = false;
};

/// What `Store::open` found and fixed. A crash mid-write loses at most
/// the unsealed tail: segments with a missing/invalid footer are dropped
/// (renamed to `<file>.bad`), sealed-but-unlisted segments are adopted,
/// and a corrupt manifest is rebuilt from the surviving segment files.
struct RecoveryReport {
  std::size_t segments = 0;          ///< live after recovery
  std::size_t adopted_orphans = 0;   ///< sealed but not in the manifest
  std::size_t dropped_corrupt = 0;   ///< truncated / CRC-failed, set aside
  std::size_t dropped_missing = 0;   ///< manifest entries with no file
  bool manifest_rebuilt = false;
  /// Compaction journals replayed at open: `flipped` journals rolled
  /// forward (output adopted, inputs retired), `copying` ones rolled
  /// back (inputs stay authoritative). Not part of `clean()` — a
  /// replayed compaction loses nothing.
  std::size_t compactions_finished = 0;
  std::size_t compactions_rolled_back = 0;

  [[nodiscard]] bool clean() const {
    return adopted_orphans == 0 && dropped_corrupt == 0 &&
           dropped_missing == 0 && !manifest_rebuilt;
  }
};

/// One metric's time-sorted samples from a fan-out query.
struct MetricRun {
  telemetry::MetricId id = 0;
  std::vector<ts::Sample> samples;
};

/// Consumer of `Store::scan_encoded`: per requested id, `begin_run`,
/// then any mix of still-encoded whole blocks (`block` — CRC-verified
/// codec bytes plus their event count, valid only for the duration of
/// the call) and one time-sorted batch of loose samples (`samples` —
/// range-boundary block slices plus the unsealed tail), then `end_run`.
/// Any callback returning false stops the scan. The union of decoded
/// blocks and loose samples is exactly the sample multiset `query`
/// would return — re-sorting with `sample_less` reproduces its vector.
struct RawScanSink {
  std::function<bool(telemetry::MetricId)> begin_run;
  std::function<bool(std::span<const std::uint8_t>, std::uint32_t)> block;
  std::function<bool(std::span<const ts::Sample>)> samples;
  std::function<bool()> end_run;
};

/// The sort order of every query result: by time, value-tiebroken so the
/// sorted sequence is a pure function of the sample multiset — merging
/// any regrouping of the same samples (segments, threads, or cluster
/// shards) and re-sorting reproduces the identical vector.
[[nodiscard]] inline bool sample_less(const ts::Sample& a,
                                      const ts::Sample& b) {
  return a.t < b.t || (a.t == b.t && a.value < b.value);
}

/// Event-weighted window grid from `Store::window_sum`: for window w
/// (covering [start + w*window, start + (w+1)*window)), `sum[w]` is the
/// exact sum of every stored value in it and `count[w]` the event count.
/// Values are int32 and sums stay far below 2^53, so the doubles are
/// exact integers — independent of block, segment or thread grouping.
struct WindowSum {
  util::TimeSec start = 0;
  util::TimeSec window = 0;
  std::vector<double> sum;
  std::vector<std::uint64_t> count;

  [[nodiscard]] std::size_t size() const { return sum.size(); }
  /// Event-weighted mean of window w; 0 when the window is empty.
  [[nodiscard]] double mean(std::size_t w) const {
    return count[w] == 0 ? 0.0
                         : sum[w] / static_cast<double>(count[w]);
  }
};

/// The durable counterpart of the in-memory `telemetry::Archive`: sealed
/// columnar segment files per day-partition under one root directory,
/// listed by an atomically-replaced manifest, queried with per-block
/// predicate pushdown (metric-id set × time range against the footer
/// directories). Appends buffer in memory per day and seal at a size
/// threshold; `flush()` seals everything buffered. Identical `append`
/// streams must produce identical `query` results to the Archive — the
/// shared contract the property tests pin down.
class Store {
 public:
  /// Open (creating the directory if needed) and run recovery.
  [[nodiscard]] static Store open(const std::string& root,
                                  StoreOptions options = {});

  Store(Store&&) = default;
  Store& operator=(Store&&) = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;
  ~Store();

  /// Append a batch; it is buffered into the day-partition of its first
  /// event (the Archive's rule) and sealed once the buffer is large.
  void append(std::vector<telemetry::MetricEvent> events);

  /// Seal every buffered day-partition and persist the manifest.
  void flush();

  /// All samples of one metric in [range.begin, range.end), time-sorted —
  /// sealed segments plus the unsealed in-memory tail. Degrades instead
  /// of throwing when a segment is damaged or vanishes mid-query: the
  /// result holds every sample that is still readable (never a wrong
  /// value), and `stats` (when non-null) reports what was lost — callers
  /// that must not act on partial data check `stats->degraded()`.
  [[nodiscard]] std::vector<ts::Sample> query(
      telemetry::MetricId id, util::TimeRange range,
      QueryStats* stats = nullptr) const;

  /// Fan-out query: segment scans run across `pool` (nullptr selects the
  /// process-global pool), results merge into one time-sorted run per
  /// requested metric, in the order of `ids` (a duplicate id receives
  /// the full run again, as per-id `query` calls would). Same degradation
  /// contract as `query`; `stats` aggregates losses across all scanned
  /// segments.
  [[nodiscard]] std::vector<MetricRun> query_many(
      std::span<const telemetry::MetricId> ids, util::TimeRange range,
      util::ThreadPool* pool = nullptr, QueryStats* stats = nullptr) const;

  /// Streaming variant of `query_many` for chunked serving: runs are
  /// produced one requested id at a time and handed to `sink` instead of
  /// being materialized together, so peak memory is one run, not the
  /// result set. The sink returning false stops the scan (backpressure
  /// cancel); returns false iff stopped early. Results and loss
  /// accounting are identical to `query_many` over the same ids —
  /// duplicates get the full run again, a vanished segment charges
  /// `lost_segments` once per segment (not once per id), and damaged
  /// blocks charge once since each block belongs to one metric.
  bool scan(std::span<const telemetry::MetricId> ids, util::TimeRange range,
            const std::function<bool(MetricRun&&)>& sink,
            QueryStats* stats = nullptr) const;

  /// Zero-copy streaming scan: blocks that lie entirely inside `range`
  /// are handed to the sink still encoded (sliced straight from the
  /// mapped segment on the warm tier), so the serving path never
  /// re-encodes them; only range-boundary blocks and the unsealed tail
  /// decode into loose samples. Loss accounting matches `scan` —
  /// except that duplicate requested ids re-emit by re-scanning (raw
  /// spans cannot be cached) without re-charging their losses. Returns
  /// false iff a sink callback stopped the scan.
  bool scan_encoded(std::span<const telemetry::MetricId> ids,
                    util::TimeRange range, const RawScanSink& sink,
                    QueryStats* stats = nullptr) const;

  /// One synchronous compaction pass over the sealed population: drops
  /// aged-out segments whole, merges each day's small segments into one
  /// re-sorted retention-filtered segment through a journaled
  /// `.incoming` + flip protocol (crash anywhere loses no committed
  /// event — `compactcheck` sweeps every write point). Passes are
  /// mutually exclusive with each other but run concurrently with
  /// queries: in-flight readers keep serving from retired segments
  /// until `reap` finds them unreferenced. Safe to call from a
  /// background pool thread.
  CompactionReport compact(const CompactionOptions& opts);

  /// Delete retired segment files whose last reader is gone (and the
  /// compaction journals that guarded them). Called automatically by
  /// `compact`, `flush` and the destructor; exposed so tests and tools
  /// can force the sweep. Returns files actually deleted.
  std::size_t reap();
  /// Retired segments still pinned by in-flight readers (or pending
  /// deletion): the compactor's graveyard depth.
  [[nodiscard]] std::size_t graveyard_size() const;

  /// Fused decode-aggregate query: the exact per-window sum and event
  /// count of `id` over `range`, computed without materializing samples —
  /// segment scans run the codec's decode-sum kernel (or accumulate from
  /// cached columns) and fan out across `pool`. Same degradation contract
  /// as `query`. Sums are exact (integer-valued doubles), so the result
  /// is independent of segment grouping and thread schedule.
  [[nodiscard]] WindowSum window_sum(telemetry::MetricId id,
                                     util::TimeRange range,
                                     util::TimeSec window,
                                     util::ThreadPool* pool = nullptr,
                                     QueryStats* stats = nullptr) const;

  /// Distinct metric ids present (sealed + buffered), ascending.
  [[nodiscard]] std::vector<telemetry::MetricId> metrics() const;
  /// The sealed-segment directory (manifest view): one SegmentMeta per
  /// live segment, in manifest order. This is what a cluster coordinator
  /// plans scatter queries against — and what it charges to
  /// `lost_segments` when this store's shard stops answering.
  [[nodiscard]] std::vector<SegmentMeta> directory() const;
  /// Half-open hull of every stored event time; {0,0} when empty.
  [[nodiscard]] util::TimeRange bounds() const;

  /// Sealed codec blocks a query of exactly (ids, range) will touch:
  /// per distinct id, the blocks whose [t_min, t_max] intersects the
  /// range, summed over the sealed population. Pure directory
  /// arithmetic (binary searches over in-memory block indexes, no I/O)
  /// — the QoS cost model prices admission with it, and a cached read
  /// of the same shape reports exactly this many cache_hits +
  /// cache_misses (duplicates collapse, as `query_many` collapses
  /// them). The unsealed tail decodes nothing and counts nothing.
  [[nodiscard]] std::uint64_t estimate_blocks(
      std::span<const telemetry::MetricId> ids, util::TimeRange range) const;

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] const RecoveryReport& recovery() const { return recovery_; }
  [[nodiscard]] std::size_t sealed_segments() const;
  [[nodiscard]] std::size_t day_partitions() const;
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] std::uint64_t buffered_events() const {
    return buffered_events_;
  }
  /// On-disk footprint of the sealed segment files (incl. framing).
  [[nodiscard]] std::uint64_t stored_bytes() const;
  /// Raw event bytes / stored bytes over the sealed population.
  [[nodiscard]] double compression_ratio() const;
  /// The decoded-block cache, or nullptr when `cache_bytes == 0`.
  [[nodiscard]] const BlockCache* block_cache() const {
    return cache_.get();
  }

 private:
  Store(std::string root, StoreOptions options);

  struct LiveSegment {
    SegmentMeta meta;
    SegmentReader reader;
  };
  /// A retired segment awaiting deletion: the shared_ptr pins the file's
  /// reader for any query snapshot still holding it; `journal` (when
  /// non-empty) is the compaction journal that must outlive this file —
  /// removed only once every victim it names is gone, so a crash during
  /// the sweep always replays to a single copy of every event.
  struct Grave {
    std::shared_ptr<const LiveSegment> seg;
    std::string path;
    std::string journal;
  };
  /// Immutable view of the sealed population, shared with in-flight
  /// queries: the vector is copied under the lock, the segments are
  /// refcounted, so the compactor swapping `segments_` never invalidates
  /// a running scan.
  using SegmentSnapshot = std::vector<std::shared_ptr<const LiveSegment>>;

  void recover();
  /// Replay `<output>.compact` journals left by a crashed compaction —
  /// runs before the manifest loads so a rolled-forward output is never
  /// double-counted against its still-listed inputs. Defined in
  /// compactor.cpp next to the forward path it mirrors.
  void recover_compactions();
  [[nodiscard]] SegmentSnapshot snapshot() const;
  /// Callers of the *_locked helpers hold *mu_.
  void adopt_locked(SegmentMeta meta, SegmentReader reader);
  void save_manifest_locked() const;
  std::size_t reap_locked();
  void seal_day(std::int64_t day);
  [[nodiscard]] std::string next_segment_name(std::int64_t day);

  std::string root_;
  StoreOptions options_;
  util::Vfs* vfs_;
  util::Clock* clock_;
  /// unique_ptr keeps Store movable (BlockCache holds mutexes); the
  /// cache is internally synchronized, so const query paths share it.
  std::unique_ptr<BlockCache> cache_;
  mutable util::Rng retry_rng_;
  RecoveryReport recovery_;
  /// Guards segments_, graveyard_, the sealed counters, next_seq_ and
  /// manifest writes (mutate + save happen under one continuous hold so
  /// concurrent savers cannot publish each other's entries away).
  /// Behind unique_ptr to keep Store movable.
  std::unique_ptr<std::mutex> mu_;
  /// Serializes whole compaction passes (each is long-running and owns
  /// the plan it computed); never held together with queries.
  std::unique_ptr<std::mutex> compact_mu_;
  SegmentSnapshot segments_;
  std::vector<Grave> graveyard_;
  std::map<std::int64_t, std::vector<telemetry::MetricEvent>> mem_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sealed_events_ = 0;
  std::uint64_t buffered_events_ = 0;
  std::uint64_t stored_bytes_ = 0;
};

/// The serial reduction step of every cluster_sum flavor: per-node
/// coarsened stats accumulate onto the window grid in the order given
/// (floating addition is order-sensitive, so the node order IS the
/// contract). Shared by `store::cluster_sum` and the cluster
/// coordinator's scatter-gather path — bit-parity between the sharded
/// and unsharded roll-up holds because both run exactly this code on
/// identical per-node stats.
[[nodiscard]] ts::Series reduce_cluster_sum(
    std::span<const ts::StatSeries> per_node, util::TimeRange range,
    util::TimeSec window, std::vector<double>* counts = nullptr);

/// Cluster-level roll-up of one channel across nodes, read from the store
/// — the disk-backed twin of `telemetry::cluster_sum` (bit-identical on
/// identical event streams). Per-node scans fan out across `pool`.
/// Inherits the degraded-query contract: a lost segment shrinks the
/// contributing-node counts instead of aborting the roll-up, and `stats`
/// reports the damage.
[[nodiscard]] ts::Series cluster_sum(
    const Store& store, const std::vector<machine::NodeId>& nodes,
    int channel, util::TimeRange range, util::TimeSec window = 10,
    std::vector<double>* counts = nullptr, util::ThreadPool* pool = nullptr,
    QueryStats* stats = nullptr);

}  // namespace exawatt::store
