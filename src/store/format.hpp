#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/metric.hpp"
#include "util/sim_time.hpp"

namespace exawatt::store {

/// Error raised by the on-disk store when a file is truncated, corrupt or
/// inconsistent. Recovery paths catch it and drop the offending segment;
/// query paths let it propagate — a CRC mismatch must surface as a loud
/// failure, never as silently-wrong samples.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// On-disk segment layout (all multi-byte integers little-endian):
///
///   [8]  magic "EXWSEG01"
///   [4]  u32 format version
///   [4]  u32 reserved (0)
///   ...  blocks: codec-encoded event runs, back to back; each block
///        holds events of exactly one metric, time-sorted
///   ...  footer: varint directory of BlockMeta entries (see below)
///   [8]  u64 footer payload size
///   [4]  u32 CRC-32 of the footer payload
///   [8]  magic "EXWSEGFT"
///
/// The footer is written last, so a crash mid-write leaves a file whose
/// trailer is missing or whose footer CRC fails — recovery detects either
/// and drops the segment. Sealed blocks are never rewritten.
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr char kSegmentMagic[8] = {'E', 'X', 'W', 'S', 'E', 'G', '0',
                                          '1'};
inline constexpr char kFooterMagic[8] = {'E', 'X', 'W', 'S', 'E', 'G', 'F',
                                         'T'};
inline constexpr std::size_t kHeaderBytes = 16;
inline constexpr std::size_t kTrailerBytes = 20;

/// Footer directory entry: one encoded block of one metric, with the time
/// bounds the query layer pushes predicates against and the CRC the block
/// bytes must match when read back.
struct BlockMeta {
  telemetry::MetricId id = 0;
  std::uint64_t offset = 0;  ///< from file start
  std::uint32_t size = 0;    ///< encoded bytes
  std::uint32_t events = 0;
  util::TimeSec t_min = 0;
  util::TimeSec t_max = 0;
  std::uint32_t crc = 0;
};

/// Damage accounting for one degraded-mode query. When a caller passes a
/// QueryStats out-param, read paths skip unreadable segments/blocks and
/// count them here instead of throwing — queries return fewer samples,
/// never wrong ones, and `degraded()` says the result is partial.
struct QueryStats {
  std::size_t lost_segments = 0;  ///< segments that vanished or won't open
  std::size_t lost_blocks = 0;    ///< blocks skipped (I/O error or bad CRC)
  /// Decoded-block cache attribution for this query: blocks served from
  /// already-decoded columns vs blocks that had to hit disk + decode.
  /// Purely informational — does not affect degraded().
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Read-tier attribution: blocks whose bytes came from an mmap'd
  /// segment view (warm) vs a buffered `read_range` (cold). A cache hit
  /// increments neither — no bytes were read. Local-only: the wire
  /// stats block stays the four counters above, so these never leave
  /// the process.
  std::size_t warm_blocks = 0;
  std::size_t cold_blocks = 0;

  [[nodiscard]] bool degraded() const {
    return lost_segments + lost_blocks > 0;
  }
  void merge(const QueryStats& o) {
    lost_segments += o.lost_segments;
    lost_blocks += o.lost_blocks;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    warm_blocks += o.warm_blocks;
    cold_blocks += o.cold_blocks;
  }
};

/// Manifest-level description of one sealed segment.
struct SegmentMeta {
  std::string file;       ///< filename relative to the store root
  std::int64_t day = 0;   ///< day partition (first event's t / kDay)
  std::uint64_t events = 0;
  std::uint64_t bytes = 0;  ///< whole-file size incl. header/footer
  util::TimeSec t_min = 0;
  util::TimeSec t_max = 0;
};

void put_u32le(std::uint32_t v, std::vector<std::uint8_t>& out);
void put_u64le(std::uint64_t v, std::vector<std::uint8_t>& out);
[[nodiscard]] std::uint32_t get_u32le(std::span<const std::uint8_t> in);
[[nodiscard]] std::uint64_t get_u64le(std::span<const std::uint8_t> in);

/// Serialize / parse the footer payload (directory only, no trailer).
/// `parse_footer` throws StoreError on malformed input.
[[nodiscard]] std::vector<std::uint8_t> encode_footer(
    const std::vector<BlockMeta>& blocks);
[[nodiscard]] std::vector<BlockMeta> parse_footer(
    std::span<const std::uint8_t> payload);

}  // namespace exawatt::store
