#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/format.hpp"
#include "util/sim_time.hpp"
#include "util/thread_pool.hpp"
#include "util/vfs.hpp"

namespace exawatt::store {

/// Time-tiered retention: everything with t < `drop_before` has aged out
/// of the store. 0 keeps the full horizon (the paper's "multi-year at
/// full resolution" default); operators move the cutoff forward as the
/// archive tier takes over.
struct RetentionPolicy {
  util::TimeSec drop_before = 0;

  [[nodiscard]] bool keeps(util::TimeSec t) const { return t >= drop_before; }
};

/// Knobs for one compaction pass.
struct CompactionOptions {
  RetentionPolicy retention;
  /// A sealed segment with fewer events than this is "small" — a merge
  /// candidate. Matches StoreOptions::segment_events by default, so
  /// flush-tail fragments and rebalance leftovers get folded in.
  std::uint64_t small_segment_events = 1 << 18;
  /// Merge a day's smalls only when at least this many would combine;
  /// a lone small segment is left alone (no write amplification) unless
  /// retention forces a rewrite anyway.
  std::size_t min_merge_inputs = 2;
  /// Decode fan-out for merge rounds; nullptr → the process-global pool.
  util::ThreadPool* pool = nullptr;
};

/// One planned merge: the named input segments of one day-partition
/// rewrite into a single fresh segment (re-sorted, retention-filtered).
struct CompactionRound {
  std::int64_t day = 0;
  std::vector<std::string> inputs;  ///< manifest file names
};

/// A pure function of the manifest directory — computed up front so the
/// crash sweep and the unit tests can assert on intent without doing
/// any I/O.
struct CompactionPlan {
  /// Segments whose every event has aged out: dropped whole, no rewrite.
  std::vector<std::string> drop;
  std::vector<CompactionRound> rounds;

  [[nodiscard]] bool empty() const { return drop.empty() && rounds.empty(); }
};

[[nodiscard]] CompactionPlan plan_compaction(
    const std::vector<SegmentMeta>& directory, const CompactionOptions& opts);

/// What one `Store::compact` pass did.
struct CompactionReport {
  std::size_t dropped_segments = 0;  ///< aged out whole (incl. empty rounds)
  std::size_t rounds = 0;            ///< merges that produced an output
  std::size_t rounds_skipped = 0;    ///< rounds abandoned on damaged input
  std::size_t merged_inputs = 0;     ///< input segments consumed by rounds
  std::uint64_t events_in = 0;       ///< events read from round inputs
  std::uint64_t events_out = 0;      ///< events written to round outputs
  std::uint64_t events_expired = 0;  ///< dropped by retention (rounds only)
};

/// Durable intent record of one compaction round, saved next to the
/// segments as `<output>.compact` (atomic tmp+rename, CRC'd). States:
///   copying — the round is writing `<output>.incoming`; a crash rolls
///             back (inputs stay authoritative).
///   flipped — the output validated; THE commit point. A crash rolls
///             forward: the output is adopted and the inputs retire.
/// Mirrors the cluster rebalance journal so both crash sweeps share one
/// survivor-subset argument.
struct CompactionJournal {
  enum class State : std::uint8_t { kCopying, kFlipped };

  State state = State::kCopying;
  std::int64_t day = 0;
  std::string output;  ///< final segment file name
  util::TimeSec drop_before = 0;
  std::vector<std::string> inputs;

  [[nodiscard]] std::string encode() const;
  [[nodiscard]] static CompactionJournal decode(const std::string& text);
  /// Journal path for output file `output` under `root`.
  [[nodiscard]] static std::string path_for(const std::string& root,
                                            const std::string& output);
  void save(const std::string& root, util::Vfs& vfs) const;
};

}  // namespace exawatt::store
