#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <vector>
#include <unordered_map>

#include "telemetry/codec.hpp"

namespace exawatt::store {

/// Lifetime totals of one BlockCache (all shards aggregated). Per-query
/// attribution lives in QueryStats; these are the operator-facing gauges
/// the bench/tests read.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< lookups that found nothing
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;       ///< decoded payload bytes resident
  std::uint64_t entries = 0;
};

/// Sharded LRU cache of decoded segment blocks, keyed by (segment id,
/// block index, directory CRC). Dashboard- and replay-style workloads
/// re-scan the same time windows over and over; a hit replaces block
/// read + CRC + varint decode with a binary search over already-decoded
/// columns. The CRC in the key makes entries self-invalidating: recovery
/// rewrites, re-listed segments, or any other content change produce a
/// different CRC and therefore a different key, so a stale entry can
/// never be served — it just ages out of the LRU.
///
/// Eviction is by byte budget (decoded footprint, approximated as 16 B
/// per event plus a fixed per-entry overhead), least-recently-used first,
/// per shard. Shards keep the lock uncontended under the store's
/// thread-pool fan-out. Entries are shared_ptr-owned, so an eviction
/// never invalidates columns a concurrent scan is still reading.
class BlockCache {
 public:
  struct Key {
    std::uint64_t segment = 0;  ///< segment identity (path hash)
    std::uint32_t block = 0;    ///< index in the segment's directory
    std::uint32_t crc = 0;      ///< directory CRC of the encoded bytes
    bool operator==(const Key&) const = default;
  };
  using Columns = std::shared_ptr<const telemetry::DecodeScratch>;

  explicit BlockCache(std::size_t byte_budget, std::size_t shards = 8);

  /// The decoded columns, or nullptr on miss. A hit refreshes recency.
  [[nodiscard]] Columns find(const Key& key);

  /// Insert decoded columns and evict LRU entries over budget. An entry
  /// alone exceeding its shard's budget is not cached. Re-inserting a
  /// live key replaces the entry.
  void insert(const Key& key, Columns columns);

  [[nodiscard]] std::size_t byte_budget() const { return budget_; }
  [[nodiscard]] CacheCounters counters() const;

  /// Budget accounting for one entry.
  [[nodiscard]] static std::size_t entry_bytes(
      const telemetry::DecodeScratch& columns) {
    return columns.footprint_bytes() + kEntryOverhead;
  }

 private:
  static constexpr std::size_t kEntryOverhead = 64;

  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.segment;
      h ^= (static_cast<std::uint64_t>(k.block) << 32 | k.crc) +
           0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    Key key;
    Columns columns;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_of(const Key& key) {
    return shards_[KeyHash{}(key) % shards_.size()];
  }

  std::size_t budget_;
  std::size_t shard_budget_;
  std::vector<Shard> shards_;
};

}  // namespace exawatt::store
