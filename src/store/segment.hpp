#pragma once

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "store/format.hpp"
#include "ts/series.hpp"
#include "util/vfs.hpp"

namespace exawatt::store {

/// Builds one sealed segment file. Events are buffered in memory, then
/// `seal()` sorts them by (metric, time), chunks each metric run into
/// blocks of at most `block_events`, encodes every block with the
/// telemetry codec (delta + zigzag + varint + RLE) and writes
/// header / blocks / footer in one pass. Everything before a completed
/// seal is the "unsealed tail" the crash-safety contract allows losing.
///
/// All file I/O goes through the Vfs seam (`vfs` defaults to the real
/// filesystem). A failed seal throws util::VfsError and leaves the
/// writer reusable — the buffer is intact, so the store's retry policy
/// can simply call `seal()` again after a transient fault.
class SegmentWriter {
 public:
  SegmentWriter(std::string path, std::int64_t day,
                std::size_t block_events = 4096, util::Vfs* vfs = nullptr);

  void add(std::vector<telemetry::MetricEvent> events);
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  /// Write the file; the writer is spent after a *successful* seal.
  /// Throws StoreError on misuse (empty, sealed twice) and util::VfsError
  /// when the filesystem write fails. `meta.file` is the full path passed
  /// in; callers relativize it for the manifest.
  [[nodiscard]] SegmentMeta seal();

 private:
  std::string path_;
  std::int64_t day_;
  std::size_t block_events_;
  util::Vfs* vfs_;
  std::vector<telemetry::MetricEvent> buffer_;
  bool sealed_ = false;
};

/// Read side of one sealed segment: the constructor validates header and
/// footer (magic, version, CRC, directory sanity) and throws StoreError on
/// any damage — this is the recovery check that drops crashed tails.
/// Block payloads are read lazily per scan and verified against their
/// directory CRC. All scan methods are const and stateless over the Vfs,
/// so one reader can serve parallel queries.
class SegmentReader {
 public:
  explicit SegmentReader(std::string path, util::Vfs* vfs = nullptr);

  [[nodiscard]] const std::vector<BlockMeta>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t file_bytes() const { return file_bytes_; }
  /// Half-open [min event time, max event time + 1).
  [[nodiscard]] util::TimeRange bounds() const { return bounds_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Decode one block, verifying its CRC; throws StoreError on damage.
  [[nodiscard]] std::vector<telemetry::MetricEvent> read_block(
      const BlockMeta& block) const;

  /// Append samples of `id` with t in `range` to `out`, in time order
  /// (blocks of one metric are laid out time-sorted). Only blocks whose
  /// [t_min, t_max] intersects `range` are read — the predicate pushdown.
  /// With `stats == nullptr` any damage throws StoreError (the strict
  /// contract); with stats, damaged blocks are skipped and counted — the
  /// degraded read path.
  void scan(telemetry::MetricId id, util::TimeRange range,
            std::vector<ts::Sample>& out, QueryStats* stats = nullptr) const;

  /// Multi-metric variant for fan-out queries: one pass over the block
  /// directory, appending to `out[id]` for every id in `ids`.
  void scan_set(const std::unordered_set<telemetry::MetricId>& ids,
                util::TimeRange range,
                std::map<telemetry::MetricId, std::vector<ts::Sample>>& out,
                QueryStats* stats = nullptr) const;

 private:
  [[nodiscard]] bool block_overlaps(const BlockMeta& b,
                                    util::TimeRange range) const {
    return b.t_min < range.end && range.begin <= b.t_max;
  }
  /// True when the whole segment file is gone — one lost segment, not one
  /// lost block per directory entry.
  [[nodiscard]] bool note_if_vanished(QueryStats& stats) const;

  std::string path_;
  util::Vfs* vfs_;
  std::vector<BlockMeta> blocks_;
  std::uint64_t events_ = 0;
  std::uint64_t file_bytes_ = 0;
  util::TimeRange bounds_{0, 0};
};

}  // namespace exawatt::store
