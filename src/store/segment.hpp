#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "store/block_cache.hpp"
#include "store/format.hpp"
#include "ts/series.hpp"
#include "util/vfs.hpp"

namespace exawatt::store {

/// Builds one sealed segment file. Events are buffered in memory, then
/// `seal()` sorts them by (metric, time), chunks each metric run into
/// blocks of at most `block_events`, encodes every block with the
/// telemetry codec (delta + zigzag + varint + RLE) and writes
/// header / blocks / footer in one pass. Everything before a completed
/// seal is the "unsealed tail" the crash-safety contract allows losing.
///
/// All file I/O goes through the Vfs seam (`vfs` defaults to the real
/// filesystem). A failed seal throws util::VfsError and leaves the
/// writer reusable — the buffer is intact, so the store's retry policy
/// can simply call `seal()` again after a transient fault.
class SegmentWriter {
 public:
  SegmentWriter(std::string path, std::int64_t day,
                std::size_t block_events = 4096, util::Vfs* vfs = nullptr);

  void add(std::vector<telemetry::MetricEvent> events);
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

  /// Write the file; the writer is spent after a *successful* seal.
  /// Throws StoreError on misuse (empty, sealed twice) and util::VfsError
  /// when the filesystem write fails. `meta.file` is the full path passed
  /// in; callers relativize it for the manifest.
  [[nodiscard]] SegmentMeta seal();

 private:
  std::string path_;
  std::int64_t day_;
  std::size_t block_events_;
  util::Vfs* vfs_;
  std::vector<telemetry::MetricEvent> buffer_;
  bool sealed_ = false;
};

/// Read side of one sealed segment: the constructor validates header and
/// footer (magic, version, CRC, directory sanity) and throws StoreError on
/// any damage — this is the recovery check that drops crashed tails.
/// Block payloads are read lazily per scan and verified against their
/// directory CRC. All scan methods are const and stateless over the Vfs,
/// so one reader can serve parallel queries.
class SegmentReader {
 public:
  /// With `map_file`, the reader asks the Vfs for an mmap'd view of the
  /// whole segment and serves every block read from it (the warm tier):
  /// zero-copy spans, no per-block open/seek, and immunity to a
  /// concurrent unlink (the compactor retires inputs under live
  /// queries). Mapping failure — unsupported Vfs or a VfsError — falls
  /// back to buffered reads silently; the tier is an optimization, not
  /// a correctness surface.
  explicit SegmentReader(std::string path, util::Vfs* vfs = nullptr,
                         bool map_file = false);

  [[nodiscard]] const std::vector<BlockMeta>& blocks() const {
    return blocks_;
  }
  /// True when block reads are served from an mmap'd view (warm tier).
  [[nodiscard]] bool mapped() const { return mapping_ != nullptr; }
  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t file_bytes() const { return file_bytes_; }
  /// Half-open [min event time, max event time + 1).
  [[nodiscard]] util::TimeRange bounds() const { return bounds_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Decode one block, verifying its CRC; throws StoreError on damage.
  [[nodiscard]] std::vector<telemetry::MetricEvent> read_block(
      const BlockMeta& block) const;

  /// Blocks of `id` whose [t_min, t_max] intersects `range` — exactly
  /// the blocks `scan` of the same (id, range) would read. Pure
  /// directory arithmetic (no I/O): the deterministic unit the QoS cost
  /// model prices admission with.
  [[nodiscard]] std::uint64_t count_blocks(telemetry::MetricId id,
                                           util::TimeRange range) const;

  /// Append samples of `id` with t in `range` to `out`, in time order
  /// (blocks of one metric are laid out time-sorted). Only blocks whose
  /// [t_min, t_max] intersects `range` are read — the predicate pushdown.
  /// With `stats == nullptr` any damage throws StoreError (the strict
  /// contract); with stats, damaged blocks are skipped and counted — the
  /// degraded read path. With a `cache`, blocks are served from / decoded
  /// into it (a hit touches no disk); without one, the fused
  /// decode-filter kernel appends straight from the compressed bytes.
  void scan(telemetry::MetricId id, util::TimeRange range,
            std::vector<ts::Sample>& out, QueryStats* stats = nullptr,
            BlockCache* cache = nullptr) const;

  /// Multi-metric variant for fan-out queries: one pass over the block
  /// directory, appending to `out[id]` for every id in `ids`.
  void scan_set(const std::unordered_set<telemetry::MetricId>& ids,
                util::TimeRange range,
                std::map<telemetry::MetricId, std::vector<ts::Sample>>& out,
                QueryStats* stats = nullptr, BlockCache* cache = nullptr) const;

  /// Fused decode-aggregate scan: accumulate `id`'s events in `range`
  /// onto the window grid (sums[w] += value, ++counts[w] for
  /// w = (t - range.begin) / window) without materializing events —
  /// cache hits accumulate from decoded columns, misses run the codec's
  /// decode_sum_into on the compressed bytes. Same degradation contract
  /// as scan; a block that fails mid-accumulate is rolled back before it
  /// is counted lost, so degraded grids never hold partial contributions.
  void scan_sum(telemetry::MetricId id, util::TimeRange range,
                util::TimeSec window, std::span<double> sums,
                std::span<std::uint64_t> counts, QueryStats* stats = nullptr,
                BlockCache* cache = nullptr) const;

  /// Zero-copy piece scan for the wire path: `id`'s overlapping blocks
  /// in time order, each emitted either *raw* — a CRC-verified span of
  /// still-encoded bytes plus its event count, handed to `on_raw` — or
  /// *loose* — decoded samples appended to `loose`. A block goes raw
  /// only when it lies entirely inside `range` (every event survives
  /// the filter, so re-encoding is pure waste); boundary blocks decode
  /// through the normal filter into `loose`. `scratch` backs the raw
  /// span for cold (unmapped) reads — valid until the next emission.
  /// `on_raw` returning false stops the scan (returns false). Damage
  /// follows the scan() contract: strict throw without `stats`, skip
  /// and count with.
  bool scan_pieces(
      telemetry::MetricId id, util::TimeRange range,
      const std::function<bool(std::span<const std::uint8_t>, std::uint32_t)>&
          on_raw,
      std::vector<ts::Sample>& loose, QueryStats* stats,
      std::vector<std::uint8_t>& scratch) const;

 private:
  [[nodiscard]] bool block_overlaps(const BlockMeta& b,
                                    util::TimeRange range) const {
    return b.t_min < range.end && range.begin <= b.t_max;
  }
  /// True when the whole segment file is gone — one lost segment, not one
  /// lost block per directory entry.
  [[nodiscard]] bool note_if_vanished(QueryStats& stats) const;

  /// Raw encoded bytes of one block, CRC-verified (no decode).
  [[nodiscard]] telemetry::EncodedBlock read_block_bytes(
      const BlockMeta& block) const;

  /// Tier-dispatching raw block access: a zero-copy slice of the mapped
  /// view (warm) or a buffered read into `scratch` (cold), CRC-verified
  /// either way, with the matching QueryStats tier counter bumped.
  /// Throws StoreError on damage. The span is valid while `scratch` and
  /// the mapping are.
  [[nodiscard]] std::span<const std::uint8_t> block_span(
      const BlockMeta& block, std::vector<std::uint8_t>& scratch,
      QueryStats* stats) const;

  /// Scan one block (by directory index) into `out`, honoring the
  /// degradation contract: on damage the partial append is rolled back,
  /// then rethrown (strict) or counted in `stats` (degraded).
  void scan_block_into(std::size_t index, util::TimeRange range,
                       std::vector<ts::Sample>& out, QueryStats* stats,
                       BlockCache* cache) const;

  /// Block `index` as decoded columns via the cache: hit returns the
  /// resident entry, miss reads + decodes + inserts. Throws StoreError on
  /// any damage (I/O, CRC, malformed stream, count mismatch).
  [[nodiscard]] BlockCache::Columns cached_block(BlockCache& cache,
                                                 std::size_t index,
                                                 QueryStats* stats) const;

  /// Directory indices of `id`'s blocks in time order — binary search
  /// over the id-sorted index instead of a linear pass over the whole
  /// directory (thousands of entries per segment at BMC metric counts).
  [[nodiscard]] std::span<const std::uint32_t> blocks_of(
      telemetry::MetricId id) const;

  std::string path_;
  util::Vfs* vfs_;
  std::shared_ptr<util::VfsMapping> mapping_;  ///< non-null = warm tier
  std::vector<BlockMeta> blocks_;
  /// Directory indices sorted by (metric id, directory order) — the
  /// per-metric lookup index behind `blocks_of`.
  std::vector<std::uint32_t> by_id_;
  std::uint64_t events_ = 0;
  std::uint64_t file_bytes_ = 0;
  util::TimeRange bounds_{0, 0};
  std::uint64_t cache_segment_id_ = 0;  ///< FNV-1a of path_ (cache key)
};

}  // namespace exawatt::store
