#include "store/compactor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

#include "store/manifest.hpp"
#include "store/segment.hpp"
#include "store/store.hpp"
#include "util/crc32.hpp"
#include "util/parallel.hpp"
#include "util/retry.hpp"

namespace exawatt::store {

namespace {

constexpr const char* kMagicLine = "exawatt-compact 1";
constexpr const char* kJournalSuffix = ".compact";

[[nodiscard]] std::string rest_of(const std::string& line,
                                  const std::string& tag) {
  const std::string prefix = tag + " ";
  if (line.size() <= prefix.size() ||
      line.compare(0, prefix.size(), prefix) != 0) {
    throw StoreError("compaction journal: malformed line: " + line);
  }
  return line.substr(prefix.size());
}

}  // namespace

// -------------------------------------------------------------- planning

CompactionPlan plan_compaction(const std::vector<SegmentMeta>& directory,
                               const CompactionOptions& opts) {
  CompactionPlan plan;
  const util::TimeSec cutoff = opts.retention.drop_before;
  std::map<std::int64_t, CompactionRound> rounds;
  std::map<std::int64_t, bool> forced;
  for (const auto& meta : directory) {
    // Every event at or past t_max has aged out → the whole segment has.
    if (cutoff > 0 && meta.t_max < cutoff) {
      plan.drop.push_back(meta.file);
      continue;
    }
    const bool small = meta.events < opts.small_segment_events;
    // A segment straddling the cutoff must rewrite to shed its expired
    // prefix, regardless of size or how many neighbors it has.
    const bool straddles = cutoff > 0 && meta.t_min < cutoff;
    if (!small && !straddles) continue;
    auto& round = rounds[meta.day];
    round.day = meta.day;
    round.inputs.push_back(meta.file);
    if (straddles) forced[meta.day] = true;
  }
  for (auto& [day, round] : rounds) {
    // A lone small segment is left alone — merging it with nothing is
    // pure write amplification — unless retention forces the rewrite.
    if (!forced[day] && round.inputs.size() < opts.min_merge_inputs) {
      continue;
    }
    plan.rounds.push_back(std::move(round));
  }
  return plan;
}

// --------------------------------------------------------------- journal

std::string CompactionJournal::path_for(const std::string& root,
                                        const std::string& output) {
  return root + "/" + output + kJournalSuffix;
}

std::string CompactionJournal::encode() const {
  std::ostringstream body;
  body << kMagicLine << '\n';
  body << "state " << (state == State::kFlipped ? "flipped" : "copying")
       << '\n';
  body << "day " << day << '\n';
  body << "output " << output << '\n';
  body << "drop_before " << drop_before << '\n';
  for (const auto& in : inputs) body << "input " << in << '\n';
  const std::string payload = body.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08" PRIx32 "\n",
                util::crc32(payload));
  return payload + crc_line;
}

CompactionJournal CompactionJournal::decode(const std::string& text) {
  const std::size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      text[crc_pos - 1] != '\n') {
    throw StoreError("compaction journal: missing crc line");
  }
  const std::string payload = text.substr(0, crc_pos);
  std::uint32_t want = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %" SCNx32, &want) != 1 ||
      util::crc32(payload) != want) {
    throw StoreError("compaction journal: checksum mismatch");
  }
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != kMagicLine) {
    throw StoreError("compaction journal: bad magic line");
  }
  CompactionJournal j;
  if (!std::getline(in, line)) {
    throw StoreError("compaction journal: truncated");
  }
  const std::string state = rest_of(line, "state");
  if (state == "copying") {
    j.state = State::kCopying;
  } else if (state == "flipped") {
    j.state = State::kFlipped;
  } else {
    throw StoreError("compaction journal: unknown state: " + state);
  }
  if (!std::getline(in, line)) {
    throw StoreError("compaction journal: truncated");
  }
  j.day = std::stoll(rest_of(line, "day"));
  if (!std::getline(in, line)) {
    throw StoreError("compaction journal: truncated");
  }
  j.output = rest_of(line, "output");
  if (!std::getline(in, line)) {
    throw StoreError("compaction journal: truncated");
  }
  j.drop_before = std::stoll(rest_of(line, "drop_before"));
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    j.inputs.push_back(rest_of(line, "input"));
  }
  if (j.output.empty() || j.inputs.empty()) {
    throw StoreError("compaction journal: missing output/inputs");
  }
  return j;
}

void CompactionJournal::save(const std::string& root, util::Vfs& vfs) const {
  const std::string path = path_for(root, output);
  const std::string tmp = path + ".tmp";
  auto out = vfs.create(tmp);
  out->write_text(encode());
  out->close();
  vfs.rename(tmp, path);
}

// ------------------------------------------------------- Store::compact

CompactionReport Store::compact(const CompactionOptions& opts) {
  // Passes serialize against each other; queries and appends keep
  // running — every mutation of the live set happens under *mu_ and
  // in-flight snapshots keep their refcounted segments alive.
  std::lock_guard<std::mutex> compact_lock(*compact_mu_);
  CompactionReport report;
  reap();

  CompactionPlan plan;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    // A journal on disk that no graveyard entry explains is a previous
    // pass that died between its commit point and its cleanup: starting
    // a new pass over the same inputs could duplicate events. Recovery
    // (reopen) replays it; refuse until then.
    std::vector<std::string> names;
    try {
      names = vfs_->list(root_);
    } catch (const util::VfsError& e) {
      throw StoreError("store: cannot list root " + root_ + ": " + e.what());
    }
    for (const auto& name : names) {
      if (!name.ends_with(kJournalSuffix)) continue;
      const std::string jpath = root_ + "/" + name;
      const bool tracked = std::any_of(
          graveyard_.begin(), graveyard_.end(),
          [&](const Grave& g) { return g.journal == jpath; });
      if (!tracked) {
        throw StoreError(
            "compact: unfinished compaction journal present (" + name +
            ") — reopen the store to recover");
      }
    }
    std::vector<SegmentMeta> dir;
    dir.reserve(segments_.size());
    for (const auto& s : segments_) dir.push_back(s->meta);
    plan = plan_compaction(dir, opts);
  }
  if (plan.empty()) return report;

  // Retire the named segments from the live set + manifest in one locked
  // step; their files stay until reap() sees the last reader gone.
  auto retire_locked = [&](const std::vector<std::string>& files,
                           const std::string& journal) {
    for (const auto& file : files) {
      const auto it = std::find_if(
          segments_.begin(), segments_.end(),
          [&](const std::shared_ptr<const LiveSegment>& s) {
            return s->meta.file == file;
          });
      if (it == segments_.end()) continue;
      sealed_events_ -= (*it)->meta.events;
      stored_bytes_ -= (*it)->meta.bytes;
      graveyard_.push_back({*it, root_ + "/" + file, journal});
      segments_.erase(it);
    }
  };

  if (!plan.drop.empty()) {
    std::lock_guard<std::mutex> lock(*mu_);
    retire_locked(plan.drop, "");
    save_manifest_locked();
    report.dropped_segments += plan.drop.size();
  }

  util::ThreadPool& pool =
      opts.pool != nullptr ? *opts.pool : util::ThreadPool::global();

  for (const auto& round : plan.rounds) {
    // Resolve the planned inputs against the current live set — an input
    // another caller retired since planning just shrinks the round.
    std::vector<std::shared_ptr<const LiveSegment>> inputs;
    {
      std::lock_guard<std::mutex> lock(*mu_);
      for (const auto& file : round.inputs) {
        const auto it = std::find_if(
            segments_.begin(), segments_.end(),
            [&](const std::shared_ptr<const LiveSegment>& s) {
              return s->meta.file == file;
            });
        if (it != segments_.end()) inputs.push_back(*it);
      }
    }
    if (inputs.empty()) {
      ++report.rounds_skipped;
      continue;
    }

    // Decode every input strictly (merge must never launder damage into
    // a "clean" output); one damaged input abandons the round, leaving
    // the day exactly as it was.
    struct Decoded {
      std::vector<telemetry::MetricEvent> events;
      bool ok = true;
    };
    auto decoded = util::parallel_map(
        inputs.size(),
        [&](std::size_t i) {
          Decoded d;
          try {
            const SegmentReader& r = inputs[i]->reader;
            d.events.reserve(static_cast<std::size_t>(r.events()));
            for (const auto& b : r.blocks()) {
              const auto evs = r.read_block(b);
              d.events.insert(d.events.end(), evs.begin(), evs.end());
            }
          } catch (const StoreError&) {
            d.ok = false;
          }
          return d;
        },
        pool);
    if (std::any_of(decoded.begin(), decoded.end(),
                    [](const Decoded& d) { return !d.ok; })) {
      ++report.rounds_skipped;
      continue;
    }

    std::size_t events_in = 0;
    for (const auto& d : decoded) events_in += d.events.size();
    report.events_in += events_in;

    std::vector<telemetry::MetricEvent> keep;
    keep.reserve(events_in);
    for (const auto& d : decoded) {
      for (const auto& ev : d.events) {
        if (opts.retention.keeps(ev.t)) keep.push_back(ev);
      }
    }
    report.events_expired += events_in - keep.size();

    std::vector<std::string> input_files;
    input_files.reserve(inputs.size());
    for (const auto& in : inputs) input_files.push_back(in->meta.file);

    if (keep.empty()) {
      // Retention emptied the whole round: retire the inputs outright,
      // same crash shape as a planned drop (a crash can only resurrect
      // already-expired data, never lose live data).
      std::lock_guard<std::mutex> lock(*mu_);
      retire_locked(input_files, "");
      save_manifest_locked();
      report.dropped_segments += input_files.size();
      continue;
    }

    std::string out_name;
    {
      std::lock_guard<std::mutex> lock(*mu_);
      out_name = next_segment_name(round.day);
    }
    const std::string jpath = CompactionJournal::path_for(root_, out_name);
    const std::string incoming = root_ + "/" + out_name + ".incoming";
    const std::string final_path = root_ + "/" + out_name;

    CompactionJournal j;
    j.state = CompactionJournal::State::kCopying;
    j.day = round.day;
    j.output = out_name;
    j.drop_before = opts.retention.drop_before;
    j.inputs = input_files;

    bool flipped = false;
    try {
      j.save(root_, *vfs_);
      SegmentWriter writer(incoming, round.day, options_.block_events, vfs_);
      const std::uint64_t events_out = keep.size();
      writer.add(std::move(keep));
      SegmentMeta meta =
          util::retry_transient(options_.retry, *clock_, retry_rng_,
                                [&] { return writer.seal(); });
      // Validate through a full reader before committing — the flip must
      // only ever point at a segment recovery would accept.
      {
        SegmentReader check(incoming, vfs_);
        if (check.events() != events_out) {
          throw StoreError("compaction output event count mismatch: " +
                           incoming);
        }
      }
      j.state = CompactionJournal::State::kFlipped;
      j.save(root_, *vfs_);  // THE commit point
      flipped = true;

      vfs_->rename(incoming, final_path);
      SegmentReader reader(final_path, vfs_, options_.mmap_segments);
      meta.file = out_name;
      {
        std::lock_guard<std::mutex> lock(*mu_);
        retire_locked(input_files, jpath);
        adopt_locked(std::move(meta), std::move(reader));
        save_manifest_locked();
      }
      ++report.rounds;
      report.merged_inputs += input_files.size();
      report.events_out += events_out;
    } catch (const util::VfsError& e) {
      if (!flipped) {
        // Uncommitted: discard the partial output and the journal; the
        // inputs were never touched. Best-effort — under a simulated
        // crash every later write also fails and recovery rolls back.
        try {
          if (vfs_->exists(incoming)) vfs_->remove(incoming);
        } catch (const util::VfsError&) {
        }
        try {
          if (vfs_->exists(jpath)) vfs_->remove(jpath);
        } catch (const util::VfsError&) {
        }
      }
      // Committed-but-unfinished stays on disk: the flipped journal is
      // the recovery contract, and the inputs are still live in this
      // process, so nothing is lost either way.
      throw StoreError(std::string("compaction round failed: ") + e.what());
    } catch (const StoreError&) {
      if (!flipped) {
        try {
          if (vfs_->exists(incoming)) vfs_->remove(incoming);
        } catch (const util::VfsError&) {
        }
        try {
          if (vfs_->exists(jpath)) vfs_->remove(jpath);
        } catch (const util::VfsError&) {
        }
      }
      throw;
    }
  }

  reap();
  return report;
}

// ------------------------------------------- Store::recover_compactions

void Store::recover_compactions() {
  std::vector<std::string> names;
  try {
    names = vfs_->list(root_);
  } catch (const util::VfsError&) {
    return;  // recover() reports the listing failure with context
  }

  for (const std::string& name : names) {
    // Torn journal saves: the tmp never became the journal, so the round
    // it described never committed. Sweep it.
    if (name.ends_with(std::string(".compact") + ".tmp")) {
      try {
        vfs_->remove(root_ + "/" + name);
      } catch (const util::VfsError&) {
      }
    }
  }

  for (const std::string& name : names) {
    if (!name.ends_with(".compact")) continue;
    const std::string jpath = root_ + "/" + name;

    CompactionJournal j;
    bool valid = true;
    try {
      const auto bytes = vfs_->read_all(jpath);
      j = CompactionJournal::decode(std::string(bytes.begin(), bytes.end()));
    } catch (const StoreError&) {
      valid = false;
    } catch (const util::VfsError&) {
      valid = false;
    }
    // The journal is named after its output, so even an unreadable one
    // tells us which .incoming to discard.
    const std::string output =
        valid ? j.output : name.substr(0, name.size() - 8);
    const std::string incoming = root_ + "/" + output + ".incoming";
    const std::string final_path = root_ + "/" + output;

    auto rollback = [&] {
      try {
        if (vfs_->exists(incoming)) vfs_->remove(incoming);
      } catch (const util::VfsError&) {
      }
      try {
        if (vfs_->exists(jpath)) vfs_->remove(jpath);
      } catch (const util::VfsError&) {
      }
      ++recovery_.compactions_rolled_back;
    };

    if (!valid || j.state == CompactionJournal::State::kCopying) {
      rollback();
      continue;
    }

    // Flipped: the output was sealed and validated before the commit
    // point, so roll forward — finish the rename, then retire the input
    // files. Each step checks before acting; a crash mid-replay replays
    // cleanly next open.
    try {
      if (vfs_->exists(incoming) && !vfs_->exists(final_path)) {
        vfs_->rename(incoming, final_path);
      }
      bool final_ok = false;
      if (vfs_->exists(final_path)) {
        try {
          SegmentReader check(final_path, vfs_);
          final_ok = check.events() > 0 || check.blocks().empty();
        } catch (const StoreError&) {
          final_ok = false;
        }
      }
      if (final_ok) {
        for (const auto& in : j.inputs) {
          const std::string path = root_ + "/" + in;
          if (vfs_->exists(path)) vfs_->remove(path);
        }
        if (vfs_->exists(jpath)) vfs_->remove(jpath);
        ++recovery_.compactions_finished;
      } else {
        // The committed output is gone or damaged (bit rot after
        // validation). Keep the inputs — they still hold every event —
        // and set a damaged output aside for the autopsy.
        if (vfs_->exists(final_path)) {
          try {
            vfs_->rename(final_path, final_path + ".bad");
          } catch (const util::VfsError&) {
          }
        }
        rollback();
      }
    } catch (const util::VfsError&) {
      // Leave the journal in place: the next open replays it.
    }
  }
}

}  // namespace exawatt::store
