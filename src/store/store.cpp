#include "store/store.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "store/manifest.hpp"
#include "util/parallel.hpp"

namespace exawatt::store {

namespace {

/// Parse the sequence number out of "seg%08llu_day%05lld.seg"-style names.
bool parse_seq(const std::string& name, std::uint64_t& seq) {
  return std::sscanf(name.c_str(), "seg%" SCNu64, &seq) == 1;
}

}  // namespace

Store::Store(std::string root, StoreOptions options)
    : root_(std::move(root)),
      options_(options),
      vfs_(options.vfs != nullptr ? options.vfs : &util::Vfs::real()),
      clock_(options.clock != nullptr ? options.clock
                                      : &util::Clock::steady()),
      retry_rng_(options.retry_seed),
      mu_(std::make_unique<std::mutex>()),
      compact_mu_(std::make_unique<std::mutex>()) {
  if (options_.segment_events == 0 || options_.block_events == 0) {
    throw StoreError("store: segment_events/block_events must be positive");
  }
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<BlockCache>(options_.cache_bytes);
  }
}

Store Store::open(const std::string& root, StoreOptions options) {
  Store s(root, options);
  s.recover();
  return s;
}

Store::~Store() {
  if (mu_ == nullptr) return;  // moved-from shell
  try {
    flush();
  } catch (...) {
    // Destructor flush is best-effort; data not sealed here is exactly the
    // "unsealed tail" the crash-safety contract already allows losing.
  }
  try {
    reap();
  } catch (...) {
    // Likewise: an undeleted retired file is re-reaped next open.
  }
}

Store::SegmentSnapshot Store::snapshot() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return segments_;
}

void Store::adopt_locked(SegmentMeta meta, SegmentReader reader) {
  sealed_events_ += meta.events;
  stored_bytes_ += meta.bytes;
  segments_.push_back(std::make_shared<const LiveSegment>(
      LiveSegment{std::move(meta), std::move(reader)}));
}

void Store::recover() {
  try {
    vfs_->mkdirs(root_);
  } catch (const util::VfsError& e) {
    throw StoreError("store: cannot create root " + root_ + ": " + e.what());
  }

  // Crashed compactions replay first: a rolled-forward output must retire
  // its inputs before the manifest loop and orphan sweep run, or the same
  // events would be adopted twice (inputs from the manifest, output as an
  // orphan).
  recover_compactions();

  // Best-effort quarantine of a damaged segment; never escalates — a
  // set-aside that fails just leaves the corrupt file for the next sweep.
  auto set_aside = [&](const std::string& path) {
    try {
      vfs_->rename(path, path + ".bad");
    } catch (const util::VfsError&) {
    }
  };

  Manifest manifest;
  bool have_manifest = false;
  bool changed = false;
  try {
    have_manifest = Manifest::load(root_, manifest, vfs_);
  } catch (const StoreError&) {
    // Torn or edited manifest: rebuild it from the segment files — every
    // sealed segment self-validates, so nothing sealed is lost.
    recovery_.manifest_rebuilt = true;
    changed = true;
  }

  std::lock_guard<std::mutex> lock(*mu_);
  std::set<std::string> listed;
  for (auto& meta : manifest.segments) {
    const std::string path = root_ + "/" + meta.file;
    listed.insert(meta.file);
    if (!vfs_->exists(path)) {
      ++recovery_.dropped_missing;
      changed = true;
      continue;
    }
    try {
      SegmentReader reader(path, vfs_, options_.mmap_segments);
      if (reader.events() != meta.events ||
          reader.file_bytes() != meta.bytes) {
        throw StoreError("segment disagrees with manifest: " + path);
      }
      adopt_locked(std::move(meta), std::move(reader));
    } catch (const StoreError&) {
      ++recovery_.dropped_corrupt;
      changed = true;
      set_aside(path);
    }
  }

  // Sweep for segments the manifest does not know: a crash between seal
  // and manifest rename leaves a valid orphan (adopt it); a crash mid-seal
  // leaves a truncated one (drop it).
  std::vector<std::string> names;
  try {
    names = vfs_->list(root_);
  } catch (const util::VfsError& e) {
    throw StoreError("store: cannot list root " + root_ + ": " + e.what());
  }
  for (const std::string& name : names) {
    std::uint64_t seq = 0;
    if (parse_seq(name, seq)) next_seq_ = std::max(next_seq_, seq + 1);
    if (!name.ends_with(".seg") || listed.count(name) > 0) continue;
    const std::string path = root_ + "/" + name;
    try {
      SegmentReader reader(path, vfs_, options_.mmap_segments);
      SegmentMeta meta;
      meta.file = name;
      meta.day = reader.blocks().empty()
                     ? 0
                     : reader.bounds().begin / util::kDay;
      meta.events = reader.events();
      meta.bytes = reader.file_bytes();
      meta.t_min = reader.bounds().begin;
      meta.t_max = reader.bounds().end - 1;
      adopt_locked(std::move(meta), std::move(reader));
      ++recovery_.adopted_orphans;
      changed = true;
    } catch (const StoreError&) {
      ++recovery_.dropped_corrupt;
      changed = true;
      set_aside(path);
    }
  }

  std::sort(segments_.begin(), segments_.end(),
            [](const std::shared_ptr<const LiveSegment>& a,
               const std::shared_ptr<const LiveSegment>& b) {
              return a->meta.file < b->meta.file;
            });
  recovery_.segments = segments_.size();
  if (changed || !have_manifest) save_manifest_locked();
}

void Store::save_manifest_locked() const {
  Manifest manifest;
  manifest.segments.reserve(segments_.size());
  for (const auto& s : segments_) manifest.segments.push_back(s->meta);
  try {
    util::retry_transient(options_.retry, *clock_, retry_rng_,
                          [&] { manifest.save(root_, vfs_); });
  } catch (const util::VfsError& e) {
    throw StoreError(std::string("manifest: replace failed: ") + e.what());
  }
}

std::string Store::next_segment_name(std::int64_t day) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg%08" PRIu64 "_day%05lld.seg",
                next_seq_++, static_cast<long long>(day));
  return buf;
}

void Store::append(std::vector<telemetry::MetricEvent> events) {
  if (events.empty()) return;
  const std::int64_t day = events.front().t / util::kDay;
  auto& buf = mem_[day];
  buffered_events_ += events.size();
  if (buf.empty()) {
    buf = std::move(events);
  } else {
    buf.insert(buf.end(), events.begin(), events.end());
  }
  if (buf.size() >= options_.segment_events) seal_day(day);
}

void Store::seal_day(std::int64_t day) {
  auto it = mem_.find(day);
  if (it == mem_.end() || it->second.empty()) return;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(*mu_);
    name = next_segment_name(day);
  }
  SegmentWriter writer(root_ + "/" + name, day, options_.block_events, vfs_);
  buffered_events_ -= it->second.size();
  writer.add(std::move(it->second));
  mem_.erase(it);
  // Transient I/O faults re-run the whole seal (the writer keeps its
  // buffer across a failed attempt); permanent ones surface as StoreError
  // and cost exactly this unsealed tail, nothing already durable.
  SegmentMeta meta;
  try {
    meta = util::retry_transient(options_.retry, *clock_, retry_rng_,
                                 [&] { return writer.seal(); });
  } catch (const util::VfsError& e) {
    throw StoreError("segment seal failed for " + name + ": " + e.what());
  }
  meta.file = name;
  // Re-open through the validating reader: the segment must be readable
  // before the manifest is allowed to point at it.
  SegmentReader reader(root_ + "/" + name, vfs_, options_.mmap_segments);
  std::lock_guard<std::mutex> lock(*mu_);
  adopt_locked(std::move(meta), std::move(reader));
  save_manifest_locked();
}

void Store::flush() {
  while (!mem_.empty()) seal_day(mem_.begin()->first);
  reap();
}

std::size_t Store::reap() {
  std::lock_guard<std::mutex> lock(*mu_);
  return reap_locked();
}

std::size_t Store::reap_locked() {
  std::size_t deleted = 0;
  std::vector<std::string> freed_journals;
  for (auto it = graveyard_.begin(); it != graveyard_.end();) {
    // use_count == 1 means only the graveyard pins this segment: every
    // query snapshot that held it has drained, so the file can go.
    if (it->seg.use_count() > 1) {
      ++it;
      continue;
    }
    try {
      if (vfs_->exists(it->path)) vfs_->remove(it->path);
    } catch (const util::VfsError&) {
      // Leave the entry; a later reap (or the next open's journal
      // replay) finishes the sweep.
      ++it;
      continue;
    }
    ++deleted;
    if (!it->journal.empty()) freed_journals.push_back(it->journal);
    it = graveyard_.erase(it);
  }
  // A journal may only disappear after every victim it names is gone —
  // it is what recovery uses to finish deleting them after a crash.
  for (const auto& journal : freed_journals) {
    const bool still_referenced = std::any_of(
        graveyard_.begin(), graveyard_.end(),
        [&](const Grave& g) { return g.journal == journal; });
    if (still_referenced) continue;
    try {
      if (vfs_->exists(journal)) vfs_->remove(journal);
    } catch (const util::VfsError&) {
      // Recovery tolerates a stale journal: replaying it is idempotent.
    }
  }
  return deleted;
}

std::size_t Store::graveyard_size() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return graveyard_.size();
}

std::size_t Store::sealed_segments() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return segments_.size();
}

std::uint64_t Store::total_events() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return sealed_events_ + buffered_events_;
}

std::uint64_t Store::stored_bytes() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return stored_bytes_;
}

std::vector<ts::Sample> Store::query(telemetry::MetricId id,
                                     util::TimeRange range,
                                     QueryStats* stats) const {
  std::vector<ts::Sample> out;
  QueryStats local;
  const SegmentSnapshot segs = snapshot();
  for (const auto& seg : segs) {
    if (!seg->reader.bounds().overlaps(range)) continue;
    seg->reader.scan(id, range, out, &local, cache_.get());
  }
  for (const auto& [day, buf] : mem_) {
    for (const auto& ev : buf) {
      if (ev.id == id && range.contains(ev.t)) {
        out.push_back({ev.t, static_cast<double>(ev.value)});
      }
    }
  }
  std::sort(out.begin(), out.end(), sample_less);
  if (stats != nullptr) stats->merge(local);
  return out;
}

std::vector<MetricRun> Store::query_many(
    std::span<const telemetry::MetricId> ids, util::TimeRange range,
    util::ThreadPool* pool, QueryStats* stats) const {
  const std::unordered_set<telemetry::MetricId> want(ids.begin(), ids.end());
  util::ThreadPool& fan = pool != nullptr ? *pool : util::ThreadPool::global();

  const SegmentSnapshot segs = snapshot();
  std::vector<const LiveSegment*> relevant;
  for (const auto& seg : segs) {
    if (seg->reader.bounds().overlaps(range)) relevant.push_back(seg.get());
  }

  struct Part {
    std::map<telemetry::MetricId, std::vector<ts::Sample>> samples;
    QueryStats stats;
  };
  // Phase A — one task per segment: decode is the expensive part, and
  // segments are independent files, so this is the natural fan-out grain.
  auto parts = util::parallel_map(
      relevant.size(),
      [&](std::size_t i) {
        Part part;
        relevant[i]->reader.scan_set(want, range, part.samples, &part.stats,
                                     cache_.get());
        return part;
      },
      fan);

  QueryStats local;
  for (const auto& part : parts) local.merge(part.stats);

  // The unsealed tail, staged per metric so phase B can splice it in.
  std::unordered_map<telemetry::MetricId, std::vector<ts::Sample>> tail;
  for (const auto& [day, buf] : mem_) {
    for (const auto& ev : buf) {
      if (range.contains(ev.t) && want.count(ev.id) > 0) {
        tail[ev.id].push_back({ev.t, static_cast<double>(ev.value)});
      }
    }
  }

  // Phase B — one task per distinct metric: concatenate that metric's
  // per-segment pieces and sort the run. This is where the serial
  // version spent its time (the merge memcpy plus thousands of per-id
  // sorts ran on one thread after the cheap parallel scans); distinct
  // ids touch disjoint vectors, so the whole merge+sort fans out.
  std::vector<telemetry::MetricId> uniq;
  uniq.reserve(ids.size());
  std::unordered_map<telemetry::MetricId, std::size_t> first_slot;
  first_slot.reserve(ids.size());
  for (const telemetry::MetricId id : ids) {
    if (first_slot.emplace(id, uniq.size()).second) uniq.push_back(id);
  }

  auto runs = util::parallel_map(
      uniq.size(),
      [&](std::size_t k) {
        const telemetry::MetricId id = uniq[k];
        std::vector<ts::Sample> samples;
        std::size_t total = 0;
        for (const auto& part : parts) {
          const auto it = part.samples.find(id);
          if (it != part.samples.end()) total += it->second.size();
        }
        const auto t = tail.find(id);
        if (t != tail.end()) total += t->second.size();
        samples.reserve(total);
        for (auto& part : parts) {
          const auto it = part.samples.find(id);
          if (it == part.samples.end()) continue;
          if (samples.empty()) {
            samples = std::move(it->second);
            samples.reserve(total);
          } else {
            samples.insert(samples.end(), it->second.begin(),
                           it->second.end());
          }
        }
        if (t != tail.end()) {
          samples.insert(samples.end(), t->second.begin(), t->second.end());
        }
        std::sort(samples.begin(), samples.end(), sample_less);
        return samples;
      },
      fan);

  // Phase C — assemble in request order. A duplicate requested id gets
  // the full run again (copied from its first slot), exactly as per-id
  // query() calls would answer.
  std::vector<MetricRun> out;
  out.reserve(ids.size());
  std::unordered_map<telemetry::MetricId, std::size_t> emitted;
  emitted.reserve(ids.size());
  for (const telemetry::MetricId id : ids) {
    MetricRun run;
    run.id = id;
    const auto [slot, fresh] = emitted.emplace(id, out.size());
    if (!fresh) {
      run.samples = out[slot->second].samples;
    } else {
      run.samples = std::move(runs[first_slot[id]]);
    }
    out.push_back(std::move(run));
  }
  if (stats != nullptr) stats->merge(local);
  return out;
}

bool Store::scan(std::span<const telemetry::MetricId> ids,
                 util::TimeRange range,
                 const std::function<bool(MetricRun&&)>& sink,
                 QueryStats* stats) const {
  const SegmentSnapshot segs = snapshot();
  std::vector<const LiveSegment*> relevant;
  for (const auto& seg : segs) {
    if (seg->reader.bounds().overlaps(range)) relevant.push_back(seg.get());
  }

  // Parity bookkeeping against query_many: a vanished segment is charged
  // once per segment (per-id scans would re-charge it for every id), and
  // a duplicate requested id reuses its first run instead of re-scanning
  // (which would double-charge that metric's damaged blocks).
  std::vector<bool> segment_charged(relevant.size(), false);
  std::unordered_map<telemetry::MetricId, std::size_t> want_count;
  for (const telemetry::MetricId id : ids) ++want_count[id];
  std::unordered_map<telemetry::MetricId, std::vector<ts::Sample>> dup_runs;

  QueryStats total;
  bool completed = true;
  for (const telemetry::MetricId id : ids) {
    MetricRun run;
    run.id = id;
    const auto dup = dup_runs.find(id);
    if (dup != dup_runs.end()) {
      run.samples = dup->second;
    } else {
      for (std::size_t si = 0; si < relevant.size(); ++si) {
        QueryStats local;
        relevant[si]->reader.scan(id, range, run.samples, &local,
                                  cache_.get());
        if (local.lost_segments != 0) {
          if (segment_charged[si]) {
            local.lost_segments = 0;
          } else {
            segment_charged[si] = true;
          }
        }
        total.merge(local);
      }
      for (const auto& [day, buf] : mem_) {
        for (const auto& ev : buf) {
          if (ev.id == id && range.contains(ev.t)) {
            run.samples.push_back({ev.t, static_cast<double>(ev.value)});
          }
        }
      }
      std::sort(run.samples.begin(), run.samples.end(), sample_less);
      if (want_count[id] > 1) dup_runs.emplace(id, run.samples);
    }
    if (!sink(std::move(run))) {
      completed = false;
      break;
    }
  }
  if (stats != nullptr) stats->merge(total);
  return completed;
}

bool Store::scan_encoded(std::span<const telemetry::MetricId> ids,
                         util::TimeRange range, const RawScanSink& sink,
                         QueryStats* stats) const {
  const SegmentSnapshot segs = snapshot();
  std::vector<const LiveSegment*> relevant;
  for (const auto& seg : segs) {
    if (seg->reader.bounds().overlaps(range)) relevant.push_back(seg.get());
  }

  std::vector<bool> segment_charged(relevant.size(), false);
  std::unordered_set<telemetry::MetricId> seen;
  seen.reserve(ids.size());

  QueryStats total;
  std::vector<ts::Sample> loose;
  std::vector<std::uint8_t> scratch;
  for (const telemetry::MetricId id : ids) {
    // A repeated id re-emits the same pieces but with throwaway loss
    // accounting — raw spans cannot be stashed like sample runs, and
    // query_many charges each damaged block once per *distinct* metric.
    const bool first_visit = seen.insert(id).second;
    if (sink.begin_run != nullptr && !sink.begin_run(id)) return false;
    loose.clear();
    for (std::size_t si = 0; si < relevant.size(); ++si) {
      QueryStats local;
      const bool keep_going = relevant[si]->reader.scan_pieces(
          id, range,
          [&](std::span<const std::uint8_t> bytes, std::uint32_t events) {
            return sink.block == nullptr || sink.block(bytes, events);
          },
          loose, &local, scratch);
      if (local.lost_segments != 0) {
        if (segment_charged[si]) {
          local.lost_segments = 0;
        } else {
          segment_charged[si] = true;
        }
      }
      if (first_visit) total.merge(local);
      if (!keep_going) return false;
    }
    for (const auto& [day, buf] : mem_) {
      for (const auto& ev : buf) {
        if (ev.id == id && range.contains(ev.t)) {
          loose.push_back({ev.t, static_cast<double>(ev.value)});
        }
      }
    }
    std::sort(loose.begin(), loose.end(), sample_less);
    if (sink.samples != nullptr && !sink.samples(loose)) return false;
    if (sink.end_run != nullptr && !sink.end_run()) return false;
  }
  if (stats != nullptr) stats->merge(total);
  return true;
}

WindowSum Store::window_sum(telemetry::MetricId id, util::TimeRange range,
                            util::TimeSec window, util::ThreadPool* pool,
                            QueryStats* stats) const {
  if (window <= 0) {
    throw StoreError("store: window_sum window must be positive");
  }
  const auto n_windows =
      static_cast<std::size_t>((range.duration() + window - 1) / window);
  WindowSum out;
  out.start = range.begin;
  out.window = window;
  out.sum.assign(n_windows, 0.0);
  out.count.assign(n_windows, 0);

  const SegmentSnapshot segs = snapshot();
  std::vector<const LiveSegment*> relevant;
  for (const auto& seg : segs) {
    if (seg->reader.bounds().overlaps(range)) relevant.push_back(seg.get());
  }

  QueryStats local;
  util::ThreadPool& fan = pool != nullptr ? *pool : util::ThreadPool::global();
  if (fan.size() <= 1 || relevant.size() <= 1) {
    // Serial fast path: accumulate straight onto the output grids. The
    // per-segment staging below exists only so concurrent workers never
    // share a grid; with one worker (or one segment) its allocations are
    // the dominant cost of a small cache-hit roll-up. Partial sums are
    // exact integer-valued doubles, so both paths produce identical grids.
    for (const LiveSegment* seg : relevant) {
      seg->reader.scan_sum(id, range, window, out.sum, out.count, &local,
                           cache_.get());
    }
  } else {
    struct Part {
      std::vector<double> sum;
      std::vector<std::uint64_t> count;
      QueryStats stats;
    };
    // Per-segment grids merged in segment order. Every partial sum is an
    // exact integer-valued double, so the merge order cannot change the
    // result — the fan-out is free to schedule segments however it likes.
    auto parts = util::parallel_map(
        relevant.size(),
        [&](std::size_t i) {
          Part part;
          part.sum.assign(n_windows, 0.0);
          part.count.assign(n_windows, 0);
          relevant[i]->reader.scan_sum(id, range, window, part.sum,
                                       part.count, &part.stats, cache_.get());
          return part;
        },
        fan);

    for (const auto& part : parts) {
      local.merge(part.stats);
      for (std::size_t w = 0; w < n_windows; ++w) {
        out.sum[w] += part.sum[w];
        out.count[w] += part.count[w];
      }
    }
  }
  for (const auto& [day, buf] : mem_) {
    for (const auto& ev : buf) {
      if (ev.id == id && range.contains(ev.t)) {
        const auto w =
            static_cast<std::size_t>((ev.t - range.begin) / window);
        out.sum[w] += static_cast<double>(ev.value);
        ++out.count[w];
      }
    }
  }
  if (stats != nullptr) stats->merge(local);
  return out;
}

std::vector<telemetry::MetricId> Store::metrics() const {
  std::set<telemetry::MetricId> ids;
  const SegmentSnapshot segs = snapshot();
  for (const auto& seg : segs) {
    for (const auto& b : seg->reader.blocks()) ids.insert(b.id);
  }
  for (const auto& [day, buf] : mem_) {
    for (const auto& ev : buf) ids.insert(ev.id);
  }
  return {ids.begin(), ids.end()};
}

std::vector<SegmentMeta> Store::directory() const {
  std::lock_guard<std::mutex> lock(*mu_);
  std::vector<SegmentMeta> out;
  out.reserve(segments_.size());
  for (const auto& seg : segments_) out.push_back(seg->meta);
  return out;
}

std::uint64_t Store::estimate_blocks(
    std::span<const telemetry::MetricId> ids, util::TimeRange range) const {
  if (ids.empty() || range.begin >= range.end) return 0;
  const std::unordered_set<telemetry::MetricId> want(ids.begin(), ids.end());
  std::uint64_t blocks = 0;
  const SegmentSnapshot segs = snapshot();
  for (const auto& seg : segs) {
    if (!seg->reader.bounds().overlaps(range)) continue;
    for (const telemetry::MetricId id : want) {
      blocks += seg->reader.count_blocks(id, range);
    }
  }
  return blocks;
}

util::TimeRange Store::bounds() const {
  util::TimeRange hull{0, 0};
  bool first = true;
  auto grow = [&](util::TimeSec lo, util::TimeSec hi) {
    hull.begin = first ? lo : std::min(hull.begin, lo);
    hull.end = first ? hi : std::max(hull.end, hi);
    first = false;
  };
  const SegmentSnapshot segs = snapshot();
  for (const auto& seg : segs) {
    grow(seg->reader.bounds().begin, seg->reader.bounds().end);
  }
  for (const auto& [day, buf] : mem_) {
    for (const auto& ev : buf) grow(ev.t, ev.t + 1);
  }
  return hull;
}

std::size_t Store::day_partitions() const {
  std::set<std::int64_t> days;
  const SegmentSnapshot segs = snapshot();
  for (const auto& seg : segs) days.insert(seg->meta.day);
  for (const auto& [day, buf] : mem_) {
    if (!buf.empty()) days.insert(day);
  }
  return days.size();
}

double Store::compression_ratio() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return stored_bytes_ == 0
             ? 0.0
             : static_cast<double>(sealed_events_ *
                                   telemetry::kRawEventBytes) /
                   static_cast<double>(stored_bytes_);
}

ts::Series reduce_cluster_sum(std::span<const ts::StatSeries> per_node,
                              util::TimeRange range, util::TimeSec window,
                              std::vector<double>* counts) {
  const auto n_windows =
      static_cast<std::size_t>((range.duration() + window - 1) / window);
  std::vector<double> sum(n_windows, 0.0);
  std::vector<double> cnt(n_windows, 0.0);
  for (const auto& stat : per_node) {
    for (std::size_t w = 0; w < stat.size() && w < n_windows; ++w) {
      if (stat[w].count > 0) {
        sum[w] += stat[w].mean;
        cnt[w] += 1.0;
      }
    }
  }
  if (counts != nullptr) *counts = std::move(cnt);
  return ts::Series(range.begin, window, std::move(sum));
}

ts::Series cluster_sum(const Store& store,
                       const std::vector<machine::NodeId>& nodes, int channel,
                       util::TimeRange range, util::TimeSec window,
                       std::vector<double>* counts, util::ThreadPool* pool,
                       QueryStats* stats) {
  struct NodeScan {
    ts::StatSeries stat;
    QueryStats stats;
  };
  // Same shape as telemetry::cluster_sum — per-node scans fan out, the
  // serial reduction accumulates in node order, so the result is
  // bit-identical to the in-memory path on an identical event stream.
  auto per_node = util::parallel_map(
      nodes.size(),
      [&](std::size_t i) {
        NodeScan scan;
        const auto samples =
            store.query(telemetry::metric_id(nodes[i], channel), range,
                        &scan.stats);
        scan.stat = ts::coarsen(samples, window, range);
        return scan;
      },
      pool != nullptr ? *pool : util::ThreadPool::global());
  std::vector<ts::StatSeries> stats_only;
  stats_only.reserve(per_node.size());
  for (auto& scan : per_node) {
    if (stats != nullptr) stats->merge(scan.stats);
    stats_only.push_back(std::move(scan.stat));
  }
  return reduce_cluster_sum(stats_only, range, window, counts);
}

}  // namespace exawatt::store
