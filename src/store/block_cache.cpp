#include "store/block_cache.hpp"

#include <algorithm>

namespace exawatt::store {

BlockCache::BlockCache(std::size_t byte_budget, std::size_t shards)
    : budget_(byte_budget),
      shard_budget_(byte_budget / std::max<std::size_t>(1, shards)),
      shards_(std::max<std::size_t>(1, shards)) {}

BlockCache::Columns BlockCache::find(const Key& key) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->columns;
}

void BlockCache::insert(const Key& key, Columns columns) {
  if (columns == nullptr) return;
  const std::size_t bytes = entry_bytes(*columns);
  if (bytes > shard_budget_) return;  // would evict the whole shard
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front({key, std::move(columns), bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  ++shard.insertions;
  while (shard.bytes > shard_budget_) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheCounters BlockCache::counters() const {
  CacheCounters total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
    total.bytes += shard.bytes;
    total.entries += shard.lru.size();
  }
  return total;
}

}  // namespace exawatt::store
