#pragma once

#include <string>
#include <vector>

#include "store/format.hpp"
#include "util/vfs.hpp"

namespace exawatt::store {

/// The store's single source of truth for which segments are live: a text
/// file listing every sealed segment per day-partition, checksummed, and
/// replaced only by atomic rename — readers either see the old complete
/// manifest or the new complete one, never a torn write.
struct Manifest {
  std::vector<SegmentMeta> segments;

  /// Serialize to the checksummed text form.
  [[nodiscard]] std::string encode() const;

  /// Parse; throws StoreError on bad magic, bad CRC or malformed lines
  /// (recovery responds by rebuilding from the segment files themselves).
  [[nodiscard]] static Manifest decode(const std::string& text);

  /// Write to `<root>/MANIFEST` via `<root>/MANIFEST.tmp` + rename, all
  /// through the Vfs seam (nullptr → the real filesystem). I/O failures
  /// surface as util::VfsError for the caller's retry policy.
  void save(const std::string& root, util::Vfs* vfs = nullptr) const;

  /// Load `<root>/MANIFEST`. Returns false (untouched *this) when the
  /// file does not exist; throws StoreError when it exists but is corrupt
  /// or unreadable.
  static bool load(const std::string& root, Manifest& out,
                   util::Vfs* vfs = nullptr);
};

[[nodiscard]] inline std::string manifest_path(const std::string& root) {
  return root + "/MANIFEST";
}

}  // namespace exawatt::store
