#include "store/manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/crc32.hpp"

namespace exawatt::store {

namespace {
constexpr const char* kMagicLine = "exawatt-store 1";
}

std::string Manifest::encode() const {
  std::ostringstream body;
  body << kMagicLine << '\n';
  for (const auto& s : segments) {
    body << "segment " << s.file << ' ' << s.day << ' ' << s.events << ' '
         << s.bytes << ' ' << s.t_min << ' ' << s.t_max << '\n';
  }
  const std::string payload = body.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08" PRIx32 "\n",
                util::crc32(payload));
  return payload + crc_line;
}

Manifest Manifest::decode(const std::string& text) {
  const std::size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      text[crc_pos - 1] != '\n') {
    throw StoreError("manifest: missing crc line");
  }
  const std::string payload = text.substr(0, crc_pos);
  std::uint32_t want = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %" SCNx32, &want) != 1 ||
      util::crc32(payload) != want) {
    throw StoreError("manifest: checksum mismatch (torn or edited file)");
  }

  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != kMagicLine) {
    throw StoreError("manifest: bad magic line");
  }
  Manifest m;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    SegmentMeta s;
    if (!(fields >> tag >> s.file >> s.day >> s.events >> s.bytes >>
          s.t_min >> s.t_max) ||
        tag != "segment") {
      throw StoreError("manifest: malformed line: " + line);
    }
    m.segments.push_back(std::move(s));
  }
  return m;
}

void Manifest::save(const std::string& root, util::Vfs* vfs) const {
  util::Vfs& fs = vfs != nullptr ? *vfs : util::Vfs::real();
  const std::string tmp = manifest_path(root) + ".tmp";
  auto out = fs.create(tmp);
  out->write_text(encode());
  out->close();
  fs.rename(tmp, manifest_path(root));
}

bool Manifest::load(const std::string& root, Manifest& out, util::Vfs* vfs) {
  util::Vfs& fs = vfs != nullptr ? *vfs : util::Vfs::real();
  if (!fs.exists(manifest_path(root))) return false;
  std::vector<std::uint8_t> bytes;
  try {
    bytes = fs.read_all(manifest_path(root));
  } catch (const util::VfsError& e) {
    // The file exists but cannot be read back — same repair path as a
    // torn write: the caller rebuilds from the segment files.
    throw StoreError(std::string("manifest: unreadable: ") + e.what());
  }
  out = decode(std::string(bytes.begin(), bytes.end()));
  return true;
}

}  // namespace exawatt::store
