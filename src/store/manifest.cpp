#include "store/manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"

namespace exawatt::store {

namespace {
constexpr const char* kMagicLine = "exawatt-store 1";
}

std::string Manifest::encode() const {
  std::ostringstream body;
  body << kMagicLine << '\n';
  for (const auto& s : segments) {
    body << "segment " << s.file << ' ' << s.day << ' ' << s.events << ' '
         << s.bytes << ' ' << s.t_min << ' ' << s.t_max << '\n';
  }
  const std::string payload = body.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08" PRIx32 "\n",
                util::crc32(payload));
  return payload + crc_line;
}

Manifest Manifest::decode(const std::string& text) {
  const std::size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      text[crc_pos - 1] != '\n') {
    throw StoreError("manifest: missing crc line");
  }
  const std::string payload = text.substr(0, crc_pos);
  std::uint32_t want = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %" SCNx32, &want) != 1 ||
      util::crc32(payload) != want) {
    throw StoreError("manifest: checksum mismatch (torn or edited file)");
  }

  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != kMagicLine) {
    throw StoreError("manifest: bad magic line");
  }
  Manifest m;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    SegmentMeta s;
    if (!(fields >> tag >> s.file >> s.day >> s.events >> s.bytes >>
          s.t_min >> s.t_max) ||
        tag != "segment") {
      throw StoreError("manifest: malformed line: " + line);
    }
    m.segments.push_back(std::move(s));
  }
  return m;
}

void Manifest::save(const std::string& root) const {
  const std::string tmp = manifest_path(root) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw StoreError("manifest: cannot open " + tmp);
    out << encode();
    out.flush();
    if (!out.good()) throw StoreError("manifest: write failed " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, manifest_path(root), ec);
  if (ec) {
    throw StoreError("manifest: atomic rename failed: " + ec.message());
  }
}

bool Manifest::load(const std::string& root, Manifest& out) {
  std::ifstream in(manifest_path(root), std::ios::binary);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  out = decode(text.str());
  return true;
}

}  // namespace exawatt::store
