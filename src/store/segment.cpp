#include "store/segment.hpp"

#include <algorithm>

#include "telemetry/codec.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"

namespace exawatt::store {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Append the cached columns' samples with t in `range` — the block is
/// single-metric and time-sorted, so the window is two binary searches.
void append_columns(const telemetry::DecodeScratch& cols,
                    util::TimeRange range, std::vector<ts::Sample>& out) {
  const auto& times = cols.times;
  const auto lo = static_cast<std::size_t>(
      std::lower_bound(times.begin(), times.end(), range.begin) -
      times.begin());
  const auto hi = static_cast<std::size_t>(
      std::lower_bound(times.begin() + static_cast<std::ptrdiff_t>(lo),
                       times.end(), range.end) -
      times.begin());
  for (std::size_t i = lo; i < hi; ++i) {
    out.push_back({times[i], static_cast<double>(cols.values[i])});
  }
}

}  // namespace

// ---------------------------------------------------------- SegmentWriter

SegmentWriter::SegmentWriter(std::string path, std::int64_t day,
                             std::size_t block_events, util::Vfs* vfs)
    : path_(std::move(path)),
      day_(day),
      block_events_(block_events),
      vfs_(vfs != nullptr ? vfs : &util::Vfs::real()) {
  if (block_events_ == 0) {
    throw StoreError("segment writer: block_events must be positive");
  }
}

void SegmentWriter::add(std::vector<telemetry::MetricEvent> events) {
  if (buffer_.empty()) {
    buffer_ = std::move(events);
  } else {
    buffer_.insert(buffer_.end(), events.begin(), events.end());
  }
}

SegmentMeta SegmentWriter::seal() {
  if (sealed_) throw StoreError("segment writer: sealed twice");
  if (buffer_.empty()) throw StoreError("segment writer: nothing to seal");

  std::sort(buffer_.begin(), buffer_.end(),
            [](const telemetry::MetricEvent& a,
               const telemetry::MetricEvent& b) {
              return a.id < b.id || (a.id == b.id && a.t < b.t);
            });

  auto out = vfs_->create(path_);

  std::vector<std::uint8_t> header(kSegmentMagic, kSegmentMagic + 8);
  put_u32le(kFormatVersion, header);
  put_u32le(0, header);  // reserved
  out->write(header);

  SegmentMeta meta;
  meta.file = path_;
  meta.day = day_;
  meta.events = buffer_.size();
  meta.t_min = buffer_.front().t;
  meta.t_max = buffer_.front().t;

  std::vector<BlockMeta> blocks;
  std::uint64_t offset = kHeaderBytes;
  std::size_t i = 0;
  while (i < buffer_.size()) {
    // One metric run, chunked into time-ordered blocks.
    const telemetry::MetricId id = buffer_[i].id;
    std::size_t run_end = i;
    while (run_end < buffer_.size() && buffer_[run_end].id == id) ++run_end;
    for (std::size_t b = i; b < run_end; b += block_events_) {
      const std::size_t e = std::min(b + block_events_, run_end);
      // The buffer was just sorted: encode each chunk in place, no copy.
      const telemetry::EncodedBlock encoded = telemetry::encode_events_sorted(
          {buffer_.data() + b, e - b});
      BlockMeta bm;
      bm.id = id;
      bm.offset = offset;
      bm.size = static_cast<std::uint32_t>(encoded.bytes.size());
      bm.events = static_cast<std::uint32_t>(encoded.events);
      bm.t_min = buffer_[b].t;
      bm.t_max = buffer_[e - 1].t;
      bm.crc = util::crc32(encoded.bytes);
      out->write(encoded.bytes);
      offset += bm.size;
      meta.t_min = std::min(meta.t_min, bm.t_min);
      meta.t_max = std::max(meta.t_max, bm.t_max);
      blocks.push_back(bm);
    }
    i = run_end;
  }

  const std::vector<std::uint8_t> footer = encode_footer(blocks);
  out->write(footer);
  std::vector<std::uint8_t> trailer;
  put_u64le(footer.size(), trailer);
  put_u32le(util::crc32(footer), trailer);
  trailer.insert(trailer.end(), kFooterMagic, kFooterMagic + 8);
  out->write(trailer);
  out->close();

  // Only a fully-written file spends the writer; a throw above leaves the
  // buffer intact for a retry.
  sealed_ = true;
  meta.bytes = offset + footer.size() + kTrailerBytes;
  buffer_.clear();
  buffer_.shrink_to_fit();
  return meta;
}

// ---------------------------------------------------------- SegmentReader

SegmentReader::SegmentReader(std::string path, util::Vfs* vfs, bool map_file)
    : path_(std::move(path)),
      vfs_(vfs != nullptr ? vfs : &util::Vfs::real()) {
  std::uint64_t footer_bytes = 0;
  try {
    file_bytes_ = vfs_->size(path_);
    if (file_bytes_ < kHeaderBytes + kTrailerBytes) {
      throw StoreError("segment: truncated below header+trailer: " + path_);
    }

    const auto header = vfs_->read_range(path_, 0, kHeaderBytes);
    if (!std::equal(kSegmentMagic, kSegmentMagic + 8, header.begin())) {
      throw StoreError("segment: bad header magic: " + path_);
    }
    const std::uint32_t version = get_u32le({header.data() + 8, 4});
    if (version != kFormatVersion) {
      throw StoreError("segment: unsupported format version " +
                       std::to_string(version) + ": " + path_);
    }

    const auto trailer =
        vfs_->read_range(path_, file_bytes_ - kTrailerBytes, kTrailerBytes);
    if (!std::equal(kFooterMagic, kFooterMagic + 8, trailer.begin() + 12)) {
      throw StoreError(
          "segment: missing footer trailer (crashed mid-write?): " + path_);
    }
    const std::uint64_t footer_size = get_u64le({trailer.data(), 8});
    const std::uint32_t footer_crc = get_u32le({trailer.data() + 8, 4});
    if (footer_size == 0 ||
        footer_size > file_bytes_ - kHeaderBytes - kTrailerBytes) {
      throw StoreError("segment: implausible footer size: " + path_);
    }
    footer_bytes = footer_size;

    const auto footer = vfs_->read_range(
        path_, file_bytes_ - kTrailerBytes - footer_size,
        static_cast<std::size_t>(footer_size));
    if (util::crc32(footer) != footer_crc) {
      throw StoreError("segment: footer CRC mismatch: " + path_);
    }
    blocks_ = parse_footer(footer);
  } catch (const util::VfsError& e) {
    throw StoreError(std::string("segment: ") + e.what());
  }

  const std::uint64_t data_end = file_bytes_ - kTrailerBytes - footer_bytes;
  util::TimeSec lo = 0, hi = 0;
  bool first = true;
  for (const auto& b : blocks_) {
    if (b.offset < kHeaderBytes || b.offset + b.size > data_end) {
      throw StoreError("segment: block outside data region: " + path_);
    }
    events_ += b.events;
    lo = first ? b.t_min : std::min(lo, b.t_min);
    hi = first ? b.t_max : std::max(hi, b.t_max);
    first = false;
  }
  bounds_ = first ? util::TimeRange{0, 0} : util::TimeRange{lo, hi + 1};
  cache_segment_id_ = fnv1a64(path_);

  if (map_file) {
    // Warm tier opt-in. Mapping is an optimization: refusal (a Vfs with
    // no mmap support, an injected map fault) falls back to buffered
    // reads rather than failing the open. A mapping shorter than the
    // validated file (concurrent truncation) is also refused — spans
    // handed out later must never run off the view.
    try {
      auto m = vfs_->map(path_);
      if (m != nullptr && m->bytes().size() >= file_bytes_) {
        mapping_ = std::move(m);
      }
    } catch (const util::VfsError&) {
      // fall back to buffered reads
    }
  }

  // Per-metric lookup index: directory indices stably sorted by metric id
  // (sealed segments already group blocks by metric, so this is usually a
  // no-op permutation). Scans binary-search this instead of walking every
  // directory entry — thousands per segment at BMC metric counts.
  by_id_.resize(blocks_.size());
  for (std::uint32_t i = 0; i < by_id_.size(); ++i) by_id_[i] = i;
  std::stable_sort(by_id_.begin(), by_id_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return blocks_[a].id < blocks_[b].id;
                   });
}

std::span<const std::uint32_t> SegmentReader::blocks_of(
    telemetry::MetricId id) const {
  const auto lo = std::lower_bound(by_id_.begin(), by_id_.end(), id,
                                   [&](std::uint32_t i, telemetry::MetricId v) {
                                     return blocks_[i].id < v;
                                   });
  const auto hi = std::upper_bound(lo, by_id_.end(), id,
                                   [&](telemetry::MetricId v, std::uint32_t i) {
                                     return v < blocks_[i].id;
                                   });
  return {by_id_.data() + (lo - by_id_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

std::uint64_t SegmentReader::count_blocks(telemetry::MetricId id,
                                          util::TimeRange range) const {
  std::uint64_t n = 0;
  for (const std::uint32_t i : blocks_of(id)) {
    if (block_overlaps(blocks_[i], range)) ++n;
  }
  return n;
}

std::span<const std::uint8_t> SegmentReader::block_span(
    const BlockMeta& block, std::vector<std::uint8_t>& scratch,
    QueryStats* stats) const {
  std::span<const std::uint8_t> bytes;
  if (mapping_ != nullptr) {
    // Warm tier: slice the mapped view. The constructor bounds-checked
    // every directory entry against the file and the mapping covers the
    // whole file, so the subspan cannot run off the view.
    bytes = mapping_->bytes().subspan(block.offset, block.size);
    if (stats != nullptr) ++stats->warm_blocks;
  } else {
    try {
      scratch = vfs_->read_range(path_, block.offset, block.size);
    } catch (const util::VfsError& e) {
      throw StoreError("segment: block read at offset " +
                       std::to_string(block.offset) + " failed (" + e.what() +
                       "): " + path_);
    }
    bytes = scratch;
    if (stats != nullptr) ++stats->cold_blocks;
  }
  if (util::crc32(bytes) != block.crc) {
    throw StoreError("segment: block CRC mismatch (metric " +
                     std::to_string(block.id) + ", offset " +
                     std::to_string(block.offset) + "): " + path_);
  }
  return bytes;
}

telemetry::EncodedBlock SegmentReader::read_block_bytes(
    const BlockMeta& block) const {
  telemetry::EncodedBlock encoded;
  encoded.events = block.events;
  std::vector<std::uint8_t> scratch;
  const auto bytes = block_span(block, scratch, nullptr);
  if (!scratch.empty()) {
    encoded.bytes = std::move(scratch);
  } else {
    encoded.bytes.assign(bytes.begin(), bytes.end());
  }
  return encoded;
}

std::vector<telemetry::MetricEvent> SegmentReader::read_block(
    const BlockMeta& block) const {
  const telemetry::EncodedBlock encoded = read_block_bytes(block);
  std::vector<telemetry::MetricEvent> events;
  try {
    events = telemetry::decode_events(encoded);
  } catch (const util::CheckError& e) {
    // CRC passed but the stream is malformed (colliding corruption):
    // surface it as store damage so degraded readers can skip the block.
    throw StoreError(std::string("segment: block decode failed (") +
                     e.what() + "): " + path_);
  }
  if (events.size() != block.events) {
    throw StoreError("segment: block decoded to wrong event count: " + path_);
  }
  return events;
}

BlockCache::Columns SegmentReader::cached_block(BlockCache& cache,
                                                std::size_t index,
                                                QueryStats* stats) const {
  const BlockMeta& block = blocks_[index];
  const BlockCache::Key key{cache_segment_id_,
                            static_cast<std::uint32_t>(index), block.crc};
  if (auto hit = cache.find(key)) {
    if (stats != nullptr) ++stats->cache_hits;
    return hit;
  }
  if (stats != nullptr) ++stats->cache_misses;
  std::vector<std::uint8_t> scratch;
  const telemetry::EncodedView encoded{block_span(block, scratch, stats),
                                       block.events};
  auto cols = std::make_shared<telemetry::DecodeScratch>();
  try {
    telemetry::decode_events_into(encoded, *cols);
  } catch (const util::CheckError& e) {
    throw StoreError(std::string("segment: block decode failed (") +
                     e.what() + "): " + path_);
  }
  if (cols->size() != block.events) {
    throw StoreError("segment: block decoded to wrong event count: " + path_);
  }
  cache.insert(key, cols);
  return cols;
}

bool SegmentReader::note_if_vanished(QueryStats& stats) const {
  // A mapped segment cannot vanish: the view outlives an unlink of the
  // path, which is exactly how compaction retires inputs under readers.
  if (mapping_ != nullptr) return false;
  if (vfs_->exists(path_)) return false;
  ++stats.lost_segments;
  return true;
}

void SegmentReader::scan_block_into(std::size_t index, util::TimeRange range,
                                    std::vector<ts::Sample>& out,
                                    QueryStats* stats,
                                    BlockCache* cache) const {
  const BlockMeta& block = blocks_[index];
  const std::size_t mark = out.size();
  try {
    if (cache != nullptr) {
      append_columns(*cached_block(*cache, index, stats), range, out);
      return;
    }
    std::vector<std::uint8_t> scratch;
    const telemetry::EncodedView encoded{block_span(block, scratch, stats),
                                         block.events};
    std::size_t decoded = 0;
    try {
      decoded = telemetry::decode_filter_into(encoded, block.id, range, out);
    } catch (const util::CheckError& e) {
      throw StoreError(std::string("segment: block decode failed (") +
                       e.what() + "): " + path_);
    }
    if (decoded != block.events) {
      throw StoreError("segment: block decoded to wrong event count: " +
                       path_);
    }
  } catch (const StoreError&) {
    // Drop whatever the damaged block managed to append: degraded results
    // hold only samples from blocks that validated end to end.
    out.resize(mark);
    if (stats == nullptr) throw;
    ++stats->lost_blocks;
  }
}

void SegmentReader::scan(telemetry::MetricId id, util::TimeRange range,
                         std::vector<ts::Sample>& out, QueryStats* stats,
                         BlockCache* cache) const {
  if (stats != nullptr && note_if_vanished(*stats)) return;
  for (const std::uint32_t i : blocks_of(id)) {
    if (!block_overlaps(blocks_[i], range)) continue;
    scan_block_into(i, range, out, stats, cache);
  }
}

void SegmentReader::scan_set(
    const std::unordered_set<telemetry::MetricId>& ids, util::TimeRange range,
    std::map<telemetry::MetricId, std::vector<ts::Sample>>& out,
    QueryStats* stats, BlockCache* cache) const {
  if (stats != nullptr && note_if_vanished(*stats)) return;
  for (const telemetry::MetricId id : ids) {
    for (const std::uint32_t i : blocks_of(id)) {
      if (!block_overlaps(blocks_[i], range)) continue;
      scan_block_into(i, range, out[id], stats, cache);
    }
  }
}

void SegmentReader::scan_sum(telemetry::MetricId id, util::TimeRange range,
                             util::TimeSec window, std::span<double> sums,
                             std::span<std::uint64_t> counts,
                             QueryStats* stats, BlockCache* cache) const {
  EXA_CHECK(window > 0, "scan_sum window must be positive");
  const auto n_windows =
      static_cast<std::size_t>((range.duration() + window - 1) / window);
  EXA_CHECK(sums.size() >= n_windows && counts.size() >= n_windows,
            "scan_sum grid spans too small for range/window");
  if (stats != nullptr && note_if_vanished(*stats)) return;

  // Per-block staging for the fused path: a block that throws mid-decode
  // is discarded whole, so degraded grids never carry partial sums.
  std::vector<double> block_sum;
  std::vector<std::uint64_t> block_cnt;

  for (const std::uint32_t i : blocks_of(id)) {
    const BlockMeta& b = blocks_[i];
    if (!block_overlaps(b, range)) continue;
    try {
      if (cache != nullptr) {
        const auto cols = cached_block(*cache, i, stats);
        const auto& times = cols->times;
        const auto lo = static_cast<std::size_t>(
            std::lower_bound(times.begin(), times.end(), range.begin) -
            times.begin());
        const auto hi = static_cast<std::size_t>(
            std::lower_bound(times.begin() + static_cast<std::ptrdiff_t>(lo),
                             times.end(), range.end) -
            times.begin());
        if (lo < hi) {
          // Times are ascending within a block, so step the window cursor
          // forward instead of dividing per event (one 64-bit div per
          // sample would dominate the cache-hit roll-up).
          auto w = static_cast<std::size_t>((times[lo] - range.begin) /
                                            window);
          std::int64_t w_end =
              range.begin + static_cast<std::int64_t>(w + 1) * window;
          for (std::size_t k = lo; k < hi; ++k) {
            while (times[k] >= w_end) {
              ++w;
              w_end += window;
            }
            sums[w] += static_cast<double>(cols->values[k]);
            ++counts[w];
          }
        }
        continue;
      }
      if (block_sum.empty()) {
        block_sum.assign(n_windows, 0.0);
        block_cnt.assign(n_windows, 0);
      }
      std::vector<std::uint8_t> scratch;
      const telemetry::EncodedView encoded{block_span(b, scratch, stats),
                                           b.events};
      std::size_t decoded = 0;
      try {
        decoded = telemetry::decode_sum_into(encoded, b.id, range, window,
                                             block_sum, block_cnt);
      } catch (const util::CheckError& e) {
        std::fill(block_sum.begin(), block_sum.end(), 0.0);
        std::fill(block_cnt.begin(), block_cnt.end(), std::uint64_t{0});
        throw StoreError(std::string("segment: block decode failed (") +
                         e.what() + "): " + path_);
      }
      if (decoded != b.events) {
        std::fill(block_sum.begin(), block_sum.end(), 0.0);
        std::fill(block_cnt.begin(), block_cnt.end(), std::uint64_t{0});
        throw StoreError("segment: block decoded to wrong event count: " +
                         path_);
      }
      for (std::size_t w = 0; w < n_windows; ++w) {
        sums[w] += block_sum[w];
        counts[w] += block_cnt[w];
        block_sum[w] = 0.0;
        block_cnt[w] = 0;
      }
    } catch (const StoreError&) {
      if (stats == nullptr) throw;
      ++stats->lost_blocks;
    }
  }
}

bool SegmentReader::scan_pieces(
    telemetry::MetricId id, util::TimeRange range,
    const std::function<bool(std::span<const std::uint8_t>, std::uint32_t)>&
        on_raw,
    std::vector<ts::Sample>& loose, QueryStats* stats,
    std::vector<std::uint8_t>& scratch) const {
  if (stats != nullptr && note_if_vanished(*stats)) return true;
  for (const std::uint32_t i : blocks_of(id)) {
    const BlockMeta& b = blocks_[i];
    if (!block_overlaps(b, range)) continue;
    // A block entirely inside the half-open range keeps every event, so
    // its encoded bytes can ship as-is; boundary blocks must decode and
    // filter. Damaged raw candidates fall back through the loose path's
    // degradation contract rather than duplicating it here.
    const bool whole = b.t_min >= range.begin && b.t_max < range.end;
    if (whole) {
      bool ok = true;
      std::span<const std::uint8_t> bytes;
      try {
        bytes = block_span(b, scratch, stats);
      } catch (const StoreError&) {
        if (stats == nullptr) throw;
        ++stats->lost_blocks;
        ok = false;
      }
      if (ok) {
        if (!on_raw(bytes, b.events)) return false;
        continue;
      }
      continue;
    }
    scan_block_into(i, range, loose, stats, nullptr);
  }
  return true;
}

}  // namespace exawatt::store
