#include "store/segment.hpp"

#include <algorithm>

#include "telemetry/codec.hpp"
#include "util/crc32.hpp"

namespace exawatt::store {

// ---------------------------------------------------------- SegmentWriter

SegmentWriter::SegmentWriter(std::string path, std::int64_t day,
                             std::size_t block_events, util::Vfs* vfs)
    : path_(std::move(path)),
      day_(day),
      block_events_(block_events),
      vfs_(vfs != nullptr ? vfs : &util::Vfs::real()) {
  if (block_events_ == 0) {
    throw StoreError("segment writer: block_events must be positive");
  }
}

void SegmentWriter::add(std::vector<telemetry::MetricEvent> events) {
  if (buffer_.empty()) {
    buffer_ = std::move(events);
  } else {
    buffer_.insert(buffer_.end(), events.begin(), events.end());
  }
}

SegmentMeta SegmentWriter::seal() {
  if (sealed_) throw StoreError("segment writer: sealed twice");
  if (buffer_.empty()) throw StoreError("segment writer: nothing to seal");

  std::sort(buffer_.begin(), buffer_.end(),
            [](const telemetry::MetricEvent& a,
               const telemetry::MetricEvent& b) {
              return a.id < b.id || (a.id == b.id && a.t < b.t);
            });

  auto out = vfs_->create(path_);

  std::vector<std::uint8_t> header(kSegmentMagic, kSegmentMagic + 8);
  put_u32le(kFormatVersion, header);
  put_u32le(0, header);  // reserved
  out->write(header);

  SegmentMeta meta;
  meta.file = path_;
  meta.day = day_;
  meta.events = buffer_.size();
  meta.t_min = buffer_.front().t;
  meta.t_max = buffer_.front().t;

  std::vector<BlockMeta> blocks;
  std::uint64_t offset = kHeaderBytes;
  std::size_t i = 0;
  while (i < buffer_.size()) {
    // One metric run, chunked into time-ordered blocks.
    const telemetry::MetricId id = buffer_[i].id;
    std::size_t run_end = i;
    while (run_end < buffer_.size() && buffer_[run_end].id == id) ++run_end;
    for (std::size_t b = i; b < run_end; b += block_events_) {
      const std::size_t e = std::min(b + block_events_, run_end);
      const telemetry::EncodedBlock encoded = telemetry::encode_events(
          {buffer_.begin() + static_cast<std::ptrdiff_t>(b),
           buffer_.begin() + static_cast<std::ptrdiff_t>(e)});
      BlockMeta bm;
      bm.id = id;
      bm.offset = offset;
      bm.size = static_cast<std::uint32_t>(encoded.bytes.size());
      bm.events = static_cast<std::uint32_t>(encoded.events);
      bm.t_min = buffer_[b].t;
      bm.t_max = buffer_[e - 1].t;
      bm.crc = util::crc32(encoded.bytes);
      out->write(encoded.bytes);
      offset += bm.size;
      meta.t_min = std::min(meta.t_min, bm.t_min);
      meta.t_max = std::max(meta.t_max, bm.t_max);
      blocks.push_back(bm);
    }
    i = run_end;
  }

  const std::vector<std::uint8_t> footer = encode_footer(blocks);
  out->write(footer);
  std::vector<std::uint8_t> trailer;
  put_u64le(footer.size(), trailer);
  put_u32le(util::crc32(footer), trailer);
  trailer.insert(trailer.end(), kFooterMagic, kFooterMagic + 8);
  out->write(trailer);
  out->close();

  // Only a fully-written file spends the writer; a throw above leaves the
  // buffer intact for a retry.
  sealed_ = true;
  meta.bytes = offset + footer.size() + kTrailerBytes;
  buffer_.clear();
  buffer_.shrink_to_fit();
  return meta;
}

// ---------------------------------------------------------- SegmentReader

SegmentReader::SegmentReader(std::string path, util::Vfs* vfs)
    : path_(std::move(path)),
      vfs_(vfs != nullptr ? vfs : &util::Vfs::real()) {
  std::uint64_t footer_bytes = 0;
  try {
    file_bytes_ = vfs_->size(path_);
    if (file_bytes_ < kHeaderBytes + kTrailerBytes) {
      throw StoreError("segment: truncated below header+trailer: " + path_);
    }

    const auto header = vfs_->read_range(path_, 0, kHeaderBytes);
    if (!std::equal(kSegmentMagic, kSegmentMagic + 8, header.begin())) {
      throw StoreError("segment: bad header magic: " + path_);
    }
    const std::uint32_t version = get_u32le({header.data() + 8, 4});
    if (version != kFormatVersion) {
      throw StoreError("segment: unsupported format version " +
                       std::to_string(version) + ": " + path_);
    }

    const auto trailer =
        vfs_->read_range(path_, file_bytes_ - kTrailerBytes, kTrailerBytes);
    if (!std::equal(kFooterMagic, kFooterMagic + 8, trailer.begin() + 12)) {
      throw StoreError(
          "segment: missing footer trailer (crashed mid-write?): " + path_);
    }
    const std::uint64_t footer_size = get_u64le({trailer.data(), 8});
    const std::uint32_t footer_crc = get_u32le({trailer.data() + 8, 4});
    if (footer_size == 0 ||
        footer_size > file_bytes_ - kHeaderBytes - kTrailerBytes) {
      throw StoreError("segment: implausible footer size: " + path_);
    }
    footer_bytes = footer_size;

    const auto footer = vfs_->read_range(
        path_, file_bytes_ - kTrailerBytes - footer_size,
        static_cast<std::size_t>(footer_size));
    if (util::crc32(footer) != footer_crc) {
      throw StoreError("segment: footer CRC mismatch: " + path_);
    }
    blocks_ = parse_footer(footer);
  } catch (const util::VfsError& e) {
    throw StoreError(std::string("segment: ") + e.what());
  }

  const std::uint64_t data_end = file_bytes_ - kTrailerBytes - footer_bytes;
  util::TimeSec lo = 0, hi = 0;
  bool first = true;
  for (const auto& b : blocks_) {
    if (b.offset < kHeaderBytes || b.offset + b.size > data_end) {
      throw StoreError("segment: block outside data region: " + path_);
    }
    events_ += b.events;
    lo = first ? b.t_min : std::min(lo, b.t_min);
    hi = first ? b.t_max : std::max(hi, b.t_max);
    first = false;
  }
  bounds_ = first ? util::TimeRange{0, 0} : util::TimeRange{lo, hi + 1};
}

std::vector<telemetry::MetricEvent> SegmentReader::read_block(
    const BlockMeta& block) const {
  telemetry::EncodedBlock encoded;
  encoded.events = block.events;
  try {
    encoded.bytes = vfs_->read_range(path_, block.offset, block.size);
  } catch (const util::VfsError& e) {
    throw StoreError("segment: block read at offset " +
                     std::to_string(block.offset) + " failed (" + e.what() +
                     "): " + path_);
  }
  if (util::crc32(encoded.bytes) != block.crc) {
    throw StoreError("segment: block CRC mismatch (metric " +
                     std::to_string(block.id) + ", offset " +
                     std::to_string(block.offset) + "): " + path_);
  }
  auto events = telemetry::decode_events(encoded);
  if (events.size() != block.events) {
    throw StoreError("segment: block decoded to wrong event count: " + path_);
  }
  return events;
}

bool SegmentReader::note_if_vanished(QueryStats& stats) const {
  if (vfs_->exists(path_)) return false;
  ++stats.lost_segments;
  return true;
}

void SegmentReader::scan(telemetry::MetricId id, util::TimeRange range,
                         std::vector<ts::Sample>& out,
                         QueryStats* stats) const {
  if (stats != nullptr && note_if_vanished(*stats)) return;
  for (const auto& b : blocks_) {
    if (b.id != id || !block_overlaps(b, range)) continue;
    std::vector<telemetry::MetricEvent> events;
    try {
      events = read_block(b);
    } catch (const StoreError&) {
      if (stats == nullptr) throw;
      ++stats->lost_blocks;
      continue;
    }
    for (const auto& ev : events) {
      if (ev.t >= range.begin && ev.t < range.end) {
        out.push_back({ev.t, static_cast<double>(ev.value)});
      }
    }
  }
}

void SegmentReader::scan_set(
    const std::unordered_set<telemetry::MetricId>& ids, util::TimeRange range,
    std::map<telemetry::MetricId, std::vector<ts::Sample>>& out,
    QueryStats* stats) const {
  if (stats != nullptr && note_if_vanished(*stats)) return;
  for (const auto& b : blocks_) {
    if (!block_overlaps(b, range) || ids.find(b.id) == ids.end()) continue;
    std::vector<telemetry::MetricEvent> events;
    try {
      events = read_block(b);
    } catch (const StoreError&) {
      if (stats == nullptr) throw;
      ++stats->lost_blocks;
      continue;
    }
    auto& samples = out[b.id];
    for (const auto& ev : events) {
      if (ev.t >= range.begin && ev.t < range.end) {
        samples.push_back({ev.t, static_cast<double>(ev.value)});
      }
    }
  }
}

}  // namespace exawatt::store
