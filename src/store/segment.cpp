#include "store/segment.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "telemetry/codec.hpp"
#include "util/crc32.hpp"

namespace exawatt::store {

namespace {

void write_bytes(std::ofstream& out, std::span<const std::uint8_t> bytes) {
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

// ---------------------------------------------------------- SegmentWriter

SegmentWriter::SegmentWriter(std::string path, std::int64_t day,
                             std::size_t block_events)
    : path_(std::move(path)), day_(day), block_events_(block_events) {
  if (block_events_ == 0) {
    throw StoreError("segment writer: block_events must be positive");
  }
}

void SegmentWriter::add(std::vector<telemetry::MetricEvent> events) {
  if (buffer_.empty()) {
    buffer_ = std::move(events);
  } else {
    buffer_.insert(buffer_.end(), events.begin(), events.end());
  }
}

SegmentMeta SegmentWriter::seal() {
  if (sealed_) throw StoreError("segment writer: sealed twice");
  if (buffer_.empty()) throw StoreError("segment writer: nothing to seal");
  sealed_ = true;

  std::sort(buffer_.begin(), buffer_.end(),
            [](const telemetry::MetricEvent& a,
               const telemetry::MetricEvent& b) {
              return a.id < b.id || (a.id == b.id && a.t < b.t);
            });

  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (!out) throw StoreError("segment writer: cannot open " + path_);

  std::vector<std::uint8_t> header(kSegmentMagic, kSegmentMagic + 8);
  put_u32le(kFormatVersion, header);
  put_u32le(0, header);  // reserved
  write_bytes(out, header);

  SegmentMeta meta;
  meta.file = path_;
  meta.day = day_;
  meta.events = buffer_.size();
  meta.t_min = buffer_.front().t;
  meta.t_max = buffer_.front().t;

  std::vector<BlockMeta> blocks;
  std::uint64_t offset = kHeaderBytes;
  std::size_t i = 0;
  while (i < buffer_.size()) {
    // One metric run, chunked into time-ordered blocks.
    const telemetry::MetricId id = buffer_[i].id;
    std::size_t run_end = i;
    while (run_end < buffer_.size() && buffer_[run_end].id == id) ++run_end;
    for (std::size_t b = i; b < run_end; b += block_events_) {
      const std::size_t e = std::min(b + block_events_, run_end);
      const telemetry::EncodedBlock encoded = telemetry::encode_events(
          {buffer_.begin() + static_cast<std::ptrdiff_t>(b),
           buffer_.begin() + static_cast<std::ptrdiff_t>(e)});
      BlockMeta bm;
      bm.id = id;
      bm.offset = offset;
      bm.size = static_cast<std::uint32_t>(encoded.bytes.size());
      bm.events = static_cast<std::uint32_t>(encoded.events);
      bm.t_min = buffer_[b].t;
      bm.t_max = buffer_[e - 1].t;
      bm.crc = util::crc32(encoded.bytes);
      write_bytes(out, encoded.bytes);
      offset += bm.size;
      meta.t_min = std::min(meta.t_min, bm.t_min);
      meta.t_max = std::max(meta.t_max, bm.t_max);
      blocks.push_back(bm);
    }
    i = run_end;
  }

  const std::vector<std::uint8_t> footer = encode_footer(blocks);
  write_bytes(out, footer);
  std::vector<std::uint8_t> trailer;
  put_u64le(footer.size(), trailer);
  put_u32le(util::crc32(footer), trailer);
  trailer.insert(trailer.end(), kFooterMagic, kFooterMagic + 8);
  write_bytes(out, trailer);
  out.flush();
  if (!out.good()) throw StoreError("segment writer: write failed " + path_);
  out.close();

  meta.bytes = offset + footer.size() + kTrailerBytes;
  buffer_.clear();
  buffer_.shrink_to_fit();
  return meta;
}

// ---------------------------------------------------------- SegmentReader

SegmentReader::SegmentReader(std::string path) : path_(std::move(path)) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (ec) throw StoreError("segment: cannot stat " + path_);
  file_bytes_ = size;
  if (file_bytes_ < kHeaderBytes + kTrailerBytes) {
    throw StoreError("segment: truncated below header+trailer: " + path_);
  }

  std::ifstream in(path_, std::ios::binary);
  if (!in) throw StoreError("segment: cannot open " + path_);

  std::uint8_t header[kHeaderBytes];
  in.read(reinterpret_cast<char*>(header), kHeaderBytes);
  if (!in.good() || !std::equal(kSegmentMagic, kSegmentMagic + 8, header)) {
    throw StoreError("segment: bad header magic: " + path_);
  }
  const std::uint32_t version = get_u32le({header + 8, 4});
  if (version != kFormatVersion) {
    throw StoreError("segment: unsupported format version " +
                     std::to_string(version) + ": " + path_);
  }

  std::uint8_t trailer[kTrailerBytes];
  in.seekg(static_cast<std::streamoff>(file_bytes_ - kTrailerBytes));
  in.read(reinterpret_cast<char*>(trailer), kTrailerBytes);
  if (!in.good() ||
      !std::equal(kFooterMagic, kFooterMagic + 8, trailer + 12)) {
    throw StoreError("segment: missing footer trailer (crashed mid-write?): " +
                     path_);
  }
  const std::uint64_t footer_size = get_u64le({trailer, 8});
  const std::uint32_t footer_crc = get_u32le({trailer + 8, 4});
  if (footer_size == 0 ||
      footer_size > file_bytes_ - kHeaderBytes - kTrailerBytes) {
    throw StoreError("segment: implausible footer size: " + path_);
  }

  std::vector<std::uint8_t> footer(footer_size);
  in.seekg(
      static_cast<std::streamoff>(file_bytes_ - kTrailerBytes - footer_size));
  in.read(reinterpret_cast<char*>(footer.data()),
          static_cast<std::streamsize>(footer_size));
  if (!in.good()) throw StoreError("segment: short footer read: " + path_);
  if (util::crc32(footer) != footer_crc) {
    throw StoreError("segment: footer CRC mismatch: " + path_);
  }

  blocks_ = parse_footer(footer);
  const std::uint64_t data_end = file_bytes_ - kTrailerBytes - footer_size;
  util::TimeSec lo = 0, hi = 0;
  bool first = true;
  for (const auto& b : blocks_) {
    if (b.offset < kHeaderBytes || b.offset + b.size > data_end) {
      throw StoreError("segment: block outside data region: " + path_);
    }
    events_ += b.events;
    lo = first ? b.t_min : std::min(lo, b.t_min);
    hi = first ? b.t_max : std::max(hi, b.t_max);
    first = false;
  }
  bounds_ = first ? util::TimeRange{0, 0} : util::TimeRange{lo, hi + 1};
}

std::vector<telemetry::MetricEvent> SegmentReader::read_block(
    const BlockMeta& block) const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) throw StoreError("segment: cannot open " + path_);
  telemetry::EncodedBlock encoded;
  encoded.bytes.resize(block.size);
  encoded.events = block.events;
  in.seekg(static_cast<std::streamoff>(block.offset));
  in.read(reinterpret_cast<char*>(encoded.bytes.data()), block.size);
  if (!in.good()) {
    throw StoreError("segment: short block read at offset " +
                     std::to_string(block.offset) + ": " + path_);
  }
  if (util::crc32(encoded.bytes) != block.crc) {
    throw StoreError("segment: block CRC mismatch (metric " +
                     std::to_string(block.id) + ", offset " +
                     std::to_string(block.offset) + "): " + path_);
  }
  auto events = telemetry::decode_events(encoded);
  if (events.size() != block.events) {
    throw StoreError("segment: block decoded to wrong event count: " + path_);
  }
  return events;
}

void SegmentReader::scan(telemetry::MetricId id, util::TimeRange range,
                         std::vector<ts::Sample>& out) const {
  for (const auto& b : blocks_) {
    if (b.id != id || !block_overlaps(b, range)) continue;
    for (const auto& ev : read_block(b)) {
      if (ev.t >= range.begin && ev.t < range.end) {
        out.push_back({ev.t, static_cast<double>(ev.value)});
      }
    }
  }
}

void SegmentReader::scan_set(
    const std::unordered_set<telemetry::MetricId>& ids, util::TimeRange range,
    std::map<telemetry::MetricId, std::vector<ts::Sample>>& out) const {
  for (const auto& b : blocks_) {
    if (!block_overlaps(b, range) || ids.find(b.id) == ids.end()) continue;
    auto& samples = out[b.id];
    for (const auto& ev : read_block(b)) {
      if (ev.t >= range.begin && ev.t < range.end) {
        samples.push_back({ev.t, static_cast<double>(ev.value)});
      }
    }
  }
}

}  // namespace exawatt::store
