#include "store/format.hpp"

#include "util/varint.hpp"

namespace exawatt::store {

using util::varint_decode;
using util::varint_encode;
using util::zigzag_decode;
using util::zigzag_encode;

void put_u32le(std::uint32_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64le(std::uint64_t v, std::vector<std::uint8_t>& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32le(std::span<const std::uint8_t> in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64le(std::span<const std::uint8_t> in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::vector<std::uint8_t> encode_footer(
    const std::vector<BlockMeta>& blocks) {
  std::vector<std::uint8_t> out;
  varint_encode(blocks.size(), out);
  // Blocks are written in (metric, time) order, so ids and offsets are
  // non-decreasing — delta encoding keeps the directory tiny.
  telemetry::MetricId prev_id = 0;
  std::uint64_t prev_off = 0;
  for (const auto& b : blocks) {
    varint_encode(b.id - prev_id, out);
    varint_encode(b.offset - prev_off, out);
    varint_encode(b.size, out);
    varint_encode(b.events, out);
    varint_encode(zigzag_encode(b.t_min), out);
    varint_encode(zigzag_encode(b.t_max - b.t_min), out);
    varint_encode(b.crc, out);
    prev_id = b.id;
    prev_off = b.offset;
  }
  return out;
}

std::vector<BlockMeta> parse_footer(std::span<const std::uint8_t> payload) {
  std::size_t pos = 0;
  std::uint64_t count = 0;
  if (!varint_decode(payload, pos, count)) {
    throw StoreError("segment footer: truncated directory count");
  }
  std::vector<BlockMeta> blocks;
  blocks.reserve(count);
  telemetry::MetricId prev_id = 0;
  std::uint64_t prev_off = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t did = 0, doff = 0, size = 0, events = 0;
    std::uint64_t ztmin = 0, dtmax = 0, crc = 0;
    if (!varint_decode(payload, pos, did) ||
        !varint_decode(payload, pos, doff) ||
        !varint_decode(payload, pos, size) ||
        !varint_decode(payload, pos, events) ||
        !varint_decode(payload, pos, ztmin) ||
        !varint_decode(payload, pos, dtmax) ||
        !varint_decode(payload, pos, crc)) {
      throw StoreError("segment footer: truncated directory entry");
    }
    BlockMeta b;
    b.id = prev_id + static_cast<telemetry::MetricId>(did);
    b.offset = prev_off + doff;
    b.size = static_cast<std::uint32_t>(size);
    b.events = static_cast<std::uint32_t>(events);
    b.t_min = zigzag_decode(ztmin);
    b.t_max = b.t_min + static_cast<util::TimeSec>(zigzag_decode(dtmax));
    b.crc = static_cast<std::uint32_t>(crc);
    if (b.events == 0 || b.size == 0 || b.t_max < b.t_min) {
      throw StoreError("segment footer: implausible directory entry");
    }
    prev_id = b.id;
    prev_off = b.offset;
    blocks.push_back(b);
  }
  if (pos != payload.size()) {
    throw StoreError("segment footer: trailing bytes after directory");
  }
  return blocks;
}

}  // namespace exawatt::store
