#include "thermal/node_thermal.hpp"

#include <cmath>

#include "util/check.hpp"

namespace exawatt::thermal {

using machine::SummitSpec;

double throttle_factor(double gpu_core_c, const ThermalParams& params) {
  if (gpu_core_c <= params.throttle_onset_c) return 1.0;
  if (gpu_core_c >= params.throttle_limit_c) return params.throttle_floor;
  const double span = params.throttle_limit_c - params.throttle_onset_c;
  const double f = (gpu_core_c - params.throttle_onset_c) / span;
  return 1.0 - f * (1.0 - params.throttle_floor);
}

FleetThermal::FleetThermal(machine::MachineScale scale, std::uint64_t seed,
                           ThermalParams params)
    : scale_(scale), topo_(scale), params_(params) {
  const auto nodes = static_cast<std::size_t>(scale_.nodes);
  gpu_r_.resize(nodes * SummitSpec::kGpusPerNode);
  cpu_r_.resize(nodes * SummitSpec::kCpusPerNode);
  util::Rng master(seed);
  for (std::size_t n = 0; n < nodes; ++n) {
    util::Rng rng = master.substream(0x7e41ULL, n);
    for (int g = 0; g < SummitSpec::kGpusPerNode; ++g) {
      gpu_r_[n * SummitSpec::kGpusPerNode + static_cast<std::size_t>(g)] =
          params_.gpu_r_mean_c_per_w *
          rng.lognormal(0.0, params_.gpu_r_sigma);
    }
    for (int c = 0; c < SummitSpec::kCpusPerNode; ++c) {
      cpu_r_[n * SummitSpec::kCpusPerNode + static_cast<std::size_t>(c)] =
          params_.cpu_r_mean_c_per_w *
          rng.lognormal(0.0, params_.cpu_r_sigma);
    }
  }
  const auto cabinets = static_cast<std::size_t>(topo_.cabinets());
  cab_offset_.resize(cabinets);
  util::Rng cab_rng = master.substream(0xcab0ULL, 0);
  for (std::size_t c = 0; c < cabinets; ++c) {
    cab_offset_[c] = cab_rng.normal(0.0, params_.cabinet_sigma_c);
  }
}

double FleetThermal::gpu_r(machine::NodeId node, int slot) const {
  EXA_CHECK(node >= 0 && node < scale_.nodes, "node out of range");
  EXA_CHECK(slot >= 0 && slot < SummitSpec::kGpusPerNode, "slot out of range");
  return gpu_r_[static_cast<std::size_t>(node) * SummitSpec::kGpusPerNode +
                static_cast<std::size_t>(slot)];
}

double FleetThermal::cpu_r(machine::NodeId node, int socket) const {
  EXA_CHECK(node >= 0 && node < scale_.nodes, "node out of range");
  EXA_CHECK(socket >= 0 && socket < SummitSpec::kCpusPerNode,
            "socket out of range");
  return cpu_r_[static_cast<std::size_t>(node) * SummitSpec::kCpusPerNode +
                static_cast<std::size_t>(socket)];
}

double FleetThermal::node_coolant_offset_c(machine::NodeId node) const {
  const machine::FloorPosition pos = topo_.position_of(node);
  const double center = 0.5 * static_cast<double>(topo_.rows() - 1);
  return cab_offset_[static_cast<std::size_t>(pos.cabinet)] +
         params_.row_gradient_c * (static_cast<double>(pos.row) - center);
}

FleetThermal::NodeTemps FleetThermal::steady_temps(
    machine::NodeId node, const power::NodeComponentPower& p,
    double supply_c) const {
  NodeTemps t;
  const double inlet = supply_c + node_coolant_offset_c(node);
  for (int socket = 0; socket < SummitSpec::kCpusPerNode; ++socket) {
    // Serial chain inside a socket: CPU cold plate first in our model's
    // plumbing order is irrelevant for CPUs (their swing is small); GPUs
    // at later coolant positions see water pre-warmed by upstream GPUs.
    double upstream_w = 0.0;
    for (int k = 0; k < SummitSpec::kGpusPerCpu; ++k) {
      const int slot = socket * SummitSpec::kGpusPerCpu + k;
      const double local_inlet =
          inlet + params_.chain_c_per_w * upstream_w;
      t.gpu_c[slot] = local_inlet + gpu_r(node, slot) * p.gpu_w[slot];
      upstream_w += p.gpu_w[slot];
    }
    t.cpu_c[socket] = inlet + cpu_r(node, socket) * p.cpu_w[socket];
  }
  return t;
}

}  // namespace exawatt::thermal
