#pragma once

#include <cstdint>
#include <vector>

#include "machine/topology.hpp"
#include "power/job_power.hpp"
#include "util/rng.hpp"

namespace exawatt::thermal {

/// Tunable constants of the node-level thermal model. Defaults are
/// calibrated so that (a) fully loaded GPUs sit in the high 30s-50s °C
/// with the vast majority below 60 °C, (b) the within-job non-outlier
/// temperature spread at near-identical power is ~15 °C (Figure 17), and
/// (c) GPU temperature tracks power within seconds while CPU temperature
/// stays comparatively flat (Figure 12).
struct ThermalParams {
  double gpu_r_mean_c_per_w = 0.062;  ///< cold-plate thermal resistance
  double gpu_r_sigma = 0.18;          ///< per-chip lognormal sigma
  double cpu_r_mean_c_per_w = 0.060;
  double cpu_r_sigma = 0.10;
  double gpu_tau_s = 18.0;            ///< RC time constant
  double cpu_tau_s = 35.0;
  /// Coolant warm-up per watt of upstream heat inside a socket's serial
  /// GPU chain (position 1 and 2 get pre-warmed water; Figure 1-(a)).
  double chain_c_per_w = 0.004;
  /// Spatial variation: per-cabinet coolant offset sigma (°C) and a small
  /// floor gradient along rows (cold-water outtake points, Figure 17).
  double cabinet_sigma_c = 0.5;
  double row_gradient_c = 0.08;       ///< °C per row index from floor center
  /// V100 hardware slowdown: power derates linearly above the throttle
  /// onset, bottoming out at `throttle_floor` of nominal by the hard
  /// limit. The facility deliberately overcools so this never engages
  /// in normal operation (paper §5) — but the model must have it so
  /// failure-injection studies (warm water, blocked loops) behave.
  double throttle_onset_c = 83.0;
  double throttle_limit_c = 90.0;
  double throttle_floor = 0.55;
};

/// Multiplicative GPU power derating for a core temperature: 1.0 below
/// the onset, linear to `throttle_floor` at the hard limit.
[[nodiscard]] double throttle_factor(double gpu_core_c,
                                     const ThermalParams& params = {});

/// Per-GPU steady-state and dynamic temperatures for the whole fleet.
/// Thermal resistances and spatial offsets are deterministic in the seed.
class FleetThermal {
 public:
  FleetThermal(machine::MachineScale scale, std::uint64_t seed,
               ThermalParams params = {});

  [[nodiscard]] const ThermalParams& params() const { return params_; }
  [[nodiscard]] const machine::Topology& topology() const { return topo_; }

  [[nodiscard]] double gpu_r(machine::NodeId node, int slot) const;
  [[nodiscard]] double cpu_r(machine::NodeId node, int socket) const;
  /// Coolant temperature offset of a node vs the MTW supply (cabinet
  /// calibration + floor position).
  [[nodiscard]] double node_coolant_offset_c(machine::NodeId node) const;

  /// Steady-state component temperatures for a node given its component
  /// powers and the MTW supply temperature at the rack inlet.
  struct NodeTemps {
    double gpu_c[machine::SummitSpec::kGpusPerNode] = {};
    double cpu_c[machine::SummitSpec::kCpusPerNode] = {};
  };
  [[nodiscard]] NodeTemps steady_temps(machine::NodeId node,
                                       const power::NodeComponentPower& p,
                                       double supply_c) const;

 private:
  machine::MachineScale scale_;
  machine::Topology topo_;
  ThermalParams params_;
  std::vector<double> gpu_r_;       ///< nodes * 6
  std::vector<double> cpu_r_;       ///< nodes * 2
  std::vector<double> cab_offset_;  ///< per cabinet
};

}  // namespace exawatt::thermal
