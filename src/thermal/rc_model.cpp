#include "thermal/rc_model.hpp"

#include <cmath>

#include "util/check.hpp"

namespace exawatt::thermal {

double rc_step(double t_now, double t_target, double dt_s, double tau_s) {
  EXA_CHECK(dt_s >= 0.0, "rc_step needs dt >= 0");
  EXA_CHECK(tau_s > 0.0, "rc_step needs tau > 0");
  const double alpha = 1.0 - std::exp(-dt_s / tau_s);
  return t_now + alpha * (t_target - t_now);
}

double rc_step_asymmetric(double t_now, double t_target, double dt_s,
                          double tau_up_s, double tau_down_s) {
  return rc_step(t_now, t_target, dt_s,
                 t_target >= t_now ? tau_up_s : tau_down_s);
}

}  // namespace exawatt::thermal
