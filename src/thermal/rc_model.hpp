#pragma once

#include "util/sim_time.hpp"

namespace exawatt::thermal {

/// First-order RC thermal step: the workhorse of every thermal model in
/// the twin. A component at temperature `t_now` driven toward steady
/// state `t_target` with time constant `tau_s` moves over `dt_s` as
///   T <- T + (1 - exp(-dt/tau)) (T* - T).
[[nodiscard]] double rc_step(double t_now, double t_target, double dt_s,
                             double tau_s);

/// Asymmetric variant: different time constants when heating vs cooling
/// (the paper observes the cooling loop attenuates slower on falling
/// edges than it reacts on rising ones).
[[nodiscard]] double rc_step_asymmetric(double t_now, double t_target,
                                        double dt_s, double tau_up_s,
                                        double tau_down_s);

}  // namespace exawatt::thermal
