#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace exawatt::util {

/// Single-pass numerically-stable accumulator for count/min/max/mean/std —
/// exactly the statistic set the paper stores per 10-second coarsening
/// window (Dataset 0). Welford's online algorithm for the variance.
class Welford {
 public:
  void add(double x) {
    ++count_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Merge another accumulator (parallel reduction; Chan et al. formula).
  void merge(const Welford& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(o.count_);
    const double delta = o.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += o.m2_ + delta * delta * n1 * n2 / n;
    count_ += o.count_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }
  /// Population variance (divide by n); 0 for n < 2.
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  /// Sample variance (divide by n-1); 0 for n < 2.
  [[nodiscard]] double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double sample_stddev() const {
    return std::sqrt(sample_variance());
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace exawatt::util
