#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace exawatt::util {

/// Simulation time: integer seconds since the simulated epoch
/// (2020-01-01 00:00:00, the first day of the paper's measurement year).
/// 2020 is a leap year: 366 days.
using TimeSec = std::int64_t;

inline constexpr TimeSec kSecond = 1;
inline constexpr TimeSec kMinute = 60;
inline constexpr TimeSec kHour = 3600;
inline constexpr TimeSec kDay = 86400;
inline constexpr TimeSec kWeek = 7 * kDay;
inline constexpr int kDaysInYear2020 = 366;
inline constexpr TimeSec kYear = kDaysInYear2020 * kDay;

/// Half-open time interval [begin, end).
struct TimeRange {
  TimeSec begin = 0;
  TimeSec end = 0;

  /// Width of the interval. Computed in unsigned arithmetic so hostile
  /// wire-supplied endpoints (e.g. INT64_MIN..INT64_MAX) are defined
  /// behavior: any range wider than INT64_MAX seconds wraps negative,
  /// which the grid validation guards already reject. Callers must still
  /// check begin <= end — an inverted range can wrap positive.
  [[nodiscard]] TimeSec duration() const {
    return static_cast<TimeSec>(static_cast<std::uint64_t>(end) -
                                static_cast<std::uint64_t>(begin));
  }
  [[nodiscard]] bool contains(TimeSec t) const { return t >= begin && t < end; }
  [[nodiscard]] bool overlaps(const TimeRange& o) const {
    return begin < o.end && o.begin < end;
  }
  /// Intersection; empty (begin==end) when disjoint.
  [[nodiscard]] TimeRange clamp(const TimeRange& o) const;
};

/// Calendar decomposition of a simulated instant (2020 calendar).
struct CalendarDate {
  int month = 1;        ///< 1..12
  int day_of_month = 1; ///< 1..31
  int day_of_year = 0;  ///< 0..365
  int week_of_year = 0; ///< 0..52 (day_of_year / 7)
  int hour = 0;         ///< 0..23
  int minute = 0;
  int second = 0;
};

[[nodiscard]] CalendarDate calendar(TimeSec t);

/// Day-of-year (0-based) for the simulated instant, wrapping multi-year
/// inputs back onto the 2020 calendar.
[[nodiscard]] int day_of_year(TimeSec t);

/// "MM-DD hh:mm:ss" rendering, for reports.
[[nodiscard]] std::string format_time(TimeSec t);

/// True when t falls in the paper's "summer window" used for Figures 11/12
/// (July 24 to Sept 30, 2020).
[[nodiscard]] bool in_summer_window(TimeSec t);

/// Injectable wall-clock seam for timeout/backoff code. Production code
/// takes a `Clock&` (defaulting to `Clock::steady()`); tests install a
/// `ManualClock` so retry policies and I/O delays run deterministically
/// without a single real sleep anywhere in the suite.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic microseconds; origin is implementation-defined.
  [[nodiscard]] virtual std::int64_t now_us() = 0;
  virtual void sleep_us(std::int64_t us) = 0;

  /// Process-global monotonic clock backed by std::chrono::steady_clock.
  static Clock& steady();
};

/// Test clock: `now_us` advances only through `sleep_us`/`advance_us`,
/// and every sleep is recorded for assertions.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(std::int64_t start_us = 0) : now_us_(start_us) {}

  [[nodiscard]] std::int64_t now_us() override { return now_us_; }
  void sleep_us(std::int64_t us) override {
    sleeps_.push_back(us);
    advance_us(us);
  }
  void advance_us(std::int64_t us) { now_us_ += us; }
  [[nodiscard]] const std::vector<std::int64_t>& sleeps() const {
    return sleeps_;
  }

 private:
  std::int64_t now_us_;
  std::vector<std::int64_t> sleeps_;
};

}  // namespace exawatt::util
