#include "util/thread_pool.hpp"

namespace exawatt::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mutex_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace exawatt::util
