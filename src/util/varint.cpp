#include "util/varint.hpp"

namespace exawatt::util {

std::size_t varint_encode(std::uint64_t v, std::vector<std::uint8_t>& out) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
    ++n;
  }
  out.push_back(static_cast<std::uint8_t>(v));
  return n + 1;
}

bool varint_decode(std::span<const std::uint8_t> in, std::size_t& pos,
                   std::uint64_t& out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < in.size() && shift < 64) {
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace exawatt::util
