#include "util/varint.hpp"

#include <algorithm>

namespace exawatt::util {

std::size_t varint_encode(std::uint64_t v, std::vector<std::uint8_t>& out) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
    ++n;
  }
  out.push_back(static_cast<std::uint8_t>(v));
  return n + 1;
}

bool varint_decode(std::span<const std::uint8_t> in, std::size_t& pos,
                   std::uint64_t& out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < in.size() && shift < 64) {
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

void VarintWriter::grow() {
  // Geometric growth keeps the amortized cost of the headroom O(1) per
  // byte; finish() trims the slack away.
  out_.resize(std::max<std::size_t>(kMaxVarintBytes + len_, out_.size() * 2));
}

bool VarintReader::read_tail(std::uint64_t& out) {
  std::size_t pos = 0;
  const std::span<const std::uint8_t> tail(
      p_, static_cast<std::size_t>(end_ - p_));
  if (!varint_decode(tail, pos, out)) return false;
  p_ += pos;
  return true;
}

}  // namespace exawatt::util
