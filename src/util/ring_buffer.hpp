#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace exawatt::util {

/// Bounded single-producer / single-consumer ring buffer — the per-shard
/// transport of the streaming ingest front-end (stream/ingest). Lock-free:
/// the producer owns `tail_`, the consumer owns `head_`, each published
/// with release/acquire ordering.
///
/// `push_overwrite` implements the drop-oldest backpressure policy: when
/// full, the producer advances `head_` past the oldest slot with a CAS it
/// races against the consumer's `pop` CAS. A consumer that loses the race
/// discards its (possibly torn) copy and retries, so T must be trivially
/// copyable — a stale read is thrown away, never observed.
template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing requires trivially copyable elements");

 public:
  /// Capacity is rounded up to a power of two (index masking).
  explicit SpscRing(std::size_t min_capacity) {
    EXA_CHECK(min_capacity > 0, "ring capacity must be positive");
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Occupancy snapshot (racy by nature; exact only when quiescent).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }

  /// Producer: append if space is available. Returns false when full.
  bool try_push(const T& item) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) >= slots_.size()) {
      return false;
    }
    slots_[t & mask_] = item;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Producer: append unconditionally, discarding the oldest element when
  /// full. Returns true when an element was dropped to make room.
  bool push_overwrite(const T& item) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    bool dropped = false;
    std::uint64_t h = head_.load(std::memory_order_acquire);
    while (t - h >= slots_.size()) {
      // Full: reclaim the oldest slot. A failed CAS means the consumer
      // popped it first, which also makes room.
      if (head_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        dropped = true;
        break;
      }
    }
    slots_[t & mask_] = item;
    tail_.store(t + 1, std::memory_order_release);
    return dropped;
  }

  /// Consumer: pop the oldest element. Returns false when empty.
  bool pop(T& out) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (h == tail_.load(std::memory_order_acquire)) return false;
      // Copy first, claim second: if the producer steals the slot via
      // push_overwrite between the two, the CAS fails and the copy is
      // discarded (trivially-copyable T makes the stale read harmless).
      out = slots_[h & mask_];
      if (head_.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return true;
      }
    }
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
};

}  // namespace exawatt::util
