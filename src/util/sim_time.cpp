#include "util/sim_time.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <thread>

namespace exawatt::util {

TimeRange TimeRange::clamp(const TimeRange& o) const {
  TimeRange r{begin > o.begin ? begin : o.begin, end < o.end ? end : o.end};
  if (r.end < r.begin) r.end = r.begin;
  return r;
}

namespace {
// Cumulative days at the start of each month, 2020 (leap year).
constexpr std::array<int, 13> kMonthStart = {0,   31,  60,  91,  121, 152, 182,
                                             213, 244, 274, 305, 335, 366};
}  // namespace

int day_of_year(TimeSec t) {
  auto day = t / kDay;
  day %= kDaysInYear2020;
  if (day < 0) day += kDaysInYear2020;
  return static_cast<int>(day);
}

CalendarDate calendar(TimeSec t) {
  CalendarDate d;
  d.day_of_year = day_of_year(t);
  d.week_of_year = d.day_of_year / 7;
  int m = 1;
  while (m < 12 && kMonthStart[static_cast<std::size_t>(m)] <= d.day_of_year) {
    ++m;
  }
  d.month = m;
  d.day_of_month = d.day_of_year - kMonthStart[static_cast<std::size_t>(m - 1)] + 1;
  TimeSec sec_of_day = ((t % kDay) + kDay) % kDay;
  d.hour = static_cast<int>(sec_of_day / kHour);
  d.minute = static_cast<int>((sec_of_day % kHour) / kMinute);
  d.second = static_cast<int>(sec_of_day % kMinute);
  return d;
}

std::string format_time(TimeSec t) {
  const CalendarDate d = calendar(t);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%02d-%02d %02d:%02d:%02d", d.month,
                d.day_of_month, d.hour, d.minute, d.second);
  return buf;
}

bool in_summer_window(TimeSec t) {
  // July 24 (day 205) .. Sept 30 (day 273) of 2020, 0-based day-of-year.
  const int doy = day_of_year(t);
  return doy >= 205 && doy <= 273;
}

namespace {

class SteadyClock final : public Clock {
 public:
  std::int64_t now_us() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void sleep_us(std::int64_t us) override {
    if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
};

}  // namespace

Clock& Clock::steady() {
  static SteadyClock clock;
  return clock;
}

}  // namespace exawatt::util
