#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace exawatt::util {

/// LEB128-style variable-length integer and zigzag codecs — the building
/// blocks of the telemetry archive's lossless compression (DESIGN.md:
/// delta + zigzag + varint + RLE), mirroring the paper's pipeline that
/// squeezes a 460k metrics/s stream to ~1 MB/s.

/// Map signed to unsigned so small-magnitude deltas get short encodings.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Append varint encoding of v to out. Returns bytes written (1..10).
std::size_t varint_encode(std::uint64_t v, std::vector<std::uint8_t>& out);

/// Decode one varint starting at `in[pos]`; advances pos.
/// Returns false on truncated/overlong input.
[[nodiscard]] bool varint_decode(std::span<const std::uint8_t> in,
                                 std::size_t& pos, std::uint64_t& out);

}  // namespace exawatt::util
