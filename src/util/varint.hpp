#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace exawatt::util {

/// LEB128-style variable-length integer and zigzag codecs — the building
/// blocks of the telemetry archive's lossless compression (DESIGN.md:
/// delta + zigzag + varint + RLE), mirroring the paper's pipeline that
/// squeezes a 460k metrics/s stream to ~1 MB/s.
///
/// Two tiers share one wire format: the scalar `varint_encode` /
/// `varint_decode` pair below is the reference implementation, and
/// `VarintWriter` / `VarintReader` are the bulk kernels the codec hot
/// loops use — pointer-based, one bounds/capacity check per varint
/// instead of per byte, byte-for-byte identical output and acceptance.

/// Longest wire encoding of a 64-bit value (ceil(64 / 7) bytes).
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Map signed to unsigned so small-magnitude deltas get short encodings.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Append varint encoding of v to out. Returns bytes written (1..10).
std::size_t varint_encode(std::uint64_t v, std::vector<std::uint8_t>& out);

/// Decode one varint starting at `in[pos]`; advances pos.
/// Returns false on truncated/overlong input.
[[nodiscard]] bool varint_decode(std::span<const std::uint8_t> in,
                                 std::size_t& pos, std::uint64_t& out);

/// Bulk varint appender: keeps the destination vector grown ahead of the
/// write cursor so each varint costs one capacity test plus raw pointer
/// stores — no per-byte push_back branch. Call `finish()` (or let the
/// destructor run) to trim the vector back to the bytes actually written.
class VarintWriter {
 public:
  explicit VarintWriter(std::vector<std::uint8_t>& out)
      : out_(out), len_(out.size()) {}
  VarintWriter(const VarintWriter&) = delete;
  VarintWriter& operator=(const VarintWriter&) = delete;
  ~VarintWriter() { finish(); }

  void write(std::uint64_t v) {
    if (out_.size() - len_ < kMaxVarintBytes) grow();
    std::uint8_t* p = out_.data() + len_;
    while (v >= 0x80) {
      *p++ = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    *p++ = static_cast<std::uint8_t>(v);
    len_ = static_cast<std::size_t>(p - out_.data());
  }

  /// Bytes written so far (what the vector will hold after finish()).
  [[nodiscard]] std::size_t size() const { return len_; }

  void finish() { out_.resize(len_); }

 private:
  void grow();

  std::vector<std::uint8_t>& out_;
  std::size_t len_;
};

/// Bulk varint cursor over a contiguous buffer. While at least
/// kMaxVarintBytes remain, `read` decodes with zero per-byte bounds
/// checks; the tail falls back to the checked scalar loop. Acceptance is
/// identical to `varint_decode`: overlong (>10 byte) and truncated
/// encodings return false.
class VarintReader {
 public:
  explicit VarintReader(std::span<const std::uint8_t> bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  [[nodiscard]] bool read(std::uint64_t& out) {
    if (static_cast<std::size_t>(end_ - p_) >= kMaxVarintBytes) {
      const std::uint8_t* p = p_;
      std::uint64_t b = *p++;
      std::uint64_t v = b & 0x7f;
      int shift = 7;
      while ((b & 0x80) != 0 && shift < 70) {
        b = *p++;
        v |= (b & 0x7f) << (shift & 63);
        shift += 7;
      }
      if ((b & 0x80) != 0) return false;
      p_ = p;
      out = v;
      return true;
    }
    return read_tail(out);
  }

  /// SWAR probes for the codec's hot case — a run of consecutive
  /// single-byte varints (smooth telemetry: almost every value delta
  /// fits 7 bits). One wide load and one mask test replace eight (or
  /// four) decode loops; on refusal (any continuation bit set, or too
  /// few bytes left) nothing is consumed and the caller falls back to
  /// `read`.
  [[nodiscard]] bool read8_1byte(std::uint64_t out[8]) {
    if (end_ - p_ >= 8) {
      std::uint64_t w = 0;
      std::memcpy(&w, p_, 8);
      if ((w & 0x8080808080808080ull) == 0) {
        for (int i = 0; i < 8; ++i) out[i] = p_[i];
        p_ += 8;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool read4_1byte(std::uint64_t out[4]) {
    if (end_ - p_ >= 4) {
      std::uint32_t w = 0;
      std::memcpy(&w, p_, 4);
      if ((w & 0x80808080u) == 0) {
        out[0] = p_[0];
        out[1] = p_[1];
        out[2] = p_[2];
        out[3] = p_[3];
        p_ += 4;
        return true;
      }
    }
    return false;
  }

  /// True once every byte has been consumed.
  [[nodiscard]] bool done() const { return p_ == end_; }
  [[nodiscard]] const std::uint8_t* pos() const { return p_; }

 private:
  [[nodiscard]] bool read_tail(std::uint64_t& out);

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace exawatt::util
