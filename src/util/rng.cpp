#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace exawatt::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::substream(std::uint64_t kind, std::uint64_t id) const {
  return Rng(hash_combine(hash_combine(s_[0] ^ s_[2], mix64(kind)), mix64(id)));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  EXA_CHECK(n > 0, "uniform_index needs n > 0");
  // Lemire's multiply-shift with rejection for unbiased results.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  EXA_CHECK(rate > 0.0, "exponential rate must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  EXA_CHECK(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = uniform();
    while (p > limit) {
      ++k;
      p *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for the
  // arrival-count use case (mean >= 64 -> relative error < 1%).
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::pareto(double xm, double alpha) {
  EXA_CHECK(xm > 0.0 && alpha > 0.0, "pareto needs xm > 0 and alpha > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  EXA_CHECK(!weights.empty(), "weighted_index needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    EXA_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  EXA_CHECK(total > 0.0, "weights must not all be zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;
}

}  // namespace exawatt::util
