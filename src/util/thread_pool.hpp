#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace exawatt::util {

/// Fixed-size worker pool used by the partitioned analytics frame
/// (mini-Dask). Tasks are type-erased std::function<void()>; submitters
/// wait on futures. Deliberately simple — no work stealing — because the
/// analytics partitions are coarse (days / node groups) and uniform.
class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion/result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lk(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Process-wide shared pool (lazily constructed, sized to the machine).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace exawatt::util
