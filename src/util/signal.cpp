#include "util/signal.hpp"

#include <csignal>

#include "util/check.hpp"

namespace exawatt::util {

namespace {

// Signal handlers may only touch lock-free atomics; everything here is.
std::atomic<bool> g_stop{false};
std::atomic<int> g_signum{0};
std::atomic<bool> g_installed{false};

struct sigaction g_prev_int;
struct sigaction g_prev_term;

void handle(int signum) {
  if (g_stop.exchange(true, std::memory_order_relaxed)) {
    // Second signal: the operator wants out now. Restore the default
    // disposition and re-raise so the process dies with the right code.
    ::signal(signum, SIG_DFL);
    ::raise(signum);
    return;
  }
  g_signum.store(signum, std::memory_order_relaxed);
}

}  // namespace

SignalTrap::SignalTrap() {
  EXA_CHECK(!g_installed.exchange(true, std::memory_order_acq_rel),
            "only one SignalTrap may be alive at a time");
  g_stop.store(false, std::memory_order_relaxed);
  g_signum.store(0, std::memory_order_relaxed);
  struct sigaction sa = {};
  sa.sa_handler = handle;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll/read must wake to see the flag
  ::sigaction(SIGINT, &sa, &g_prev_int);
  ::sigaction(SIGTERM, &sa, &g_prev_term);
}

SignalTrap::~SignalTrap() {
  ::sigaction(SIGINT, &g_prev_int, nullptr);
  ::sigaction(SIGTERM, &g_prev_term, nullptr);
  g_installed.store(false, std::memory_order_release);
}

bool SignalTrap::stop_requested() const {
  return g_stop.load(std::memory_order_relaxed);
}

int SignalTrap::signal_number() const {
  return g_signum.load(std::memory_order_relaxed);
}

void SignalTrap::simulate(int signum) {
  if (!g_stop.exchange(true, std::memory_order_relaxed)) {
    g_signum.store(signum, std::memory_order_relaxed);
  }
}

}  // namespace exawatt::util
