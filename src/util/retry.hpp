#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/vfs.hpp"

namespace exawatt::util {

/// Exponential backoff with a cap and multiplicative jitter. The store
/// uses it for transient segment/manifest write failures: the Nth retry
/// waits roughly base * 2^(N-1) microseconds, capped, then scaled by a
/// uniform draw in [1 - jitter, 1] so a fleet of writers desynchronizes.
struct BackoffPolicy {
  int max_attempts = 4;               ///< total tries, including the first
  std::int64_t base_delay_us = 1'000;
  std::int64_t max_delay_us = 250'000;
  double jitter = 0.5;                ///< 0 = deterministic delays
};

/// Delay before retry number `attempt` (1-based: the wait after the
/// attempt-th failure). Deterministic given the rng state.
[[nodiscard]] inline std::int64_t backoff_delay_us(const BackoffPolicy& policy,
                                                   int attempt, Rng& rng) {
  std::int64_t delay = policy.base_delay_us;
  for (int i = 1; i < attempt && delay < policy.max_delay_us; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, policy.max_delay_us);
  const double scale = 1.0 - policy.jitter * rng.uniform();
  delay = static_cast<std::int64_t>(static_cast<double>(delay) * scale);
  return std::max<std::int64_t>(delay, 0);
}

/// Run `fn`, retrying transient VfsError per `policy`; waits go through
/// `clock` so tests never sleep for real. Non-transient errors, other
/// exception types and the final exhausted attempt all rethrow.
template <typename F>
auto retry_transient(const BackoffPolicy& policy, Clock& clock, Rng& rng,
                     F&& fn) -> decltype(fn()) {
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const VfsError& e) {
      if (!e.transient() || attempt >= policy.max_attempts) throw;
      clock.sleep_us(backoff_delay_us(policy, attempt, rng));
    }
  }
}

}  // namespace exawatt::util
