#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace exawatt::util {

/// I/O error raised by a `Vfs` implementation. `transient()` marks
/// failures a caller may sensibly retry (EINTR-ish hiccups, injected
/// transient faults); ENOSPC, corruption and simulated crashes are
/// permanent. Higher layers (the store) translate this into their own
/// error type at the API boundary.
class VfsError : public std::runtime_error {
 public:
  explicit VfsError(const std::string& msg, bool transient = false)
      : std::runtime_error(msg), transient_(transient) {}
  [[nodiscard]] bool transient() const { return transient_; }

 private:
  bool transient_;
};

/// A file being written. Every `write` either persists all bytes or
/// throws — there is no silent short write anywhere behind this seam.
class VfsFile {
 public:
  virtual ~VfsFile() = default;
  virtual void write(std::span<const std::uint8_t> bytes) = 0;
  /// Flush, verify the stream state and close; throws VfsError if any
  /// buffered byte failed to reach the file.
  virtual void close() = 0;

  void write_text(std::string_view text) {
    write({reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
  }
};

/// A read-only byte view of a whole file, alive for as long as the
/// mapping object is. Real mappings are mmap(2)-backed, so the view
/// survives a concurrent unlink of the path — the property the store's
/// compactor relies on to retire segments under in-flight queries.
/// The bytes are a snapshot of the file at `map()` time; the seam makes
/// no promise about concurrent writers (sealed segments are immutable).
class VfsMapping {
 public:
  virtual ~VfsMapping() = default;
  [[nodiscard]] virtual std::span<const std::uint8_t> bytes() const = 0;
};

/// Minimal virtual-filesystem seam the on-disk store does all its I/O
/// through. Production uses `Vfs::real()`; tests wrap it in a
/// `faultfs::FaultVfs` to inject short writes, ENOSPC, bit flips,
/// crashes and delays deterministically while the system runs.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Create/truncate a file for writing.
  [[nodiscard]] virtual std::unique_ptr<VfsFile> create(
      const std::string& path) = 0;
  /// Read exactly `bytes` bytes at `offset`; throws on short read.
  [[nodiscard]] virtual std::vector<std::uint8_t> read_range(
      const std::string& path, std::uint64_t offset, std::size_t bytes) = 0;
  /// Read the whole file.
  [[nodiscard]] virtual std::vector<std::uint8_t> read_all(
      const std::string& path) = 0;
  [[nodiscard]] virtual std::uint64_t size(const std::string& path) = 0;
  [[nodiscard]] virtual bool exists(const std::string& path) = 0;
  virtual void rename(const std::string& from, const std::string& to) = 0;
  virtual void remove(const std::string& path) = 0;
  virtual void mkdirs(const std::string& path) = 0;
  /// Names (not paths) of the regular files in `dir`, sorted.
  [[nodiscard]] virtual std::vector<std::string> list(
      const std::string& dir) = 0;

  /// Map the whole file read-only. Returns nullptr when this Vfs does
  /// not support mapping (callers must fall back to `read_range`) and
  /// throws VfsError when mapping was attempted and failed. The default
  /// is "unsupported" so decorators and test doubles stay buffered
  /// unless they opt in.
  [[nodiscard]] virtual std::shared_ptr<VfsMapping> map(
      const std::string& path) {
    (void)path;
    return nullptr;
  }

  /// The process-global passthrough to the actual filesystem.
  static Vfs& real();
};

/// Direct std::filesystem / fstream implementation with every stream
/// operation checked — the repaired home of what used to be unchecked
/// ofstream/ifstream calls scattered through src/store.
class RealVfs final : public Vfs {
 public:
  [[nodiscard]] std::unique_ptr<VfsFile> create(
      const std::string& path) override;
  [[nodiscard]] std::vector<std::uint8_t> read_range(
      const std::string& path, std::uint64_t offset,
      std::size_t bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read_all(
      const std::string& path) override;
  [[nodiscard]] std::uint64_t size(const std::string& path) override;
  [[nodiscard]] bool exists(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void remove(const std::string& path) override;
  void mkdirs(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list(const std::string& dir) override;
  [[nodiscard]] std::shared_ptr<VfsMapping> map(
      const std::string& path) override;
};

}  // namespace exawatt::util
