#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace exawatt::util {

/// Minimal CSV writer — lets benches/examples dump the exact series behind
/// each regenerated figure for offline plotting (the paper's artifact repo
/// ships notebooks; we ship CSVs with the same columns).
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& values);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t columns_;
};

/// RFC-4180-ish quoting for a single field.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Minimal CSV reader matching CsvWriter's output (RFC-4180-ish quoting,
/// no embedded newlines). Loads the whole file; the datasets this library
/// round-trips are bounded exports, not the 8.5 TB archive.
class CsvReader {
 public:
  explicit CsvReader(const std::string& path);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }
  /// Column index by name; throws CheckError when absent.
  [[nodiscard]] std::size_t column(const std::string& name) const;
  /// Typed cell accessors.
  [[nodiscard]] double number(std::size_t row, std::size_t col) const;
  [[nodiscard]] const std::string& text(std::size_t row,
                                        std::size_t col) const;

 private:
  bool ok_ = false;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Split one CSV line into fields (handles quoted fields with embedded
/// commas and doubled quotes). Exposed for testing.
[[nodiscard]] std::vector<std::string> csv_split(const std::string& line);

}  // namespace exawatt::util
