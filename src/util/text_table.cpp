#include "util/text_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace exawatt::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  EXA_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  EXA_CHECK(cells.size() == header_.size(),
            "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << row[c]
         << std::string(width[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_si(double v, const char* unit, int precision) {
  static constexpr struct {
    double scale;
    const char* prefix;
  } kScales[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""}};
  const double a = std::fabs(v);
  for (const auto& s : kScales) {
    if (a >= s.scale || s.scale == 1.0) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*f %s%s", precision, v / s.scale,
                    s.prefix, unit);
      return buf;
    }
  }
  return fmt_double(v, precision) + unit;
}

std::string fmt_bar(double v, double vmax, int width) {
  if (vmax <= 0.0 || v <= 0.0 || width <= 0) return "";
  int n = static_cast<int>(std::lround(v / vmax * width));
  n = std::clamp(n, 0, width);
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace exawatt::util
