#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace exawatt::util {

/// Error thrown when a configuration-time invariant is violated.
///
/// ExaWatt validates inputs eagerly at the API boundary (constructors,
/// builders) and keeps hot loops check-free; see DESIGN.md §4.
class CheckError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace exawatt::util

/// Validate `cond`; throws util::CheckError with context on failure.
/// Usage: EXA_CHECK(n > 0, "node count must be positive");
#define EXA_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::exawatt::util::check_failed(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                     \
  } while (false)
