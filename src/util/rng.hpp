#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace exawatt::util {

/// SplitMix64 — used to seed and to derive per-entity substreams.
/// Reference: Steele, Lea, Flood (2014), "Fast splittable PRNGs".
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Deterministic, fast, and good
/// enough statistically for Monte-Carlo style trace synthesis.
///
/// Every stochastic model in ExaWatt owns an Rng derived from
/// (master seed, entity kind, entity id) via `substream`, so traces are
/// exactly reproducible regardless of evaluation order or thread count.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x185fe4d6c7ba90e1ULL);

  /// Derive an independent substream keyed by (kind, id). Streams with
  /// distinct keys are decorrelated via SplitMix64 seed scrambling.
  [[nodiscard]] Rng substream(std::uint64_t kind, std::uint64_t id) const;

  std::uint64_t next();
  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);
  /// Log-normal parameterized by the underlying normal's (mu, sigma).
  double lognormal(double mu, double sigma);
  /// Exponential with given rate (lambda).
  double exponential(double rate);
  /// Poisson with given mean (Knuth for small, PTRS-style normal approx
  /// above 64 to keep the year-long generators cheap).
  std::uint64_t poisson(double mean);
  /// Bernoulli.
  bool chance(double p);
  /// Pareto (Lomax-shifted) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha);
  /// Index drawn from the (unnormalized, non-negative) weights.
  std::size_t weighted_index(std::span<const double> weights);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Stable 64-bit mix of arbitrary integer keys (for hashing entity ids
/// into stream seeds and for deterministic per-entity jitter).
std::uint64_t mix64(std::uint64_t x);
std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

}  // namespace exawatt::util
