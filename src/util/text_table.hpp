#pragma once

#include <string>
#include <vector>

namespace exawatt::util {

/// Fixed-layout ASCII table used by the bench harnesses to print the same
/// rows/series the paper's figures report.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column-aligned cells and a header rule.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
[[nodiscard]] std::string fmt_double(double v, int precision = 3);
[[nodiscard]] std::string fmt_si(double v, const char* unit,
                                 int precision = 2);
/// Sparkline-style horizontal bar of width proportional to v/vmax.
[[nodiscard]] std::string fmt_bar(double v, double vmax, int width = 40);

}  // namespace exawatt::util
