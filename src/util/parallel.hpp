#pragma once

#include <cstddef>
#include <future>
#include <vector>

#include "util/thread_pool.hpp"

namespace exawatt::util {

/// Parallel index loop over [0, n): `fn(i)` for each i, chunked across the
/// pool. Falls back to a plain serial loop when the pool has one worker or
/// the trip count is tiny, so single-core CI behaves identically.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn,
                  ThreadPool& pool = ThreadPool::global()) {
  if (n == 0) return;
  const std::size_t workers = pool.size();
  if (workers <= 1 || n < 4) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = workers * 4 < n ? workers * 4 : n;
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t begin = 0; begin < n; begin += step) {
    const std::size_t end = begin + step < n ? begin + step : n;
    futs.push_back(pool.submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

/// Parallel map: returns {fn(0), ..., fn(n-1)} preserving order.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn,
                  ThreadPool& pool = ThreadPool::global())
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(n);
  parallel_for(
      n, [&](std::size_t i) { out[i] = fn(i); }, pool);
  return out;
}

/// Parallel tree reduction: maps fn over [0, n) then merges with `merge`.
/// `merge(acc, value)` must be associative. `init` is the identity.
template <typename Fn, typename R, typename Merge>
R parallel_reduce(std::size_t n, R init, Fn&& fn, Merge&& merge,
                  ThreadPool& pool = ThreadPool::global()) {
  auto parts = parallel_map(n, std::forward<Fn>(fn), pool);
  R acc = std::move(init);
  for (auto& p : parts) acc = merge(std::move(acc), std::move(p));
  return acc;
}

}  // namespace exawatt::util
