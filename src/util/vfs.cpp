#include "util/vfs.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace exawatt::util {

namespace fs = std::filesystem;

namespace {

class RealFile final : public VfsFile {
 public:
  explicit RealFile(const std::string& path)
      : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
    if (!out_) throw VfsError("vfs: cannot create " + path_);
  }

  void write(std::span<const std::uint8_t> bytes) override {
    out_.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!out_.good()) throw VfsError("vfs: short write to " + path_);
  }

  void close() override {
    out_.flush();
    if (!out_.good()) throw VfsError("vfs: flush failed for " + path_);
    out_.close();
    if (out_.fail()) throw VfsError("vfs: close failed for " + path_);
  }

 private:
  std::string path_;
  std::ofstream out_;
};

// mmap(2)-backed mapping. The fd is closed right after mapping — the
// kernel keeps the pages valid until munmap, including across an
// unlink of the path.
class RealMapping final : public VfsMapping {
 public:
  RealMapping(void* addr, std::size_t len) : addr_(addr), len_(len) {}
  RealMapping(const RealMapping&) = delete;
  RealMapping& operator=(const RealMapping&) = delete;
  ~RealMapping() override {
    if (addr_ != nullptr) ::munmap(addr_, len_);
  }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const override {
    return {static_cast<const std::uint8_t*>(addr_), len_};
  }

 private:
  void* addr_;
  std::size_t len_;
};

// Empty files cannot be mmap'd (mmap rejects length 0); an empty span
// with no backing pages serves the same contract.
class EmptyMapping final : public VfsMapping {
 public:
  [[nodiscard]] std::span<const std::uint8_t> bytes() const override {
    return {};
  }
};

}  // namespace

std::unique_ptr<VfsFile> RealVfs::create(const std::string& path) {
  return std::make_unique<RealFile>(path);
}

std::vector<std::uint8_t> RealVfs::read_range(const std::string& path,
                                              std::uint64_t offset,
                                              std::size_t bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw VfsError("vfs: cannot open " + path);
  in.seekg(static_cast<std::streamoff>(offset));
  std::vector<std::uint8_t> out(bytes);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(bytes));
  if (!in.good() || static_cast<std::size_t>(in.gcount()) != bytes) {
    throw VfsError("vfs: short read of " + std::to_string(bytes) +
                   " bytes at offset " + std::to_string(offset) + ": " + path);
  }
  return out;
}

std::vector<std::uint8_t> RealVfs::read_all(const std::string& path) {
  return read_range(path, 0, static_cast<std::size_t>(size(path)));
}

std::uint64_t RealVfs::size(const std::string& path) {
  std::error_code ec;
  const auto n = fs::file_size(path, ec);
  if (ec) throw VfsError("vfs: cannot stat " + path + ": " + ec.message());
  return n;
}

bool RealVfs::exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec) && !ec;
}

void RealVfs::rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    throw VfsError("vfs: rename " + from + " -> " + to + ": " + ec.message());
  }
}

void RealVfs::remove(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) throw VfsError("vfs: remove " + path + ": " + ec.message());
}

void RealVfs::mkdirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) throw VfsError("vfs: mkdirs " + path + ": " + ec.message());
}

std::vector<std::string> RealVfs::list(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> names;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file()) names.push_back(it->path().filename().string());
  }
  if (ec) throw VfsError("vfs: list " + dir + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

std::shared_ptr<VfsMapping> RealVfs::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw VfsError("vfs: cannot open for mapping " + path + ": " +
                   std::strerror(errno));
  }
  struct ::stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw VfsError("vfs: cannot stat for mapping " + path + ": " +
                   std::strerror(err));
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  if (len == 0) {
    ::close(fd);
    return std::make_shared<EmptyMapping>();
  }
  void* addr = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  ::close(fd);
  if (addr == MAP_FAILED) {
    throw VfsError("vfs: mmap failed for " + path + ": " +
                   std::strerror(err));
  }
  return std::make_shared<RealMapping>(addr, len);
}

Vfs& Vfs::real() {
  static RealVfs vfs;
  return vfs;
}

}  // namespace exawatt::util
