#include "util/flags.hpp"

#include <cstdlib>

namespace exawatt::util {

Flags::Flags(int argc, const char* const* argv) {
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key); }

std::string Flags::get(const std::string& key,
                       const std::string& fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

double Flags::get_number(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? std::strtod(it->second.c_str(), nullptr)
                             : fallback;
}

std::int64_t Flags::get_int(const std::string& key,
                            std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it != values_.end()
             ? std::strtoll(it->second.c_str(), nullptr, 10)
             : fallback;
}

}  // namespace exawatt::util
