#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace exawatt::util {

/// Tiny command-line parser for the tools:
///   tool <command> --name value --flag ...
/// Flags are "--key value" pairs ("--key=value" also accepted); a bare
/// "--key" is a boolean. Unknown positional arguments after the command
/// are collected in order.
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] const std::string& command() const { return command_; }
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace exawatt::util
