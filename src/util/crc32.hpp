#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace exawatt::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-block
/// and manifest checksum of the on-disk telemetry store. Pass a previous
/// return value as `crc` to checksum data incrementally.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t crc = 0);

[[nodiscard]] inline std::uint32_t crc32(std::string_view s,
                                         std::uint32_t crc = 0) {
  return crc32(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
      crc);
}

}  // namespace exawatt::util
