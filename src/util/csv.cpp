#include "util/csv.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/check.hpp"

namespace exawatt::util {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  EXA_CHECK(columns_ > 0, "CSV needs at least one column");
  for (std::size_t i = 0; i < header.size(); ++i) {
    out_ << (i ? "," : "") << csv_escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  EXA_CHECK(cells.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << (i ? "," : "") << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& values) {
  EXA_CHECK(values.size() == columns_, "CSV row width mismatch");
  char buf[64];
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%.9g", values[i]);
    out_ << (i ? "," : "") << buf;
  }
  out_ << '\n';
}

std::vector<std::string> csv_split(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

CsvReader::CsvReader(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  if (!std::getline(in, line)) return;
  header_ = csv_split(line);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows_.push_back(csv_split(line));
  }
  ok_ = true;
}

std::size_t CsvReader::column(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  EXA_CHECK(false, "no such CSV column: " + name);
  return 0;
}

double CsvReader::number(std::size_t row, std::size_t col) const {
  EXA_CHECK(row < rows_.size() && col < rows_[row].size(),
            "CSV cell out of range");
  return std::strtod(rows_[row][col].c_str(), nullptr);
}

const std::string& CsvReader::text(std::size_t row, std::size_t col) const {
  EXA_CHECK(row < rows_.size() && col < rows_[row].size(),
            "CSV cell out of range");
  return rows_[row][col];
}

}  // namespace exawatt::util
