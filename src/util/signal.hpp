#pragma once

#include <atomic>

namespace exawatt::util {

/// Process-wide SIGINT/SIGTERM trap for long-running commands. Installing
/// it replaces the default die-immediately disposition with a latched
/// flag the main loop polls, so `serve` and `stream` can drain and print
/// final stats instead of losing in-flight work. A second signal while
/// the flag is already set restores the default disposition and re-raises
/// — an operator who presses Ctrl-C twice means it.
///
/// Only one trap may be alive at a time (it owns the process-global
/// handlers); the destructor restores the previous dispositions.
class SignalTrap {
 public:
  SignalTrap();
  ~SignalTrap();

  SignalTrap(const SignalTrap&) = delete;
  SignalTrap& operator=(const SignalTrap&) = delete;

  /// True once SIGINT or SIGTERM has been received.
  [[nodiscard]] bool stop_requested() const;
  /// The signal number that tripped the trap (0 if none yet).
  [[nodiscard]] int signal_number() const;

  /// Testing hook: trip the trap as if a signal had arrived.
  static void simulate(int signum);
};

}  // namespace exawatt::util
