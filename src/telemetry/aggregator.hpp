#pragma once

#include <vector>

#include "telemetry/archive.hpp"
#include "ts/series.hpp"

namespace exawatt::telemetry {

/// 10-second coarsening of archived metric streams (paper Dataset 0):
/// per metric, per window: count/min/max/mean/std with sample-and-hold
/// semantics for the emit-on-change stream.
[[nodiscard]] ts::StatSeries aggregate_metric(const Archive& archive,
                                              MetricId id,
                                              util::TimeRange range,
                                              util::TimeSec window = 10);

/// Cluster-level roll-up of one channel across nodes (paper Dataset 1:
/// sum of per-node 10-second means). Returns the summed mean series;
/// `counts` (optional) receives the contributing-node count per window.
[[nodiscard]] ts::Series cluster_sum(const Archive& archive,
                                     const std::vector<machine::NodeId>& nodes,
                                     int channel, util::TimeRange range,
                                     util::TimeSec window = 10,
                                     std::vector<double>* counts = nullptr);

}  // namespace exawatt::telemetry
