#include "telemetry/collector.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace exawatt::telemetry {

Collector::Collector(CollectorParams params) : params_(params) {
  EXA_CHECK(params_.mean_delay_s >= 0.0 &&
                params_.max_delay_s >= params_.mean_delay_s,
            "collector delay parameters inconsistent");
}

std::vector<Collector::Arrival> Collector::ingest(
    const std::vector<MetricEvent>& events) {
  std::vector<Arrival> out;
  out.reserve(events.size());
  for (const auto& ev : events) {
    const machine::NodeId node = metric_node(ev.id);
    bool in_outage = false;
    for (const auto& o : outages_) {
      if (o.node == node && o.window.contains(ev.t)) {
        in_outage = true;
        break;
      }
    }
    if (in_outage) {
      ++dropped_;
      continue;
    }
    if (params_.loss_fraction > 0.0) {
      const std::uint64_t lh = util::mix64(
          util::hash_combine(params_.seed ^ 0x105eULL,
                             static_cast<std::uint64_t>(ev.id) * 131 +
                                 static_cast<std::uint64_t>(ev.t)));
      if (static_cast<double>(lh >> 11) * 0x1.0p-53 < params_.loss_fraction) {
        ++dropped_;
        continue;
      }
    }
    // Deterministic per-(node, second) delay: triangular-ish distribution
    // on [0, max] with the configured mean.
    const std::uint64_t h = util::mix64(
        static_cast<std::uint64_t>(ev.id / 100u) * 0x9e3779b97f4a7c15ULL ^
        static_cast<std::uint64_t>(ev.t));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    const double delay = std::min(
        params_.max_delay_s,
        params_.max_delay_s * std::pow(u, params_.max_delay_s /
                                              params_.mean_delay_s -
                                          1.0));
    delay_sum_ += delay;
    ++ingested_;
    out.push_back({ev, ev.t + static_cast<util::TimeSec>(std::lround(delay))});
  }
  return out;
}

}  // namespace exawatt::telemetry
