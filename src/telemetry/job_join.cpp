#include "telemetry/job_join.hpp"

#include "telemetry/aggregator.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace exawatt::telemetry {

JobPowerJoin join_job_power(const Archive& archive, const workload::Job& job,
                            util::TimeRange window, util::TimeSec agg_window) {
  EXA_CHECK(job.start >= 0, "job must be scheduled");
  const util::TimeRange overlap = window.clamp(job.interval());
  EXA_CHECK(overlap.duration() > 0, "job does not overlap the window");

  const auto nodes = job.node_list();
  const int channel = channel_of(MetricKind::kInputPower, 0);
  const auto n_windows = static_cast<std::size_t>(
      (overlap.duration() + agg_window - 1) / agg_window);

  JobPowerJoin join;
  std::vector<double> sum(n_windows, 0.0);
  join.coverage.assign(n_windows, 0.0);

  const auto per_node = util::parallel_map(nodes.size(), [&](std::size_t i) {
    return aggregate_metric(archive, metric_id(nodes[i], channel), overlap,
                            agg_window);
  });
  for (const auto& stat : per_node) {
    for (std::size_t w = 0; w < stat.size() && w < n_windows; ++w) {
      if (stat[w].count > 0) {
        sum[w] += stat[w].mean;
        join.coverage[w] += 1.0;
      }
    }
  }
  join.power_w = ts::Series(overlap.begin, agg_window, std::move(sum));
  return join;
}

}  // namespace exawatt::telemetry
