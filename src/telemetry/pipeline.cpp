#include "telemetry/pipeline.hpp"

#include "telemetry/bmc.hpp"
#include "telemetry/node_sampler.hpp"
#include "util/check.hpp"

namespace exawatt::telemetry {

Pipeline::Pipeline(std::vector<machine::NodeId> nodes,
                   const workload::AllocationIndex& alloc,
                   const power::FleetVariability& fleet,
                   const thermal::FleetThermal& thermals,
                   const facility::MsbModel& msb, double mtw_supply_c,
                   CollectorParams collector)
    : nodes_(std::move(nodes)),
      alloc_(&alloc),
      fleet_(&fleet),
      thermals_(&thermals),
      msb_(&msb),
      mtw_supply_c_(mtw_supply_c),
      collector_(collector) {
  EXA_CHECK(!nodes_.empty(), "pipeline needs at least one node");
}

PipelineStats Pipeline::run(util::TimeRange range, util::TimeSec flush_every) {
  EXA_CHECK(range.duration() > 0, "pipeline range must be non-empty");
  EXA_CHECK(flush_every > 0, "flush interval must be positive");

  std::vector<NodeSampler> samplers;
  std::vector<Bmc> bmcs;
  samplers.reserve(nodes_.size());
  bmcs.reserve(nodes_.size());
  for (machine::NodeId n : nodes_) {
    samplers.emplace_back(n, *alloc_, *fleet_, *thermals_, *msb_,
                          mtw_supply_c_);
    bmcs.emplace_back(n);
  }

  PipelineStats stats;
  std::vector<MetricEvent> batch;
  std::vector<Collector::Arrival> second_arrivals;
  for (util::TimeSec t = range.begin; t < range.end; ++t) {
    if (stop_.load(std::memory_order_relaxed)) break;
    second_arrivals.clear();
    for (std::size_t i = 0; i < samplers.size(); ++i) {
      const NodeSampler::Readings r = samplers[i].sample(t);
      stats.readings += r.values.size();
      auto events = bmcs[i].push(t, r.values);
      for (auto& arrival : collector_.ingest(events)) {
        // The archive indexes by emit time; arrival time models the
        // propagation delay the 10 s coarsening must absorb.
        batch.push_back(arrival.event);
        if (tap_) second_arrivals.push_back(arrival);
      }
    }
    if (tap_) tap_(t, second_arrivals);
    if ((t - range.begin + 1) % flush_every == 0) {
      if (batch_sink_ && !batch.empty()) batch_sink_(batch);
      archive_.append(std::move(batch));
      batch.clear();
    }
  }
  if (batch_sink_ && !batch.empty()) batch_sink_(batch);
  archive_.append(std::move(batch));

  stats.events = collector_.ingested();
  stats.compressed_bytes = archive_.compressed_bytes();
  stats.mean_delay_s = collector_.mean_delay_observed();
  stats.suppression_ratio =
      stats.events > 0 ? static_cast<double>(stats.readings) /
                             static_cast<double>(stats.events)
                       : 0.0;
  stats.compression_ratio = archive_.compression_ratio();
  stats.bytes_per_reading =
      stats.readings > 0 ? static_cast<double>(stats.compressed_bytes) /
                               static_cast<double>(stats.readings)
                         : 0.0;
  return stats;
}

}  // namespace exawatt::telemetry
