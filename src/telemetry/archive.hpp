#pragma once

#include <functional>
#include <map>
#include <vector>

#include "telemetry/codec.hpp"
#include "ts/series.hpp"

namespace exawatt::telemetry {

/// In-memory long-term telemetry archive: encoded blocks partitioned by
/// day, queryable per metric over a time range — the C++ stand-in for the
/// paper's "one tar of 1,440 parquet files per day" store (Dataset A).
class Archive {
 public:
  /// Append a batch; it is encoded into the partition of its first event.
  void append(std::vector<MetricEvent> events);

  [[nodiscard]] std::size_t total_events() const { return total_events_; }
  [[nodiscard]] std::size_t compressed_bytes() const { return bytes_; }
  [[nodiscard]] double compression_ratio() const {
    return bytes_ == 0 ? 0.0
                       : static_cast<double>(total_events_ *
                                             kRawEventBytes) /
                             static_cast<double>(bytes_);
  }
  [[nodiscard]] std::size_t partitions() const { return days_.size(); }

  /// All samples of one metric in [range.begin, range.end), time-sorted.
  [[nodiscard]] std::vector<ts::Sample> query(MetricId id,
                                              util::TimeRange range) const;

  /// Decode every block in day order, invoking `fn` per event (blocks in
  /// append order; events within a block sorted by metric, time). This is
  /// how the archive drains into durable sinks (store segments, exports).
  void scan(const std::function<void(const MetricEvent&)>& fn) const;

 private:
  std::map<std::int64_t, std::vector<EncodedBlock>> days_;
  std::size_t total_events_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace exawatt::telemetry
