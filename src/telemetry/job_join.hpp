#pragma once

#include "telemetry/archive.hpp"
#include "ts/series.hpp"
#include "workload/job.hpp"

namespace exawatt::telemetry {

/// The paper's Dataset 3 join: per-node telemetry time series joined with
/// the job-scheduler allocation to produce a per-job power series. This
/// is the measured counterpart of power::job_power_series (which
/// evaluates the model analytically) — the two must agree up to the
/// sensor calibration bias, which is exactly what the integration tests
/// assert.
///
/// Returns the summed 10 s mean input power of the job's nodes over its
/// runtime (clamped to `window`); windows with no data from any node get
/// a zero count in `coverage` (missing telemetry, as in the paper's
/// spring-2020 gap).
struct JobPowerJoin {
  ts::Series power_w;          ///< summed per-node 10 s means
  std::vector<double> coverage;  ///< contributing nodes per window
};

[[nodiscard]] JobPowerJoin join_job_power(const Archive& archive,
                                          const workload::Job& job,
                                          util::TimeRange window,
                                          util::TimeSec agg_window = 10);

}  // namespace exawatt::telemetry
