#include "telemetry/aggregator.hpp"

#include "util/parallel.hpp"

namespace exawatt::telemetry {

ts::StatSeries aggregate_metric(const Archive& archive, MetricId id,
                                util::TimeRange range, util::TimeSec window) {
  const std::vector<ts::Sample> samples = archive.query(id, range);
  return ts::coarsen(samples, window, range);
}

ts::Series cluster_sum(const Archive& archive,
                       const std::vector<machine::NodeId>& nodes, int channel,
                       util::TimeRange range, util::TimeSec window,
                       std::vector<double>* counts) {
  const auto n_windows =
      static_cast<std::size_t>((range.duration() + window - 1) / window);
  std::vector<double> sum(n_windows, 0.0);
  std::vector<double> cnt(n_windows, 0.0);

  // Per-node aggregation is embarrassingly parallel (mini-Dask partition
  // by node); the reduction merges into the shared accumulators serially.
  auto per_node = util::parallel_map(nodes.size(), [&](std::size_t i) {
    return aggregate_metric(archive, metric_id(nodes[i], channel), range,
                            window);
  });
  for (const auto& stat : per_node) {
    for (std::size_t w = 0; w < stat.size() && w < n_windows; ++w) {
      if (stat[w].count > 0) {
        sum[w] += stat[w].mean;
        cnt[w] += 1.0;
      }
    }
  }
  if (counts != nullptr) *counts = std::move(cnt);
  return ts::Series(range.begin, window, std::move(sum));
}

}  // namespace exawatt::telemetry
