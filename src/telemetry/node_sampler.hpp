#pragma once

#include <vector>

#include "facility/msb.hpp"
#include "power/component.hpp"
#include "telemetry/metric.hpp"
#include "thermal/node_thermal.hpp"
#include "workload/allocation_index.hpp"

namespace exawatt::telemetry {

/// Produces one node's raw 1 Hz sensor readings (before emit-on-change):
/// the on-chip-controller view of power and temperature, driven by the
/// job running on the node, the power/thermal models, and the sensor
/// calibration error model. Stateful: temperatures evolve through the
/// RC model between calls, so times must be fed monotonically.
class NodeSampler {
 public:
  NodeSampler(machine::NodeId node, const workload::AllocationIndex& alloc,
              const power::FleetVariability& fleet,
              const thermal::FleetThermal& thermals,
              const facility::MsbModel& msb, double mtw_supply_c);

  /// Sensor readings for every channel at time t. The returned vector is
  /// indexed by channel (size metrics_per_node()). Also exposes the
  /// ground-truth input power for validation studies.
  struct Readings {
    std::vector<std::int32_t> values;  ///< quantized, per channel
    double true_input_w = 0.0;         ///< unbiased node wall power
  };
  [[nodiscard]] Readings sample(util::TimeSec t);

  /// Current (unquantized) component temperatures — exposed so analyses
  /// can bypass the quantization when validating the thermal model.
  [[nodiscard]] const thermal::FleetThermal::NodeTemps& temps() const {
    return temps_;
  }

 private:
  machine::NodeId node_;
  const workload::AllocationIndex* alloc_;
  const power::FleetVariability* fleet_;
  const thermal::FleetThermal* thermals_;
  const facility::MsbModel* msb_;
  double mtw_supply_c_;
  thermal::FleetThermal::NodeTemps temps_;
  util::TimeSec last_t_ = -1;
};

}  // namespace exawatt::telemetry
