#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/metric.hpp"

namespace exawatt::telemetry {

/// Lossless block codec for telemetry events: sort by (metric, time),
/// then delta-encode metric ids, timestamps and values with zigzag +
/// varint, run-length-encoding repeated timestamp deltas. This is the
/// "several lossless compression methods throughout the pipeline" that
/// squeezed Summit's 460k metrics/s into ~1 MB/s (paper §2).
struct EncodedBlock {
  std::vector<std::uint8_t> bytes;
  std::size_t events = 0;

  /// Raw footprint of the same events as naive MetricEvent records.
  [[nodiscard]] std::size_t raw_bytes() const {
    return events * kRawEventBytes;
  }
  [[nodiscard]] double compression_ratio() const {
    return bytes.empty() ? 0.0
                         : static_cast<double>(raw_bytes()) /
                               static_cast<double>(bytes.size());
  }
};

/// Encode a batch (any order; the codec sorts a copy by metric, time).
[[nodiscard]] EncodedBlock encode_events(std::vector<MetricEvent> events);

/// Decode back to events sorted by (metric, time). Exact inverse.
[[nodiscard]] std::vector<MetricEvent> decode_events(const EncodedBlock& block);

}  // namespace exawatt::telemetry
