#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "telemetry/metric.hpp"
#include "ts/series.hpp"
#include "util/sim_time.hpp"

namespace exawatt::telemetry {

/// Lossless block codec for telemetry events: sort by (metric, time),
/// then delta-encode metric ids, timestamps and values with zigzag +
/// varint, run-length-encoding repeated timestamp deltas. This is the
/// "several lossless compression methods throughout the pipeline" that
/// squeezed Summit's 460k metrics/s into ~1 MB/s (paper §2).
///
/// Every entry point exists in two tiers sharing one wire format:
///   * the `_scalar` functions are the byte-at-a-time reference
///     implementation (the spec, kept for property tests), and
///   * the unsuffixed functions are the bulk fast path — pointer-based
///     varint kernels (util::VarintReader/Writer) with one bounds check
///     per varint, plus fused decode-filter / decode-aggregate kernels
///     that never materialize MetricEvent records.
/// Encoded bytes and decode acceptance are identical across tiers; all
/// decode paths validate the stream (truncation, run overruns, values
/// escaping int32) and throw util::CheckError instead of corrupting.
struct EncodedBlock {
  std::vector<std::uint8_t> bytes;
  std::size_t events = 0;

  /// Raw footprint of the same events as naive MetricEvent records.
  [[nodiscard]] std::size_t raw_bytes() const {
    return events * kRawEventBytes;
  }
  [[nodiscard]] double compression_ratio() const {
    return bytes.empty() ? 0.0
                         : static_cast<double>(raw_bytes()) /
                               static_cast<double>(bytes.size());
  }
};

/// Non-owning view of encoded block bytes — the decode-side twin of
/// `EncodedBlock`. The warm (mmap) tier hands decode kernels spans that
/// point straight into a mapped segment; an `EncodedBlock` converts
/// implicitly, so owning and zero-copy callers share every entry point.
/// The caller keeps the backing bytes alive across the decode call.
struct EncodedView {
  std::span<const std::uint8_t> bytes;
  std::size_t events = 0;

  EncodedView() = default;
  EncodedView(std::span<const std::uint8_t> bytes_in, std::size_t events_in)
      : bytes(bytes_in), events(events_in) {}
  // NOLINTNEXTLINE(google-explicit-constructor): deliberate implicit hop.
  EncodedView(const EncodedBlock& block)
      : bytes(block.bytes), events(block.events) {}
};

/// Encode a batch. Already (metric, time)-sorted input — the common case:
/// aggregator output and sealed segment buffers — is detected and encoded
/// in place; anything else is sorted first. Note the key is (id, t) only:
/// batches holding duplicate (id, t) pairs encode in whichever order the
/// tie-break leaves them (decode still returns the same multiset).
[[nodiscard]] EncodedBlock encode_events(std::vector<MetricEvent> events);

/// Zero-copy encode of a batch the caller guarantees is already sorted by
/// (metric, time) — checked. The segment writer feeds sorted sub-spans of
/// its sealed buffer straight through here.
[[nodiscard]] EncodedBlock encode_events_sorted(
    std::span<const MetricEvent> events);

/// Decode back to events sorted by (metric, time). Exact inverse.
[[nodiscard]] std::vector<MetricEvent> decode_events(const EncodedView& block);

/// Column of a trivial type that grows *without* value-initialization:
/// `resize_for_overwrite` hands back uninitialized storage the decode
/// loop overwrites front to back. std::vector::resize would memset the
/// whole column first — pure wasted write traffic on multi-MB decode
/// targets, measurable against the codec's 2x decode gate.
template <typename T>
class RawColumn {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Set size to n; contents are indeterminate until written.
  void resize_for_overwrite(std::size_t n) {
    if (n > cap_) {
      data_ = std::make_unique_for_overwrite<T[]>(n);
      cap_ = n;
    }
    size_ = n;
  }
  void assign(std::size_t n, T v) {
    resize_for_overwrite(n);
    std::fill_n(data_.get(), n, v);
  }
  void clear() { size_ = 0; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] T* data() { return data_.get(); }
  [[nodiscard]] const T* data() const { return data_.get(); }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const T* begin() const { return data_.get(); }
  [[nodiscard]] const T* end() const { return data_.get() + size_; }

 private:
  std::unique_ptr<T[]> data_;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

/// Reusable columnar decode target: `decode_events_into` fills these
/// caller-owned buffers instead of allocating a fresh event vector per
/// block, so a scan loop pays for the buffers once. Also the payload the
/// store's decoded-block cache retains.
struct DecodeScratch {
  RawColumn<MetricId> ids;
  RawColumn<std::int64_t> times;
  RawColumn<std::int32_t> values;

  [[nodiscard]] std::size_t size() const { return times.size(); }
  void clear() {
    ids.clear();
    times.clear();
    values.clear();
  }
  /// Heap bytes held (cache budget accounting).
  [[nodiscard]] std::size_t footprint_bytes() const {
    return ids.capacity() * sizeof(MetricId) +
           times.capacity() * sizeof(std::int64_t) +
           values.capacity() * sizeof(std::int32_t);
  }
};

/// Columnar decode: clears and fills `out` (capacity is reused across
/// calls). Same events, same order as `decode_events`.
void decode_events_into(const EncodedView& block, DecodeScratch& out);

/// Fused decode + filter: append samples of metric `want` with t in
/// `range` to `out`, never materializing events. Returns the block's
/// total decoded event count (callers cross-check it against directory
/// metadata). Appended order matches `decode_events` order.
std::size_t decode_filter_into(const EncodedView& block, MetricId want,
                               util::TimeRange range,
                               std::vector<ts::Sample>& out);

/// Fused decode + aggregate: accumulate metric `want`'s events straight
/// from the compressed stream onto the window grid of `range` —
/// sums[w] += value and ++counts[w] for w = (t - range.begin) / window,
/// in decode order (event-weighted, no sample-and-hold). Both spans must
/// hold ceil(range.duration() / window) entries. Returns the block's
/// total decoded event count.
std::size_t decode_sum_into(const EncodedView& block, MetricId want,
                            util::TimeRange range, util::TimeSec window,
                            std::span<double> sums,
                            std::span<std::uint64_t> counts);

/// Reference tier (the wire-format spec; see file comment).
[[nodiscard]] EncodedBlock encode_events_scalar(
    std::vector<MetricEvent> events);
[[nodiscard]] std::vector<MetricEvent> decode_events_scalar(
    const EncodedBlock& block);

}  // namespace exawatt::telemetry
