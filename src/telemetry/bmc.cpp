#include "telemetry/bmc.hpp"

#include "util/check.hpp"

namespace exawatt::telemetry {

Bmc::Bmc(machine::NodeId node) : node_(node) {}

std::vector<MetricEvent> Bmc::push(util::TimeSec t,
                                   const std::vector<std::int32_t>& values) {
  EXA_CHECK(values.size() == static_cast<std::size_t>(metrics_per_node()),
            "BMC push expects one value per channel");
  std::vector<MetricEvent> out;
  seen_ += values.size();
  if (!primed_) {
    last_ = values;
    primed_ = true;
    out.reserve(values.size());
    for (std::size_t c = 0; c < values.size(); ++c) {
      out.push_back({metric_id(node_, static_cast<int>(c)), t, values[c]});
    }
    emitted_ += out.size();
    return out;
  }
  for (std::size_t c = 0; c < values.size(); ++c) {
    if (values[c] != last_[c]) {
      last_[c] = values[c];
      out.push_back({metric_id(node_, static_cast<int>(c)), t, values[c]});
    }
  }
  emitted_ += out.size();
  return out;
}

}  // namespace exawatt::telemetry
