#include "telemetry/inband.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace exawatt::telemetry {

double inband_slowdown(double sample_hz, int metrics, int node_count,
                       InbandParams params) {
  EXA_CHECK(sample_hz >= 0.0, "sample rate must be non-negative");
  EXA_CHECK(metrics >= 0, "metric count must be non-negative");
  EXA_CHECK(node_count >= 1, "need at least one node");
  if (sample_hz == 0.0 || metrics == 0) return 0.0;
  const double base =
      sample_hz * static_cast<double>(metrics) * params.per_metric_cost_s;
  const double amplification =
      1.0 + params.sync_amplification * std::log(
                static_cast<double>(node_count));
  // Slowdown saturates at 1 (the daemon cannot consume more than the
  // machine); realistic regimes sit far below.
  return std::min(1.0, base * amplification);
}

double inband_lost_node_hours_per_year(double sample_hz, int metrics,
                                       int machine_nodes, double utilization,
                                       double typical_job_nodes,
                                       InbandParams params) {
  EXA_CHECK(machine_nodes >= 1, "need a machine");
  EXA_CHECK(utilization >= 0.0 && utilization <= 1.0,
            "utilization must be in [0,1]");
  EXA_CHECK(typical_job_nodes >= 1.0, "typical job size must be >= 1");
  const double slowdown = inband_slowdown(
      sample_hz, metrics, static_cast<int>(typical_job_nodes), params);
  const double busy_node_hours =
      static_cast<double>(machine_nodes) * utilization * 366.0 * 24.0;
  return busy_node_hours * slowdown;
}

}  // namespace exawatt::telemetry
