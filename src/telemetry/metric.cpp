#include "telemetry/metric.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace exawatt::telemetry {

int channel_of(MetricKind kind, int index) {
  EXA_CHECK(index >= 0 && index < metric_multiplicity(kind),
            "metric index out of range for kind");
  int base = 0;
  for (int k = 0; k < static_cast<int>(kind); ++k) {
    base += metric_multiplicity(static_cast<MetricKind>(k));
  }
  return base + index;
}

ChannelInfo channel_info(int channel) {
  EXA_CHECK(channel >= 0 && channel < metrics_per_node(),
            "channel out of range");
  for (int k = 0; k < static_cast<int>(MetricKind::kCount); ++k) {
    const int m = metric_multiplicity(static_cast<MetricKind>(k));
    if (channel < m) return {static_cast<MetricKind>(k), channel};
    channel -= m;
  }
  EXA_CHECK(false, "unreachable");
  return {MetricKind::kMisc, 0};
}

std::string metric_name(MetricId id) {
  const ChannelInfo info = channel_info(metric_channel(id));
  const machine::NodeId node = metric_node(id);
  const char* base = "";
  switch (info.kind) {
    case MetricKind::kInputPower: base = "input_power"; break;
    case MetricKind::kCpuPower: base = "p%d_power"; break;
    case MetricKind::kGpuPower: base = "gpu%d_power"; break;
    case MetricKind::kGpuCoreTemp: base = "gpu%d_core_temp"; break;
    case MetricKind::kGpuMemTemp: base = "gpu%d_mem_temp"; break;
    case MetricKind::kCpuCoreTemp: base = "p%d_core_temp"; break;
    case MetricKind::kFanSpeed: base = "fan%d_speed"; break;
    case MetricKind::kMisc: base = "misc%d"; break;
    case MetricKind::kCount: break;
  }
  char metric[48];
  std::snprintf(metric, sizeof metric, base, info.index);
  char buf[80];
  std::snprintf(buf, sizeof buf, "node%05d.%s", node, metric);
  return buf;
}

std::int32_t quantize(MetricKind kind, double value) {
  switch (kind) {
    case MetricKind::kGpuCoreTemp:
    case MetricKind::kGpuMemTemp:
    case MetricKind::kCpuCoreTemp:
      return static_cast<std::int32_t>(std::lround(value));  // 1 °C
    default:
      return static_cast<std::int32_t>(std::lround(value));  // 1 W / 1 RPM
  }
}

}  // namespace exawatt::telemetry
