#include "telemetry/archive.hpp"

#include <algorithm>

#include "util/sim_time.hpp"

namespace exawatt::telemetry {

void Archive::append(std::vector<MetricEvent> events) {
  if (events.empty()) return;
  const std::int64_t day = events.front().t / util::kDay;
  EncodedBlock block = encode_events(std::move(events));
  total_events_ += block.events;
  bytes_ += block.bytes.size();
  days_[day].push_back(std::move(block));
}

void Archive::scan(const std::function<void(const MetricEvent&)>& fn) const {
  for (const auto& [day, blocks] : days_) {
    for (const auto& block : blocks) {
      for (const auto& ev : decode_events(block)) fn(ev);
    }
  }
}

std::vector<ts::Sample> Archive::query(MetricId id,
                                       util::TimeRange range) const {
  std::vector<ts::Sample> out;
  const std::int64_t day_lo = range.begin / util::kDay - 1;
  const std::int64_t day_hi = range.end / util::kDay + 1;
  for (auto it = days_.lower_bound(day_lo);
       it != days_.end() && it->first <= day_hi; ++it) {
    for (const auto& block : it->second) {
      // Blocks are small (per-batch); decode and filter. A production
      // store would keep per-block (metric, time) fences; the in-memory
      // twin favours simplicity.
      for (const auto& ev : decode_events(block)) {
        if (ev.id == id && ev.t >= range.begin && ev.t < range.end) {
          out.push_back({ev.t, static_cast<double>(ev.value)});
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ts::Sample& a, const ts::Sample& b) { return a.t < b.t; });
  return out;
}

}  // namespace exawatt::telemetry
