#include "telemetry/codec.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/varint.hpp"

namespace exawatt::telemetry {

using util::varint_decode;
using util::varint_encode;
using util::zigzag_decode;
using util::zigzag_encode;

EncodedBlock encode_events(std::vector<MetricEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const MetricEvent& a, const MetricEvent& b) {
              return a.id < b.id || (a.id == b.id && a.t < b.t);
            });
  EncodedBlock block;
  block.events = events.size();
  auto& out = block.bytes;
  varint_encode(events.size(), out);

  MetricId prev_id = 0;
  std::int64_t prev_t = 0;
  std::int64_t prev_v = 0;
  std::size_t i = 0;
  while (i < events.size()) {
    // One run per metric: id delta, run length, then (dt, dv) pairs with
    // RLE on repeated dt (the common case: one emit per second).
    const MetricId id = events[i].id;
    std::size_t j = i;
    while (j < events.size() && events[j].id == id) ++j;
    varint_encode(id - prev_id, out);
    varint_encode(j - i, out);
    prev_id = id;
    prev_t = 0;
    prev_v = 0;
    std::size_t k = i;
    while (k < j) {
      const std::int64_t dt = events[k].t - prev_t;
      // Count how many consecutive events share this timestamp delta.
      std::size_t run = 1;
      std::int64_t t_cursor = events[k].t;
      while (k + run < j && events[k + run].t - t_cursor == dt) {
        t_cursor = events[k + run].t;
        ++run;
      }
      varint_encode(zigzag_encode(dt), out);
      varint_encode(run, out);
      for (std::size_t r = 0; r < run; ++r) {
        const std::int64_t v = events[k + r].value;
        varint_encode(zigzag_encode(v - prev_v), out);
        prev_v = v;
      }
      prev_t = events[k + run - 1].t;
      k += run;
    }
    i = j;
  }
  return block;
}

std::vector<MetricEvent> decode_events(const EncodedBlock& block) {
  std::vector<MetricEvent> events;
  std::size_t pos = 0;
  std::uint64_t total = 0;
  EXA_CHECK(varint_decode(block.bytes, pos, total), "truncated block header");
  events.reserve(total);

  MetricId prev_id = 0;
  while (events.size() < total) {
    std::uint64_t id_delta = 0;
    std::uint64_t run_len = 0;
    EXA_CHECK(varint_decode(block.bytes, pos, id_delta), "truncated id");
    EXA_CHECK(varint_decode(block.bytes, pos, run_len), "truncated run");
    const MetricId id = prev_id + static_cast<MetricId>(id_delta);
    prev_id = id;
    std::int64_t prev_t = 0;
    std::int64_t prev_v = 0;
    std::uint64_t emitted = 0;
    while (emitted < run_len) {
      std::uint64_t zdt = 0;
      std::uint64_t trun = 0;
      EXA_CHECK(varint_decode(block.bytes, pos, zdt), "truncated dt");
      EXA_CHECK(varint_decode(block.bytes, pos, trun), "truncated dt run");
      const std::int64_t dt = zigzag_decode(zdt);
      for (std::uint64_t r = 0; r < trun; ++r) {
        std::uint64_t zdv = 0;
        EXA_CHECK(varint_decode(block.bytes, pos, zdv), "truncated value");
        prev_t += dt;
        prev_v += zigzag_decode(zdv);
        events.push_back({id, prev_t, static_cast<std::int32_t>(prev_v)});
        ++emitted;
      }
    }
  }
  return events;
}

}  // namespace exawatt::telemetry
