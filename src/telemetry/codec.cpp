#include "telemetry/codec.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/check.hpp"
#include "util/varint.hpp"

namespace exawatt::telemetry {

using util::varint_decode;
using util::varint_encode;
using util::zigzag_decode;
using util::zigzag_encode;

namespace {

bool event_order(const MetricEvent& a, const MetricEvent& b) {
  return a.id < b.id || (a.id == b.id && a.t < b.t);
}

/// Corrupt blocks can carry arbitrary deltas; accumulate modulo 2^64 so
/// a poisoned stream trips the range checks below instead of signed
/// overflow. Identical to plain addition for every valid stream.
std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

bool fits_int32(std::int64_t v) {
  return v >= std::numeric_limits<std::int32_t>::min() &&
         v <= std::numeric_limits<std::int32_t>::max();
}

EncodedBlock encode_sorted_impl(std::span<const MetricEvent> events) {
  EncodedBlock block;
  block.events = events.size();
  block.bytes.reserve(events.size() + 16);
  util::VarintWriter w(block.bytes);
  w.write(events.size());

  MetricId prev_id = 0;
  std::size_t i = 0;
  while (i < events.size()) {
    // One run per metric: id delta, run length, then (dt, dv) pairs with
    // RLE on repeated dt (the common case: one emit per second).
    const MetricId id = events[i].id;
    std::size_t j = i;
    while (j < events.size() && events[j].id == id) ++j;
    w.write(id - prev_id);
    w.write(j - i);
    prev_id = id;
    std::int64_t prev_t = 0;
    std::int64_t prev_v = 0;
    std::size_t k = i;
    while (k < j) {
      const std::int64_t dt = events[k].t - prev_t;
      // Count how many consecutive events share this timestamp delta.
      std::size_t run = 1;
      std::int64_t t_cursor = events[k].t;
      while (k + run < j && events[k + run].t - t_cursor == dt) {
        t_cursor = events[k + run].t;
        ++run;
      }
      w.write(zigzag_encode(dt));
      w.write(run);
      for (std::size_t r = 0; r < run; ++r) {
        const std::int64_t v = events[k + r].value;
        w.write(zigzag_encode(v - prev_v));
        prev_v = v;
      }
      prev_t = events[k + run - 1].t;
      k += run;
    }
    i = j;
  }
  w.finish();
  return block;
}

/// Shared skeleton of every decode tier: walks the run structure with the
/// bulk varint reader, validates it, and hands each event to `emit(id, t,
/// v)`. `on_total(n)` fires once with the header's event count — the
/// validated upper bound the emit loop never exceeds, so sinks may
/// pre-size their buffers and write through raw pointers. `emit8(id,
/// t[8], v[8])` receives each full batch the SWAR lane decodes, letting
/// columnar sinks replace eight lambda calls with straight-line
/// (vectorizable) stores. Returns the total.
template <typename OnTotal, typename Emit, typename Emit8>
std::size_t decode_stream(const EncodedView& block, OnTotal&& on_total,
                          Emit&& emit, Emit8&& emit8) {
  util::VarintReader r(block.bytes);
  std::uint64_t total = 0;
  EXA_CHECK(r.read(total), "truncated block header");
  // Every event costs at least its one-byte value delta on the wire.
  EXA_CHECK(total <= block.bytes.size(), "implausible block event count");
  on_total(static_cast<std::size_t>(total));

  MetricId prev_id = 0;
  std::uint64_t decoded = 0;
  while (decoded < total) {
    std::uint64_t id_delta = 0;
    std::uint64_t run_len = 0;
    EXA_CHECK(r.read(id_delta), "truncated id");
    EXA_CHECK(r.read(run_len), "truncated run");
    EXA_CHECK(run_len <= total - decoded,
              "metric run overruns block event count");
    const MetricId id = prev_id + static_cast<MetricId>(id_delta);
    prev_id = id;
    std::int64_t prev_t = 0;
    std::int64_t prev_v = 0;
    std::uint64_t emitted = 0;
    while (emitted < run_len) {
      std::uint64_t zdt = 0;
      std::uint64_t trun = 0;
      EXA_CHECK(r.read(zdt), "truncated dt");
      EXA_CHECK(r.read(trun), "truncated dt run");
      EXA_CHECK(trun <= run_len - emitted, "dt run overruns metric run");
      const std::int64_t dt = zigzag_decode(zdt);
      std::uint64_t k = 0;
      // SWAR fast lanes: eight (then four) single-byte value deltas per
      // wide probe — the dominant shape for smooth telemetry. A probe
      // consumes nothing on refusal, so the scalar lane finishes the run.
      while (k + 8 <= trun) {
        std::uint64_t zdv8[8];
        if (!r.read8_1byte(zdv8)) break;
        // Prefix-sum the value deltas and fold the eight int32 range
        // tests into one branch: v fits iff (v + 2^31) has no high bits.
        std::int64_t vv[8];
        std::uint64_t out_of_range = 0;
        std::int64_t pv = prev_v;
        for (int q = 0; q < 8; ++q) {
          pv = wrap_add(pv, zigzag_decode(zdv8[q]));
          vv[q] = pv;
          out_of_range |=
              (static_cast<std::uint64_t>(pv) + 0x80000000ull) >> 32;
        }
        EXA_CHECK(out_of_range == 0, "decoded value outside int32 range");
        // Timestamps are an arithmetic progression within the dt run, so
        // compute each independently instead of chaining eight adds.
        const std::uint64_t t0 = static_cast<std::uint64_t>(prev_t);
        const std::uint64_t du = static_cast<std::uint64_t>(dt);
        std::int64_t t64[8];
        std::int32_t v32[8];
        for (int q = 0; q < 8; ++q) {
          t64[q] = static_cast<std::int64_t>(
              t0 + du * static_cast<std::uint64_t>(q + 1));
          v32[q] = static_cast<std::int32_t>(vv[q]);
        }
        emit8(id, t64, v32);
        prev_t = static_cast<std::int64_t>(t0 + du * 8);
        prev_v = pv;
        k += 8;
      }
      while (k + 4 <= trun) {
        std::uint64_t zdv4[4];
        if (!r.read4_1byte(zdv4)) break;
        for (int q = 0; q < 4; ++q) {
          prev_t = wrap_add(prev_t, dt);
          prev_v = wrap_add(prev_v, zigzag_decode(zdv4[q]));
          EXA_CHECK(fits_int32(prev_v), "decoded value outside int32 range");
          emit(id, prev_t, static_cast<std::int32_t>(prev_v));
        }
        k += 4;
      }
      for (; k < trun; ++k) {
        std::uint64_t zdv = 0;
        EXA_CHECK(r.read(zdv), "truncated value");
        prev_t = wrap_add(prev_t, dt);
        prev_v = wrap_add(prev_v, zigzag_decode(zdv));
        EXA_CHECK(fits_int32(prev_v), "decoded value outside int32 range");
        emit(id, prev_t, static_cast<std::int32_t>(prev_v));
      }
      emitted += trun;
    }
    decoded += run_len;
  }
  return static_cast<std::size_t>(total);
}

/// Per-event-sink overload: the SWAR batches fan back out to `emit`.
template <typename OnTotal, typename Emit>
std::size_t decode_stream(const EncodedView& block, OnTotal&& on_total,
                          Emit&& emit) {
  return decode_stream(
      block, on_total, emit,
      [&](MetricId id, const std::int64_t t[8], const std::int32_t v[8]) {
        for (int q = 0; q < 8; ++q) emit(id, t[q], v[q]);
      });
}

}  // namespace

EncodedBlock encode_events(std::vector<MetricEvent> events) {
  // Aggregator batches and sealed segment buffers arrive sorted; the
  // pre-check turns the dominant case into a pure encode pass.
  if (!std::is_sorted(events.begin(), events.end(), event_order)) {
    std::sort(events.begin(), events.end(), event_order);
  }
  return encode_sorted_impl(events);
}

EncodedBlock encode_events_sorted(std::span<const MetricEvent> events) {
  EXA_CHECK(std::is_sorted(events.begin(), events.end(), event_order),
            "encode_events_sorted requires (metric, time)-sorted input");
  return encode_sorted_impl(events);
}

std::vector<MetricEvent> decode_events(const EncodedView& block) {
  // reserve + push_back, not resize + cursor: resize value-initializes
  // the whole vector only for every byte to be overwritten — measurably
  // double write traffic on multi-MB blocks.
  std::vector<MetricEvent> events;
  decode_stream(
      block, [&](std::size_t total) { events.reserve(total); },
      [&](MetricId id, std::int64_t t, std::int32_t v) {
        events.push_back({id, t, v});
      });
  return events;
}

void decode_events_into(const EncodedView& block, DecodeScratch& out) {
  // Raw cursors into no-init columns: one size check per column per
  // block, no per-event capacity branches, and no resize memset.
  out.clear();
  MetricId* id_cursor = nullptr;
  std::int64_t* t_cursor = nullptr;
  std::int32_t* v_cursor = nullptr;
  decode_stream(
      block,
      [&](std::size_t total) {
        out.ids.resize_for_overwrite(total);
        out.times.resize_for_overwrite(total);
        out.values.resize_for_overwrite(total);
        id_cursor = out.ids.data();
        t_cursor = out.times.data();
        v_cursor = out.values.data();
      },
      [&](MetricId id, std::int64_t t, std::int32_t v) {
        *id_cursor++ = id;
        *t_cursor++ = t;
        *v_cursor++ = v;
      },
      [&](MetricId id, const std::int64_t t[8], const std::int32_t v[8]) {
#if defined(__SSE2__)
        // Non-temporal stores: the columns are written once front-to-back
        // and read later, so bypassing the cache skips the
        // read-for-ownership a plain store pays on every cold line —
        // roughly halving the sink's write traffic. Cursors stay 8-/4-byte
        // aligned (new[] is 16-byte aligned, lanes advance whole events).
        for (int q = 0; q < 8; ++q) {
          _mm_stream_si32(reinterpret_cast<int*>(id_cursor + q),
                          static_cast<int>(id));
        }
        for (int q = 0; q < 8; ++q) {
          _mm_stream_si64(reinterpret_cast<long long*>(t_cursor + q),
                          static_cast<long long>(t[q]));
        }
        for (int q = 0; q < 8; ++q) {
          _mm_stream_si32(reinterpret_cast<int*>(v_cursor + q), v[q]);
        }
#else
        for (int q = 0; q < 8; ++q) id_cursor[q] = id;
        std::memcpy(t_cursor, t, 8 * sizeof(t[0]));
        std::memcpy(v_cursor, v, 8 * sizeof(v[0]));
#endif
        id_cursor += 8;
        t_cursor += 8;
        v_cursor += 8;
      });
#if defined(__SSE2__)
  // Drain the write-combining buffers before the columns become visible
  // to other threads (the block cache publishes the scratch under a lock).
  _mm_sfence();
#endif
}

std::size_t decode_filter_into(const EncodedView& block, MetricId want,
                               util::TimeRange range,
                               std::vector<ts::Sample>& out) {
  return decode_stream(
      block, [](std::size_t) {},
      [&](MetricId id, std::int64_t t, std::int32_t v) {
        if (id == want && t >= range.begin && t < range.end) {
          out.push_back({t, static_cast<double>(v)});
        }
      });
}

std::size_t decode_sum_into(const EncodedView& block, MetricId want,
                            util::TimeRange range, util::TimeSec window,
                            std::span<double> sums,
                            std::span<std::uint64_t> counts) {
  EXA_CHECK(window > 0, "decode_sum_into window must be positive");
  const auto n_windows =
      static_cast<std::size_t>((range.duration() + window - 1) / window);
  EXA_CHECK(sums.size() >= n_windows && counts.size() >= n_windows,
            "decode_sum_into grid spans too small for range/window");
  return decode_stream(
      block, [](std::size_t) {},
      [&](MetricId id, std::int64_t t, std::int32_t v) {
        if (id != want || t < range.begin || t >= range.end) return;
        const auto w = static_cast<std::size_t>((t - range.begin) / window);
        sums[w] += static_cast<double>(v);
        ++counts[w];
      });
}

// ------------------------------------------------------- reference tier

EncodedBlock encode_events_scalar(std::vector<MetricEvent> events) {
  std::sort(events.begin(), events.end(), event_order);
  EncodedBlock block;
  block.events = events.size();
  auto& out = block.bytes;
  varint_encode(events.size(), out);

  MetricId prev_id = 0;
  std::int64_t prev_t = 0;
  std::int64_t prev_v = 0;
  std::size_t i = 0;
  while (i < events.size()) {
    const MetricId id = events[i].id;
    std::size_t j = i;
    while (j < events.size() && events[j].id == id) ++j;
    varint_encode(id - prev_id, out);
    varint_encode(j - i, out);
    prev_id = id;
    prev_t = 0;
    prev_v = 0;
    std::size_t k = i;
    while (k < j) {
      const std::int64_t dt = events[k].t - prev_t;
      std::size_t run = 1;
      std::int64_t t_cursor = events[k].t;
      while (k + run < j && events[k + run].t - t_cursor == dt) {
        t_cursor = events[k + run].t;
        ++run;
      }
      varint_encode(zigzag_encode(dt), out);
      varint_encode(run, out);
      for (std::size_t r = 0; r < run; ++r) {
        const std::int64_t v = events[k + r].value;
        varint_encode(zigzag_encode(v - prev_v), out);
        prev_v = v;
      }
      prev_t = events[k + run - 1].t;
      k += run;
    }
    i = j;
  }
  return block;
}

std::vector<MetricEvent> decode_events_scalar(const EncodedBlock& block) {
  std::vector<MetricEvent> events;
  std::size_t pos = 0;
  std::uint64_t total = 0;
  EXA_CHECK(varint_decode(block.bytes, pos, total), "truncated block header");
  EXA_CHECK(total <= block.bytes.size(), "implausible block event count");
  events.reserve(total);

  MetricId prev_id = 0;
  while (events.size() < total) {
    std::uint64_t id_delta = 0;
    std::uint64_t run_len = 0;
    EXA_CHECK(varint_decode(block.bytes, pos, id_delta), "truncated id");
    EXA_CHECK(varint_decode(block.bytes, pos, run_len), "truncated run");
    EXA_CHECK(run_len <= total - events.size(),
              "metric run overruns block event count");
    const MetricId id = prev_id + static_cast<MetricId>(id_delta);
    prev_id = id;
    std::int64_t prev_t = 0;
    std::int64_t prev_v = 0;
    std::uint64_t emitted = 0;
    while (emitted < run_len) {
      std::uint64_t zdt = 0;
      std::uint64_t trun = 0;
      EXA_CHECK(varint_decode(block.bytes, pos, zdt), "truncated dt");
      EXA_CHECK(varint_decode(block.bytes, pos, trun), "truncated dt run");
      EXA_CHECK(trun <= run_len - emitted, "dt run overruns metric run");
      const std::int64_t dt = zigzag_decode(zdt);
      for (std::uint64_t r = 0; r < trun; ++r) {
        std::uint64_t zdv = 0;
        EXA_CHECK(varint_decode(block.bytes, pos, zdv), "truncated value");
        prev_t = wrap_add(prev_t, dt);
        prev_v = wrap_add(prev_v, zigzag_decode(zdv));
        EXA_CHECK(fits_int32(prev_v), "decoded value outside int32 range");
        events.push_back({id, prev_t, static_cast<std::int32_t>(prev_v)});
        ++emitted;
      }
    }
  }
  return events;
}

}  // namespace exawatt::telemetry
