#pragma once

#include <cstdint>
#include <string>

#include "machine/topology.hpp"

namespace exawatt::telemetry {

/// The per-node OpenBMC metric schema (paper Dataset A key columns):
/// input power, per-socket power, per-GPU power, per-GPU core/memory
/// temperature, per-CPU core temperature, plus fan/miscellaneous slots
/// that pad the schema to the paper's "~100 metrics per node".
enum class MetricKind : std::uint8_t {
  kInputPower = 0,   ///< node wall power (W)
  kCpuPower,         ///< per socket (W), index 0..1
  kGpuPower,         ///< per device (W), index 0..5
  kGpuCoreTemp,      ///< per device (°C), index 0..5
  kGpuMemTemp,       ///< per device (°C), index 0..5
  kCpuCoreTemp,      ///< per socket (°C), index 0..1
  kFanSpeed,         ///< per fan (RPM), index 0..3
  kMisc,             ///< filler channels for ingest-rate benches
  kCount,
};

/// Slots per node for each kind.
[[nodiscard]] constexpr int metric_multiplicity(MetricKind kind) {
  switch (kind) {
    case MetricKind::kInputPower: return 1;
    case MetricKind::kCpuPower: return machine::SummitSpec::kCpusPerNode;
    case MetricKind::kGpuPower: return machine::SummitSpec::kGpusPerNode;
    case MetricKind::kGpuCoreTemp: return machine::SummitSpec::kGpusPerNode;
    case MetricKind::kGpuMemTemp: return machine::SummitSpec::kGpusPerNode;
    case MetricKind::kCpuCoreTemp: return machine::SummitSpec::kCpusPerNode;
    case MetricKind::kFanSpeed: return 4;
    case MetricKind::kMisc: return 73;  ///< pads the schema to 100/node
    case MetricKind::kCount: break;
  }
  return 0;
}

/// Total metric channels per node (must be 100, matching the paper).
[[nodiscard]] constexpr int metrics_per_node() {
  int total = 0;
  for (int k = 0; k < static_cast<int>(MetricKind::kCount); ++k) {
    total += metric_multiplicity(static_cast<MetricKind>(k));
  }
  return total;
}
static_assert(metrics_per_node() == 100,
              "schema must provide 100 metrics per node (paper §1)");

/// Dense per-node channel id in [0, metrics_per_node()).
[[nodiscard]] int channel_of(MetricKind kind, int index);
/// Inverse of channel_of.
struct ChannelInfo {
  MetricKind kind;
  int index;
};
[[nodiscard]] ChannelInfo channel_info(int channel);

/// Global metric id: node * 100 + channel.
using MetricId = std::uint32_t;
[[nodiscard]] inline MetricId metric_id(machine::NodeId node, int channel) {
  return static_cast<MetricId>(node) * 100u + static_cast<MetricId>(channel);
}
[[nodiscard]] inline machine::NodeId metric_node(MetricId id) {
  return static_cast<machine::NodeId>(id / 100u);
}
[[nodiscard]] inline int metric_channel(MetricId id) {
  return static_cast<int>(id % 100u);
}

[[nodiscard]] std::string metric_name(MetricId id);

/// A timestamped metric reading as emitted by a BMC.
struct MetricEvent {
  MetricId id = 0;
  std::int64_t t = 0;       ///< emit time (seconds)
  std::int32_t value = 0;   ///< quantized value (W, °C, RPM as integers)
};

/// Raw in-memory footprint of one event record — the denominator of every
/// compression ratio (codec, archive, on-disk store). Derived from the
/// struct so the accounting stays honest if the event layout changes.
inline constexpr std::size_t kRawEventBytes = sizeof(MetricEvent);

/// Quantization used before emit-on-change comparison: power to 1 W,
/// temperature to 1 °C — this is what makes the OpenBMC stream sparse
/// and the lossless codec effective.
[[nodiscard]] std::int32_t quantize(MetricKind kind, double value);

}  // namespace exawatt::telemetry
