#pragma once

#include <cstddef>

namespace exawatt::telemetry {

/// In-band collection overhead model — the counterfactual behind the
/// paper's §2 claim that the out-of-band path has *no* application
/// impact. An in-band daemon samples on the compute cores; for
/// bulk-synchronous applications each step waits for the slowest rank,
/// so per-node sampling noise is amplified with scale (the classic
/// OS-noise effect: expected max of n i.i.d. delays grows ~ log n).
struct InbandParams {
  /// CPU time to read and ship one metric sample in-band (s). OpenBMC
  /// REST polling costs far more than an in-kernel counter read; 40 us
  /// is a middle-of-the-road daemon.
  double per_metric_cost_s = 40e-6;
  /// Noise amplification per e-fold of node count for bulk-synchronous
  /// codes (0 = embarrassingly parallel, ~0.5-1 = tight-sync).
  double sync_amplification = 0.7;
};

/// Fractional job slowdown for in-band sampling at `sample_hz` of
/// `metrics` channels on a job spanning `node_count` nodes.
/// Out-of-band collection returns 0 by construction.
[[nodiscard]] double inband_slowdown(double sample_hz, int metrics,
                                     int node_count,
                                     InbandParams params = {});

/// Node-hours lost per year across a machine running `utilization` of
/// `machine_nodes` under the given in-band regime.
[[nodiscard]] double inband_lost_node_hours_per_year(
    double sample_hz, int metrics, int machine_nodes, double utilization,
    double typical_job_nodes, InbandParams params = {});

}  // namespace exawatt::telemetry
