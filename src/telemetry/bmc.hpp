#pragma once

#include <vector>

#include "telemetry/metric.hpp"
#include "util/sim_time.hpp"

namespace exawatt::telemetry {

/// Baseboard-management-controller emit-on-change filter (Figure 3):
/// the OpenBMC event subscription pushes a metric only when its
/// (quantized) value changes, which is what turns 100 metrics/node/second
/// into a sparse ~460k metrics/s stream cluster-wide.
class Bmc {
 public:
  explicit Bmc(machine::NodeId node);

  [[nodiscard]] machine::NodeId node() const { return node_; }

  /// Feed one second's readings (indexed by channel); returns the events
  /// whose values changed since the previous push. The first call emits
  /// everything (subscription snapshot).
  [[nodiscard]] std::vector<MetricEvent> push(
      util::TimeSec t, const std::vector<std::int32_t>& values);

  /// Total readings seen / events emitted (for suppression-ratio stats).
  [[nodiscard]] std::uint64_t readings_seen() const { return seen_; }
  [[nodiscard]] std::uint64_t events_emitted() const { return emitted_; }

 private:
  machine::NodeId node_;
  std::vector<std::int32_t> last_;
  bool primed_ = false;
  std::uint64_t seen_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace exawatt::telemetry
