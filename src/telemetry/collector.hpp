#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/metric.hpp"
#include "util/sim_time.hpp"

namespace exawatt::telemetry {

/// Fan-in collector: models the out-of-band management network path from
/// 288:1 websocket fan-in to the point of analysis. Payloads are
/// timestamped *at the aggregation point* after a per-node, per-second
/// propagation delay (mean ~2.5 s, max 5 s — paper §3), which is one of
/// the error sources the 10-second coarsening absorbs.
struct CollectorParams {
  double mean_delay_s = 2.5;
  double max_delay_s = 5.0;
  std::uint64_t seed = 1234;
  /// Random event-loss fraction in the aggregation path (the paper's
  /// spring-2020 software issues lost significant temperature data;
  /// analyses must tolerate holes). 0 disables.
  double loss_fraction = 0.0;
};

/// A total telemetry outage of one node over a window (the paper's
/// Figure 17 "bright green" cabinet with no data for the job).
struct NodeOutage {
  machine::NodeId node = 0;
  util::TimeRange window;
};

class Collector {
 public:
  explicit Collector(CollectorParams params = {});

  /// Stamp a batch of BMC events with their aggregation-point arrival
  /// time. Events keep their emit time in `t`; the returned vector pairs
  /// each event with its arrival timestamp (what the archive indexes by).
  struct Arrival {
    MetricEvent event;
    util::TimeSec arrival_t;
  };
  [[nodiscard]] std::vector<Arrival> ingest(
      const std::vector<MetricEvent>& events);

  /// Register a per-node outage window; events from that node in the
  /// window are dropped entirely.
  void add_outage(NodeOutage outage) { outages_.push_back(outage); }

  [[nodiscard]] std::uint64_t ingested() const { return ingested_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] double mean_delay_observed() const {
    return ingested_ > 0 ? delay_sum_ / static_cast<double>(ingested_) : 0.0;
  }

 private:
  CollectorParams params_;
  std::vector<NodeOutage> outages_;
  std::uint64_t ingested_ = 0;
  std::uint64_t dropped_ = 0;
  double delay_sum_ = 0.0;
};

}  // namespace exawatt::telemetry
