#pragma once

#include <atomic>
#include <functional>
#include <span>
#include <vector>

#include "facility/msb.hpp"
#include "power/component.hpp"
#include "telemetry/archive.hpp"
#include "telemetry/collector.hpp"
#include "thermal/node_thermal.hpp"
#include "workload/allocation_index.hpp"

namespace exawatt::telemetry {

/// End-to-end telemetry pipeline over a node subset and time window:
/// NodeSampler (1 Hz OCC readings) -> Bmc (emit-on-change) -> Collector
/// (fan-in + delay) -> codec -> Archive. This is the paper's Figure 2/3
/// data path; benches measure its ingest rate and compression, analyses
/// read back through Archive::query.
struct PipelineStats {
  std::uint64_t readings = 0;        ///< raw 1 Hz sensor readings
  std::uint64_t events = 0;          ///< emitted after change suppression
  std::size_t compressed_bytes = 0;
  double mean_delay_s = 0.0;
  double suppression_ratio = 0.0;    ///< readings / events
  double compression_ratio = 0.0;    ///< raw event bytes / compressed
  double bytes_per_reading = 0.0;    ///< end-to-end footprint efficiency
};

class Pipeline {
 public:
  /// Nodes to instrument (ids into the machine), shared models.
  Pipeline(std::vector<machine::NodeId> nodes,
           const workload::AllocationIndex& alloc,
           const power::FleetVariability& fleet,
           const thermal::FleetThermal& thermals,
           const facility::MsbModel& msb, double mtw_supply_c = 20.0,
           CollectorParams collector = {});

  /// Live bridge to downstream consumers (the streaming engine): called
  /// once per simulated second with every arrival stamped that second,
  /// before the events are archived. `now` is the wall-clock second the
  /// batch was handed over, i.e. the stream clock.
  using ArrivalTap =
      std::function<void(util::TimeSec now,
                         std::span<const Collector::Arrival> arrivals)>;
  void set_tap(ArrivalTap tap) { tap_ = std::move(tap); }

  /// Durable sink: called with every flushed batch just before it is
  /// encoded into the in-memory archive, so a store::Store (or any other
  /// persistent writer) can mirror the archive without re-running the
  /// simulation. Batches arrive exactly as `Archive::append` sees them,
  /// which is what keeps the two query paths bit-identical.
  using BatchSink = std::function<void(const std::vector<MetricEvent>&)>;
  void set_batch_sink(BatchSink sink) { batch_sink_ = std::move(sink); }

  /// Run the 1 Hz loop over [range.begin, range.end); events are batched
  /// per `flush_every` seconds into archive blocks.
  PipelineStats run(util::TimeRange range, util::TimeSec flush_every = 60);

  /// Thread/signal-safe early stop: run() finishes the current simulated
  /// second, flushes the partial batch, and returns with whatever was
  /// produced so far. Stats remain valid for the truncated window.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Archive& archive() const { return archive_; }
  [[nodiscard]] Archive& archive() { return archive_; }
  /// Transport-layer access (loss injection, outage registration).
  [[nodiscard]] Collector& collector() { return collector_; }

 private:
  std::vector<machine::NodeId> nodes_;
  const workload::AllocationIndex* alloc_;
  const power::FleetVariability* fleet_;
  const thermal::FleetThermal* thermals_;
  const facility::MsbModel* msb_;
  double mtw_supply_c_;
  Collector collector_;
  Archive archive_;
  ArrivalTap tap_;
  BatchSink batch_sink_;
  std::atomic<bool> stop_{false};
};

}  // namespace exawatt::telemetry
