#include "telemetry/node_sampler.hpp"

#include "power/job_power.hpp"
#include "thermal/rc_model.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace exawatt::telemetry {

using machine::SummitSpec;

NodeSampler::NodeSampler(machine::NodeId node,
                         const workload::AllocationIndex& alloc,
                         const power::FleetVariability& fleet,
                         const thermal::FleetThermal& thermals,
                         const facility::MsbModel& msb, double mtw_supply_c)
    : node_(node),
      alloc_(&alloc),
      fleet_(&fleet),
      thermals_(&thermals),
      msb_(&msb),
      mtw_supply_c_(mtw_supply_c) {
  // Start at idle steady state.
  const power::NodeComponentPower idle = power::idle_node_power(node_, fleet);
  temps_ = thermals_->steady_temps(node_, idle, mtw_supply_c_);
}

NodeSampler::Readings NodeSampler::sample(util::TimeSec t) {
  EXA_CHECK(t > last_t_, "NodeSampler times must be strictly increasing");
  const double dt =
      last_t_ < 0 ? 1.0 : static_cast<double>(t - last_t_);
  last_t_ = t;

  int rank = 0;
  const workload::Job* job = alloc_->job_at(node_, t, &rank);
  power::NodeComponentPower p =
      job != nullptr ? power::node_power_detail(*job, rank, t, *fleet_)
                     : power::idle_node_power(node_, *fleet_);

  // Closed-loop hardware protection: GPUs running into the slowdown band
  // derate their power draw (never engages under normal MTW supply; see
  // ThermalParams). The derate feeds back through the thermal model.
  {
    double derated = 0.0;
    for (int g = 0; g < SummitSpec::kGpusPerNode; ++g) {
      const double f =
          thermal::throttle_factor(temps_.gpu_c[g], thermals_->params());
      if (f < 1.0) {
        const double before = p.gpu_w[g];
        p.gpu_w[g] = SummitSpec::kGpuIdleW +
                     (p.gpu_w[g] - SummitSpec::kGpuIdleW) * f;
        derated += before - p.gpu_w[g];
      }
    }
    if (derated > 0.0) {
      p.input_w -= derated / SummitSpec::kPsuEfficiency;
    }
  }

  // Temperatures relax toward the steady state for the current power.
  const thermal::FleetThermal::NodeTemps target =
      thermals_->steady_temps(node_, p, mtw_supply_c_);
  const auto& tp = thermals_->params();
  for (int g = 0; g < SummitSpec::kGpusPerNode; ++g) {
    temps_.gpu_c[g] =
        thermal::rc_step(temps_.gpu_c[g], target.gpu_c[g], dt, tp.gpu_tau_s);
  }
  for (int c = 0; c < SummitSpec::kCpusPerNode; ++c) {
    temps_.cpu_c[c] =
        thermal::rc_step(temps_.cpu_c[c], target.cpu_c[c], dt, tp.cpu_tau_s);
  }

  Readings r;
  r.true_input_w = p.input_w;
  r.values.assign(static_cast<std::size_t>(metrics_per_node()), 0);
  auto set = [&](MetricKind kind, int index, double value) {
    r.values[static_cast<std::size_t>(channel_of(kind, index))] =
        quantize(kind, value);
  };

  set(MetricKind::kInputPower, 0,
      msb_->node_sensor_sample(node_, p.input_w, t));
  for (int c = 0; c < SummitSpec::kCpusPerNode; ++c) {
    set(MetricKind::kCpuPower, c, p.cpu_w[c]);
    set(MetricKind::kCpuCoreTemp, c, temps_.cpu_c[c]);
  }
  for (int g = 0; g < SummitSpec::kGpusPerNode; ++g) {
    set(MetricKind::kGpuPower, g, p.gpu_w[g]);
    set(MetricKind::kGpuCoreTemp, g, temps_.gpu_c[g]);
    // HBM runs a few degrees above the core under load.
    set(MetricKind::kGpuMemTemp, g,
        temps_.gpu_c[g] + 2.0 + 3.0 * p.gpu_w[g] / SummitSpec::kGpuTdpW);
  }
  // Fans track the rear-door air load (coarse; the node is water cooled).
  const double fan_rpm = 3000.0 + 2.0 * (p.input_w - 500.0);
  for (int f = 0; f < metric_multiplicity(MetricKind::kFanSpeed); ++f) {
    set(MetricKind::kFanSpeed, f, fan_rpm);
  }
  // Misc channels: slowly varying counters/voltages; mostly constant so
  // emit-on-change keeps them silent (as on the real system).
  const int misc_n = metric_multiplicity(MetricKind::kMisc);
  for (int m = 0; m < misc_n; ++m) {
    const double base = 1000.0 + 10.0 * m;
    const double wiggle =
        static_cast<double>((util::mix64(static_cast<std::uint64_t>(
                                node_ * 131 + m) ^
                            static_cast<std::uint64_t>(t / 300)) >>
                            58));
    set(MetricKind::kMisc, m, base + wiggle);
  }
  return r;
}

}  // namespace exawatt::telemetry
