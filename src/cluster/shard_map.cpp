#include "cluster/shard_map.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"
#include "util/crc32.hpp"

namespace exawatt::cluster {

namespace {
constexpr const char* kMagicLine = "exawatt-shardmap 1";
}

ShardMap ShardMap::uniform(std::size_t shards) {
  EXA_CHECK(shards > 0 && shards <= kSlots,
            "shard count must be in [1, kSlots]");
  ShardMap map;
  map.shards_ = shards;
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    map.slot_to_shard_[slot] = static_cast<std::uint16_t>(slot % shards);
  }
  return map;
}

void ShardMap::assign_slot(std::size_t slot, std::size_t shard) {
  EXA_CHECK(slot < kSlots, "slot out of range");
  EXA_CHECK(shard < shards_, "shard out of range");
  slot_to_shard_[slot] = static_cast<std::uint16_t>(shard);
  ++version_;
}

std::vector<std::vector<telemetry::MetricEvent>> ShardMap::split(
    std::span<const telemetry::MetricEvent> events) const {
  std::vector<std::vector<telemetry::MetricEvent>> out(shards_);
  for (const telemetry::MetricEvent& e : events) {
    out[shard_of(e.id)].push_back(e);
  }
  return out;
}

std::string ShardMap::encode() const {
  std::ostringstream body;
  body << kMagicLine << '\n';
  body << "shards " << shards_ << '\n';
  body << "version " << version_ << '\n';
  body << "slots";
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    body << ' ' << slot_to_shard_[slot];
  }
  body << '\n';
  const std::string payload = body.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08" PRIx32 "\n",
                util::crc32(payload));
  return payload + crc_line;
}

ShardMap ShardMap::decode(const std::string& text) {
  const std::size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      text[crc_pos - 1] != '\n') {
    throw store::StoreError("shard map: missing crc line");
  }
  const std::string payload = text.substr(0, crc_pos);
  std::uint32_t want = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %" SCNx32, &want) != 1 ||
      util::crc32(payload) != want) {
    throw store::StoreError(
        "shard map: checksum mismatch (torn or edited file)");
  }

  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != kMagicLine) {
    throw store::StoreError("shard map: bad magic line");
  }
  ShardMap map;
  std::string tag;
  std::istringstream shards_line, version_line;
  if (!std::getline(in, line)) {
    throw store::StoreError("shard map: missing shards line");
  }
  shards_line.str(line);
  if (!(shards_line >> tag >> map.shards_) || tag != "shards" ||
      map.shards_ == 0 || map.shards_ > kSlots) {
    throw store::StoreError("shard map: malformed shards line: " + line);
  }
  if (!std::getline(in, line)) {
    throw store::StoreError("shard map: missing version line");
  }
  version_line.str(line);
  if (!(version_line >> tag >> map.version_) || tag != "version") {
    throw store::StoreError("shard map: malformed version line: " + line);
  }
  if (!std::getline(in, line)) {
    throw store::StoreError("shard map: missing slots line");
  }
  std::istringstream slots_line(line);
  if (!(slots_line >> tag) || tag != "slots") {
    throw store::StoreError("shard map: malformed slots line: " + line);
  }
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    std::uint32_t shard = 0;
    if (!(slots_line >> shard) || shard >= map.shards_) {
      throw store::StoreError("shard map: bad slot assignment");
    }
    map.slot_to_shard_[slot] = static_cast<std::uint16_t>(shard);
  }
  std::uint32_t extra = 0;
  if (slots_line >> extra) {
    throw store::StoreError("shard map: too many slot assignments");
  }
  return map;
}

void ShardMap::save(const std::string& path, util::Vfs* vfs) const {
  util::Vfs& fs = vfs != nullptr ? *vfs : util::Vfs::real();
  const std::string tmp = path + ".tmp";
  auto out = fs.create(tmp);
  out->write_text(encode());
  out->close();
  fs.rename(tmp, path);
}

bool ShardMap::load(const std::string& path, ShardMap& out, util::Vfs* vfs) {
  util::Vfs& fs = vfs != nullptr ? *vfs : util::Vfs::real();
  if (!fs.exists(path)) return false;
  const std::vector<std::uint8_t> bytes = fs.read_all(path);
  out = decode(std::string(bytes.begin(), bytes.end()));
  return true;
}

}  // namespace exawatt::cluster
