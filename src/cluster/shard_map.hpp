#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "store/format.hpp"
#include "telemetry/metric.hpp"
#include "util/vfs.hpp"

namespace exawatt::cluster {

/// Mixes a metric id into a hash slot. splitmix64's finalizer: cheap,
/// well-distributed, and frozen forever — the placement of every sealed
/// segment depends on it, so changing it is a data migration.
[[nodiscard]] constexpr std::uint64_t slot_hash(telemetry::MetricId id) {
  std::uint64_t x = static_cast<std::uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The cluster's partitioning contract: 256 hash slots, each assigned to
/// one shard. Ingest routes every event by `shard_of(metric id)`; reads
/// do NOT trust the map (rebalancing moves sealed segments wherever load
/// demands), they scatter by per-shard directories instead. The map is
/// persisted in the manifest idiom — checksummed text replaced only by
/// atomic rename — and carries a version so a rebalance flip is a
/// visible, ordered event.
class ShardMap {
 public:
  static constexpr std::size_t kSlots = 256;

  /// Round-robin slot assignment over `shards` shards (the default map).
  [[nodiscard]] static ShardMap uniform(std::size_t shards);

  [[nodiscard]] std::size_t shard_of(telemetry::MetricId id) const {
    return slot_to_shard_[slot_hash(id) % kSlots];
  }
  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Reassign one slot (a targeted rebalance step); bumps the version.
  void assign_slot(std::size_t slot, std::size_t shard);

  /// Partition a batch into per-shard batches, preserving input order
  /// within each shard — the router's ingest path.
  [[nodiscard]] std::vector<std::vector<telemetry::MetricEvent>> split(
      std::span<const telemetry::MetricEvent> events) const;

  [[nodiscard]] std::string encode() const;
  /// Throws store::StoreError on bad magic/CRC/shape.
  [[nodiscard]] static ShardMap decode(const std::string& text);

  /// Atomic save to `path` (tmp + rename) through the Vfs seam.
  void save(const std::string& path, util::Vfs* vfs = nullptr) const;
  /// Returns false (untouched out) when `path` does not exist; throws
  /// store::StoreError when it exists but is corrupt.
  static bool load(const std::string& path, ShardMap& out,
                   util::Vfs* vfs = nullptr);

 private:
  std::size_t shards_ = 1;
  std::uint64_t version_ = 1;
  std::array<std::uint16_t, kSlots> slot_to_shard_{};
};

}  // namespace exawatt::cluster
