#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/client.hpp"
#include "server/service.hpp"
#include "server/wire.hpp"
#include "util/sim_time.hpp"

namespace exawatt::cluster {

namespace wire = server::wire;

/// One shard's address as the coordinator dials it.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct CoordinatorOptions {
  std::vector<Endpoint> shards;
  /// Per-shard client budgets (each scatter leg is one Client::call).
  int connect_timeout_ms = 2000;
  int request_timeout_ms = 5000;
  int max_reconnects = 1;
  /// Deadline clock; nullptr = steady wall clock (match the fronting
  /// service's clock so inherited deadlines agree).
  util::Clock* clock = nullptr;
  /// Skip shards whose cached directory proves they hold nothing in the
  /// query range. Off by default: directories are cached at first
  /// contact and only refreshed via refresh_directories(), so a shard
  /// that ingests or seals after its snapshot could be wrongly pruned —
  /// fresh data silently omitted without even a lost_segments charge.
  /// Opt in only for a quiesced cluster (no concurrent ingest), and
  /// refresh_directories() after any flush/rebalance.
  bool prune = false;
  /// Scatter kScan legs as chunked streams of about this payload size,
  /// so a shard's scan flows through its stream gate instead of
  /// materializing per leg. 0 = classic single-frame legs. Safe against
  /// old shards: the Client's per-connection downgrade retries plain.
  std::uint32_t leg_chunk_bytes = 256 << 10;
};

/// Per-shard health/traffic counters, as reported by shard_stats().
struct ShardStats {
  std::string endpoint;
  bool up = true;                       ///< last contact succeeded
  std::uint64_t calls = 0;              ///< scatter legs attempted
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;               ///< RESOURCE_EXHAUSTED answers
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t other_errors = 0;       ///< remaining non-OK statuses
  std::uint64_t transport_errors = 0;   ///< NetError after client retries
  std::uint64_t reconnect_attempts = 0;
  std::uint64_t reconnect_successes = 0;
  std::uint64_t latency_us_total = 0;   ///< over completed legs (any status)
  std::uint64_t latency_us_max = 0;

  [[nodiscard]] double mean_latency_ms() const {
    const std::uint64_t legs = ok + shed + deadline_exceeded + other_errors;
    return legs == 0 ? 0.0
                     : static_cast<double>(latency_us_total) /
                           static_cast<double>(legs) / 1000.0;
  }
};

/// Scatter-gather front-end over N shard query servers. Plans each read
/// against cached per-shard segment directories (time-range pruning),
/// scatters sub-queries concurrently through one `server::Client` per
/// shard with the parent's remaining deadline, and merges partials back
/// into the single-store answer shapes — bit-identical to one Store
/// holding the union of the shards (the `clustercheck` gate).
///
/// Degraded reads: a shard that is down, times out, or sheds does not
/// fail the query. Its would-have-been contribution is charged to
/// `QueryStats::lost_segments` (the cached directory's overlap count, or
/// 1 when the directory was never seen) and the merge proceeds with the
/// shards that answered — partial results with honest accounting, never
/// wrong values, mirroring the store's damaged-segment contract.
///
/// Thread-safe: concurrent execute() calls are fine; each shard link
/// serializes its connection behind a mutex (one request in flight per
/// connection is the Client's contract).
class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Serve one request against the cluster. Honors `cancel` and the
  /// absolute `deadline_us` (0 = none) between scatter phases; in-flight
  /// legs are bounded by the inherited per-shard deadline instead.
  /// `emit` is the optional tick channel (kScenarioSweep streaming).
  [[nodiscard]] wire::Response execute(
      const wire::Request& request, const server::CancelToken& cancel,
      std::int64_t deadline_us,
      const server::QueryService::Emit& emit = nullptr);

  /// Adapter: run this coordinator behind a QueryService — the same
  /// admission queue, deadline policy and counters a shard server has.
  /// The coordinator must outlive the service.
  [[nodiscard]] server::QueryService::Executor executor();
  /// Companion for QueryService::set_stats_augment: fills the
  /// shard/reconnect fields of a kServerStats response.
  void augment_stats(wire::ServerStatsWire& server) const;

  /// Re-fetch every shard's directory now (e.g. after ingest/flush).
  /// Unreachable shards keep their stale directory for loss accounting.
  void refresh_directories();

  /// Point one shard at a new address (restart/failover); drops the
  /// connection and cached directory, keeps the traffic counters.
  void set_endpoint(std::size_t shard, Endpoint endpoint);

  [[nodiscard]] std::size_t shards() const { return links_.size(); }
  [[nodiscard]] std::vector<ShardStats> shard_stats() const;

  /// Hull of the shard bounds (shards holding no events are skipped) —
  /// the cluster analogue of Store::bounds(), used to clamp pue_rollup
  /// replays exactly the way a single store would.
  [[nodiscard]] util::TimeRange bounds();

 private:
  struct Link;

  [[nodiscard]] wire::Response call_shard(Link& link, wire::Request request,
                                          std::int64_t deadline_us);
  void ensure_directory(Link& link, std::int64_t deadline_us);
  [[nodiscard]] std::uint64_t lost_cost(const Link& link,
                                        util::TimeRange range) const;
  [[nodiscard]] bool may_hold(const Link& link, util::TimeRange range) const;

  /// Scatter `sub` to every shard that may hold data in `range`, merge
  /// degradation accounting into `stats`, and return the OK responses.
  [[nodiscard]] std::vector<wire::Response> scatter(
      const wire::Request& sub, util::TimeRange range,
      std::int64_t deadline_us, store::QueryStats* stats);

  CoordinatorOptions options_;
  util::Clock& clock_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace exawatt::cluster
