#include "cluster/coordinator.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "cluster/merge.hpp"
#include "net/fanout.hpp"
#include "store/store.hpp"
#include "stream/replay.hpp"
#include "telemetry/metric.hpp"
#include "ts/series.hpp"
#include "util/check.hpp"

namespace exawatt::cluster {

namespace {

/// Shard scan legs ride the wire protocol's scan method, which bounds a
/// request to this many metric ids — so node fan-ins above it cannot be
/// clustered (the coordinator rejects them instead of silently cropping).
constexpr std::size_t kMaxScanIds = 4096;

[[nodiscard]] server::ClientOptions client_options(
    const Endpoint& endpoint, const CoordinatorOptions& options) {
  server::ClientOptions out;
  out.host = endpoint.host;
  out.port = endpoint.port;
  out.connect_timeout_ms = options.connect_timeout_ms;
  out.request_timeout_ms = options.request_timeout_ms;
  out.max_reconnects = options.max_reconnects;
  return out;
}

/// SegmentMeta bounds are inclusive; query ranges are half-open.
[[nodiscard]] bool segment_overlaps(const store::SegmentMeta& s,
                                    util::TimeRange range) {
  return s.t_min < range.end && range.begin <= s.t_max;
}

[[nodiscard]] std::vector<telemetry::MetricId> channel_ids(
    const std::vector<machine::NodeId>& nodes, int channel) {
  std::vector<telemetry::MetricId> ids;
  ids.reserve(nodes.size());
  for (const machine::NodeId n : nodes) {
    ids.push_back(telemetry::metric_id(n, channel));
  }
  return ids;
}

}  // namespace

struct Coordinator::Link {
  mutable std::mutex mu;
  Endpoint endpoint;
  std::unique_ptr<server::Client> client;
  /// Counters of clients this link already wore out (set_endpoint
  /// replaces the Client but history must not reset).
  server::ClientStats retired;
  ShardStats stats;
  bool directory_valid = false;
  wire::DirectoryWire directory;
};

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? *options_.clock
                                       : util::Clock::steady()) {
  EXA_CHECK(!options_.shards.empty(), "coordinator needs at least one shard");
  links_.reserve(options_.shards.size());
  for (const Endpoint& endpoint : options_.shards) {
    auto link = std::make_unique<Link>();
    link->endpoint = endpoint;
    link->client = std::make_unique<server::Client>(
        client_options(endpoint, options_));
    link->stats.endpoint =
        endpoint.host + ":" + std::to_string(endpoint.port);
    links_.push_back(std::move(link));
  }
}

Coordinator::~Coordinator() = default;

wire::Response Coordinator::call_shard(Link& link, wire::Request request,
                                       std::int64_t deadline_us) {
  // The scatter leg inherits whatever is left of the parent's absolute
  // deadline; with no parent deadline the sub-request keeps the parent's
  // own relative one (usually 0 = client timeout only).
  if (deadline_us != 0) {
    const std::int64_t left_ms = (deadline_us - clock_.now_us()) / 1000;
    request.deadline_ms = static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(left_ms, 1, 0xffffffffLL));
  }
  // Scan legs stream back chunked (unless the caller already chose a
  // size): results are identical byte-for-byte, the shard just never
  // materializes the leg. Old shards trigger the Client's downgrade.
  if (request.method == wire::Method::kScan &&
      options_.leg_chunk_bytes != 0 && request.chunk_bytes == 0) {
    request.chunk_bytes = options_.leg_chunk_bytes;
  }
  ++link.stats.calls;
  const std::int64_t t0 = clock_.now_us();
  wire::Response resp;
  try {
    resp = link.client->call(request);
  } catch (const net::NetError&) {
    ++link.stats.transport_errors;
    link.stats.up = false;
    throw;
  }
  const auto lat = static_cast<std::uint64_t>(clock_.now_us() - t0);
  link.stats.latency_us_total += lat;
  link.stats.latency_us_max = std::max(link.stats.latency_us_max, lat);
  link.stats.up = true;
  switch (resp.status) {
    case wire::Status::kOk: ++link.stats.ok; break;
    case wire::Status::kResourceExhausted: ++link.stats.shed; break;
    case wire::Status::kDeadlineExceeded:
      ++link.stats.deadline_exceeded;
      break;
    default: ++link.stats.other_errors; break;
  }
  return resp;
}

void Coordinator::ensure_directory(Link& link, std::int64_t deadline_us) {
  if (link.directory_valid) return;
  wire::Request req;
  req.method = wire::Method::kDirectory;
  try {
    wire::Response resp = call_shard(link, req, deadline_us);
    if (resp.status == wire::Status::kOk) {
      link.directory = std::move(resp.directory);
      link.directory_valid = true;
    }
  } catch (const net::NetError&) {
    // Shard unreachable: plan without it (the query leg will charge the
    // loss); a stale directory from before the outage stays usable.
  }
}

std::uint64_t Coordinator::lost_cost(const Link& link,
                                     util::TimeRange range) const {
  if (!link.directory_valid) return 1;  // unknown holdings: at least one
  std::uint64_t overlapping = 0;
  for (const store::SegmentMeta& s : link.directory.segments) {
    if (segment_overlaps(s, range)) ++overlapping;
  }
  return std::max<std::uint64_t>(overlapping, 1);
}

bool Coordinator::may_hold(const Link& link, util::TimeRange range) const {
  if (!link.directory_valid) return true;
  if (link.directory.buffered_events > 0) return true;
  for (const store::SegmentMeta& s : link.directory.segments) {
    if (segment_overlaps(s, range)) return true;
  }
  return false;
}

std::vector<wire::Response> Coordinator::scatter(const wire::Request& sub,
                                                 util::TimeRange range,
                                                 std::int64_t deadline_us,
                                                 store::QueryStats* stats) {
  const auto outcomes = net::fan_out(
      links_.size(),
      [&](std::size_t i) -> std::optional<wire::Response> {
        Link& link = *links_[i];
        std::lock_guard lk(link.mu);
        ensure_directory(link, deadline_us);
        if (options_.prune && !may_hold(link, range)) return std::nullopt;
        return call_shard(link, sub, deadline_us);
      });

  std::vector<wire::Response> oks;
  oks.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    Link& link = *links_[i];
    if (outcomes[i].ok && !outcomes[i].value.has_value()) {
      continue;  // pruned: provably holds nothing in range
    }
    if (outcomes[i].ok && outcomes[i].value->status == wire::Status::kOk) {
      oks.push_back(std::move(*outcomes[i].value));
      if (stats != nullptr) stats->merge(oks.back().stats);
      continue;
    }
    // Transport failure or an unhealthy status (shed / expired /
    // draining): this shard's contribution is lost, not wrong — charge
    // its directory overlap and let the merge carry on without it.
    if (stats != nullptr) {
      std::lock_guard lk(link.mu);
      stats->lost_segments += lost_cost(link, range);
    }
  }
  return oks;
}

wire::Response Coordinator::execute(const wire::Request& request,
                                    const server::CancelToken& cancel,
                                    std::int64_t deadline_us,
                                    const server::QueryService::Emit& emit) {
  wire::Response resp;
  resp.method = request.method;
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
    resp.status = wire::Status::kCancelled;
    resp.message = "client disconnected";
    return resp;
  }
  if (deadline_us != 0 && clock_.now_us() > deadline_us) {
    resp.status = wire::Status::kDeadlineExceeded;
    resp.message = "deadline expired before scatter";
    return resp;
  }
  std::string why;
  switch (request.method) {
    case wire::Method::kPing:
      // Coordinator liveness; shard health is kServerStats' business.
      break;
    case wire::Method::kWindowSum: {
      if (!server::grid_ok(request.range, request.window, &why)) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = std::move(why);
        break;
      }
      const auto oks =
          scatter(request, request.range, deadline_us, &resp.stats);
      // Start from the zero grid a single empty store would answer, so a
      // fully pruned (or fully lost) scatter still has the right shape.
      const auto n_windows = static_cast<std::size_t>(
          (request.range.duration() + request.window - 1) / request.window);
      resp.window_sum.start = request.range.begin;
      resp.window_sum.window = request.window;
      resp.window_sum.sum.assign(n_windows, 0.0);
      resp.window_sum.count.assign(n_windows, 0);
      for (const wire::Response& ok : oks) {
        merge_window_sum(resp.window_sum, ok.window_sum);
      }
      break;
    }
    case wire::Method::kScan: {
      if (request.metrics.empty() || request.metrics.size() > kMaxScanIds) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "scan wants 1..4096 metric ids";
        break;
      }
      if (request.range.begin > request.range.end) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "range begin > end";
        break;
      }
      const auto oks =
          scatter(request, request.range, deadline_us, &resp.stats);
      std::vector<const std::vector<store::MetricRun>*> parts;
      parts.reserve(oks.size());
      for (const wire::Response& ok : oks) parts.push_back(&ok.runs);
      resp.runs = merge_runs(request.metrics, parts);
      break;
    }
    case wire::Method::kClusterSum: {
      if (request.nodes.empty()) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "cluster_sum wants nodes";
        break;
      }
      if (request.nodes.size() > kMaxScanIds) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "too many nodes for a clustered scatter";
        break;
      }
      if (!server::grid_ok(request.range, request.window, &why)) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = std::move(why);
        break;
      }
      // The scan ids carry the requested channel, exactly as the
      // store-backed executor hands request.channel to store::cluster_sum
      // — a GPU-temperature roll-up must never come back as input power.
      const std::vector<telemetry::MetricId> ids =
          channel_ids(request.nodes, request.channel);
      wire::Request sub;
      sub.method = wire::Method::kScan;
      sub.deadline_ms = request.deadline_ms;
      // Scatter legs inherit the caller's QoS identity: a batch tenant's
      // fan-out must compete as that tenant on every shard, not as an
      // anonymous normal-class coordinator.
      sub.qos_class = request.qos_class;
      sub.tenant = request.tenant;
      sub.metrics = ids;
      sub.range = request.range;
      const auto oks = scatter(sub, request.range, deadline_us, &resp.stats);
      std::vector<const std::vector<store::MetricRun>*> parts;
      parts.reserve(oks.size());
      for (const wire::Response& ok : oks) parts.push_back(&ok.runs);
      const std::vector<store::MetricRun> runs = merge_runs(ids, parts);
      // The raw samples travel; coarsening and the node-order reduction
      // happen here, through the same store::reduce_cluster_sum the
      // unsharded roll-up runs — shard grouping cannot perturb a digit.
      std::vector<ts::StatSeries> per_node;
      per_node.reserve(runs.size());
      for (const store::MetricRun& run : runs) {
        per_node.push_back(
            ts::coarsen(run.samples, request.window, request.range));
      }
      resp.series = store::reduce_cluster_sum(per_node, request.range,
                                              request.window, &resp.counts);
      break;
    }
    case wire::Method::kPueRollup: {
      if (request.nodes.empty()) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "pue_rollup wants nodes";
        break;
      }
      if (request.nodes.size() > kMaxScanIds) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "too many nodes for a clustered scatter";
        break;
      }
      if (request.range.begin > request.range.end) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = "range begin > end";
        break;
      }
      // Clamp to the cluster hull exactly as a single store clamps to
      // its own bounds — there is nothing to replay outside the data.
      const util::TimeRange range = request.range.clamp(bounds());
      const util::TimeSec window = request.window > 0 ? request.window : 10;
      if (!server::grid_ok(range, window, &why)) {
        resp.status = wire::Status::kInvalidArgument;
        resp.message = std::move(why);
        break;
      }
      // The PUE replay always rolls up node input power (that is what
      // replay_rollup reads on the unsharded path), so the channel is
      // fixed here rather than taken from the request.
      const std::vector<telemetry::MetricId> ids = channel_ids(
          request.nodes,
          telemetry::channel_of(telemetry::MetricKind::kInputPower, 0));
      wire::Request sub;
      sub.method = wire::Method::kScan;
      sub.deadline_ms = request.deadline_ms;
      sub.qos_class = request.qos_class;  // legs inherit QoS identity
      sub.tenant = request.tenant;
      sub.metrics = ids;
      sub.range = range;
      const auto oks = scatter(sub, range, deadline_us, &resp.stats);
      std::vector<const std::vector<store::MetricRun>*> parts;
      parts.reserve(oks.size());
      for (const wire::Response& ok : oks) parts.push_back(&ok.runs);
      const std::vector<store::MetricRun> runs = merge_runs(ids, parts);
      stream::EngineOptions opts;
      opts.range = range;
      opts.window = window;
      opts.rollup.edge_node_count =
          static_cast<double>(request.nodes.size());
      stream::ReplaySinks sinks;
      sinks.cancelled = [&] {
        return (cancel != nullptr &&
                cancel->load(std::memory_order_relaxed)) ||
               (deadline_us != 0 && clock_.now_us() > deadline_us);
      };
      stream::RollupReplay replay =
          stream::replay_rollup_runs(runs, opts, sinks);
      if (replay.cancelled) {
        const bool peer_gone =
            cancel != nullptr && cancel->load(std::memory_order_relaxed);
        resp.status = peer_gone ? wire::Status::kCancelled
                                : wire::Status::kDeadlineExceeded;
        resp.message = peer_gone ? "client disconnected during replay"
                                 : "deadline expired during replay";
        break;
      }
      resp.series = std::move(replay.power);
      resp.pue = std::move(replay.pue);
      break;
    }
    case wire::Method::kDirectory: {
      wire::Request sub;
      sub.method = wire::Method::kDirectory;
      sub.deadline_ms = request.deadline_ms;
      sub.qos_class = request.qos_class;  // legs inherit QoS identity
      sub.tenant = request.tenant;
      const util::TimeRange everything{
          std::numeric_limits<util::TimeSec>::min(),
          std::numeric_limits<util::TimeSec>::max()};
      const auto oks = scatter(sub, everything, deadline_us, &resp.stats);
      bool any = false;
      for (const wire::Response& ok : oks) {
        resp.directory.total_events += ok.directory.total_events;
        resp.directory.buffered_events += ok.directory.buffered_events;
        if (ok.directory.total_events > 0) {
          if (!any) {
            resp.directory.bounds = ok.directory.bounds;
            any = true;
          } else {
            resp.directory.bounds.begin = std::min(
                resp.directory.bounds.begin, ok.directory.bounds.begin);
            resp.directory.bounds.end = std::max(resp.directory.bounds.end,
                                                 ok.directory.bounds.end);
          }
        }
        resp.directory.segments.insert(resp.directory.segments.end(),
                                       ok.directory.segments.begin(),
                                       ok.directory.segments.end());
      }
      break;
    }
    case wire::Method::kSubscribe:
      resp.status = wire::Status::kUnimplemented;
      resp.message = "subscribe is not clustered";
      break;
    case wire::Method::kServerStats:
      // Answered by the fronting QueryService (its own counters plus
      // augment_stats); a bare Coordinator has no admission queue.
      break;
    case wire::Method::kScenario:
    case wire::Method::kScenarioSweep: {
      stream::EngineOptions opts;
      if (!server::scenario_request_ok(request, bounds(), &opts, &resp)) {
        break;
      }
      // Gather the input-power runs through the same shard scatter the
      // clustered pue_rollup uses, then run the identical scenario body
      // the store executor runs — sharding cannot perturb a digit.
      const std::vector<telemetry::MetricId> ids = channel_ids(
          request.nodes,
          telemetry::channel_of(telemetry::MetricKind::kInputPower, 0));
      wire::Request sub;
      sub.method = wire::Method::kScan;
      sub.deadline_ms = request.deadline_ms;
      sub.qos_class = request.qos_class;  // legs inherit QoS identity
      sub.tenant = request.tenant;
      sub.metrics = ids;
      sub.range = opts.range;
      const auto oks = scatter(sub, opts.range, deadline_us, &resp.stats);
      std::vector<const std::vector<store::MetricRun>*> parts;
      parts.reserve(oks.size());
      for (const wire::Response& ok : oks) parts.push_back(&ok.runs);
      const std::vector<store::MetricRun> runs = merge_runs(ids, parts);
      server::run_scenario_request(request, runs, opts, cancel, deadline_us,
                                   clock_, emit, &resp);
      break;
    }
  }
  return resp;
}

server::QueryService::Executor Coordinator::executor() {
  return [this](const wire::Request& request,
                const server::CancelToken& cancel,
                std::int64_t deadline_us,
                const server::QueryService::Emit& emit,
                server::ChunkWriter* /*stream*/) {
    // The coordinator's merged responses materialize (merge needs every
    // leg); the fronting Server chunks them at the wire when the client
    // negotiated it, so `stream` needs no handling here.
    return execute(request, cancel, deadline_us, emit);
  };
}

void Coordinator::augment_stats(wire::ServerStatsWire& server) const {
  server.shards_total = links_.size();
  for (const auto& link : links_) {
    std::lock_guard lk(link->mu);
    const server::ClientStats& live = link->client->stats();
    server.reconnects_attempted +=
        link->retired.reconnect_attempts + live.reconnect_attempts;
    server.reconnects_succeeded +=
        link->retired.reconnect_successes + live.reconnect_successes;
    if (!link->stats.up) ++server.shards_down;
  }
}

void Coordinator::refresh_directories() {
  (void)net::fan_out(links_.size(), [&](std::size_t i) {
    Link& link = *links_[i];
    std::lock_guard lk(link.mu);
    link.directory_valid = false;
    ensure_directory(link, 0);
    return 0;
  });
}

void Coordinator::set_endpoint(std::size_t shard, Endpoint endpoint) {
  EXA_CHECK(shard < links_.size(), "shard index out of range");
  Link& link = *links_[shard];
  std::lock_guard lk(link.mu);
  const server::ClientStats& old = link.client->stats();
  link.retired.connects += old.connects;
  link.retired.reconnect_attempts += old.reconnect_attempts;
  link.retired.reconnect_successes += old.reconnect_successes;
  link.retired.calls += old.calls;
  link.retired.transport_errors += old.transport_errors;
  link.endpoint = endpoint;
  link.client =
      std::make_unique<server::Client>(client_options(endpoint, options_));
  link.stats.endpoint = endpoint.host + ":" + std::to_string(endpoint.port);
  link.stats.up = true;
  link.directory_valid = false;
  link.directory = {};
}

std::vector<ShardStats> Coordinator::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(links_.size());
  for (const auto& link : links_) {
    std::lock_guard lk(link->mu);
    ShardStats s = link->stats;
    const server::ClientStats& live = link->client->stats();
    s.reconnect_attempts =
        link->retired.reconnect_attempts + live.reconnect_attempts;
    s.reconnect_successes =
        link->retired.reconnect_successes + live.reconnect_successes;
    out.push_back(std::move(s));
  }
  return out;
}

util::TimeRange Coordinator::bounds() {
  util::TimeRange hull{0, 0};
  bool any = false;
  (void)net::fan_out(links_.size(), [&](std::size_t i) {
    Link& link = *links_[i];
    std::lock_guard lk(link.mu);
    ensure_directory(link, 0);
    return 0;
  });
  for (const auto& link : links_) {
    std::lock_guard lk(link->mu);
    if (!link->directory_valid || link->directory.total_events == 0) {
      continue;
    }
    if (!any) {
      hull = link->directory.bounds;
      any = true;
    } else {
      hull.begin = std::min(hull.begin, link->directory.bounds.begin);
      hull.end = std::max(hull.end, link->directory.bounds.end);
    }
  }
  return hull;
}

}  // namespace exawatt::cluster
