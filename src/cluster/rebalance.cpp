#include "cluster/rebalance.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "store/manifest.hpp"
#include "store/segment.hpp"
#include "util/crc32.hpp"

namespace exawatt::cluster {

namespace {

constexpr const char* kMagicLine = "exawatt-migration 1";

/// Lines whose value may contain spaces (filesystem roots) carry the
/// value as the whole rest of the line after "<tag> ".
[[nodiscard]] std::string rest_of(const std::string& line,
                                  const std::string& tag) {
  const std::string prefix = tag + " ";
  if (line.size() <= prefix.size() || line.compare(0, prefix.size(), prefix) != 0) {
    throw store::StoreError("migration journal: malformed line: " + line);
  }
  return line.substr(prefix.size());
}

void finish_migration(const MigrationJournal& j, util::Vfs& fs) {
  // Roll the committed move forward. Every step checks before acting so
  // a crash anywhere inside replays cleanly; the ORDER is the safety
  // argument: the source stops owning the segment (file gone, manifest
  // saved) strictly before the destination starts (rename to `.seg`
  // visibility, manifest saved) — at no instant do two manifests list
  // the same events, and the flipped journal guarantees at least one
  // will once this function has run.
  const std::string src_file = j.from_root + "/" + j.meta.file;
  if (fs.exists(src_file)) fs.remove(src_file);

  store::Manifest src;
  if (store::Manifest::load(j.from_root, src, &fs)) {
    bool changed = false;
    for (auto it = src.segments.begin(); it != src.segments.end(); ++it) {
      if (it->file == j.meta.file) {
        src.segments.erase(it);
        changed = true;
        break;
      }
    }
    if (changed) src.save(j.from_root, &fs);
  }

  const std::string incoming = j.to_root + "/" + j.to_file + ".incoming";
  const std::string final_path = j.to_root + "/" + j.to_file;
  if (fs.exists(incoming)) fs.rename(incoming, final_path);

  store::Manifest dst;
  (void)store::Manifest::load(j.to_root, dst, &fs);
  bool listed = false;
  for (const auto& s : dst.segments) {
    if (s.file == j.to_file) {
      listed = true;
      break;
    }
  }
  if (!listed) {
    store::SegmentMeta moved = j.meta;
    moved.file = j.to_file;
    dst.segments.push_back(std::move(moved));
    dst.save(j.to_root, &fs);
  }

  fs.remove(journal_path(j.to_root));
}

void rollback_migration(const MigrationJournal& j, util::Vfs& fs) {
  // The move never committed: discard the (possibly partial) copy and
  // the journal. The source was never touched, so nothing is lost.
  const std::string incoming = j.to_root + "/" + j.to_file + ".incoming";
  if (fs.exists(incoming)) fs.remove(incoming);
  if (fs.exists(journal_path(j.to_root))) {
    fs.remove(journal_path(j.to_root));
  }
}

}  // namespace

std::string MigrationJournal::encode() const {
  std::ostringstream body;
  body << kMagicLine << '\n';
  body << "from " << from_root << '\n';
  body << "to " << to_root << '\n';
  body << "to_file " << to_file << '\n';
  body << "meta " << meta.file << ' ' << meta.day << ' ' << meta.events
       << ' ' << meta.bytes << ' ' << meta.t_min << ' ' << meta.t_max
       << '\n';
  body << "state " << (state == State::kFlipped ? "flipped" : "copying")
       << '\n';
  const std::string payload = body.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08" PRIx32 "\n",
                util::crc32(payload));
  return payload + crc_line;
}

MigrationJournal MigrationJournal::decode(const std::string& text) {
  const std::size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos || crc_pos == 0 ||
      text[crc_pos - 1] != '\n') {
    throw store::StoreError("migration journal: missing crc line");
  }
  const std::string payload = text.substr(0, crc_pos);
  std::uint32_t want = 0;
  if (std::sscanf(text.c_str() + crc_pos, "crc %" SCNx32, &want) != 1 ||
      util::crc32(payload) != want) {
    throw store::StoreError("migration journal: checksum mismatch");
  }
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || line != kMagicLine) {
    throw store::StoreError("migration journal: bad magic line");
  }
  MigrationJournal j;
  if (!std::getline(in, line)) {
    throw store::StoreError("migration journal: truncated");
  }
  j.from_root = rest_of(line, "from");
  if (!std::getline(in, line)) {
    throw store::StoreError("migration journal: truncated");
  }
  j.to_root = rest_of(line, "to");
  if (!std::getline(in, line)) {
    throw store::StoreError("migration journal: truncated");
  }
  j.to_file = rest_of(line, "to_file");
  if (!std::getline(in, line)) {
    throw store::StoreError("migration journal: truncated");
  }
  {
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag >> j.meta.file >> j.meta.day >> j.meta.events >>
          j.meta.bytes >> j.meta.t_min >> j.meta.t_max) ||
        tag != "meta") {
      throw store::StoreError("migration journal: malformed meta: " + line);
    }
  }
  if (!std::getline(in, line)) {
    throw store::StoreError("migration journal: truncated");
  }
  const std::string state = rest_of(line, "state");
  if (state == "copying") {
    j.state = State::kCopying;
  } else if (state == "flipped") {
    j.state = State::kFlipped;
  } else {
    throw store::StoreError("migration journal: unknown state: " + state);
  }
  return j;
}

void MigrationJournal::save(util::Vfs& fs) const {
  const std::string path = journal_path(to_root);
  const std::string tmp = path + ".tmp";
  auto out = fs.create(tmp);
  out->write_text(encode());
  out->close();
  fs.rename(tmp, path);
}

RebalanceReport rebalance_segment(const std::string& from_root,
                                  const std::string& to_root,
                                  const std::string& segment_file,
                                  util::Vfs* vfs) {
  util::Vfs& fs = vfs != nullptr ? *vfs : util::Vfs::real();
  if (fs.exists(journal_path(from_root)) ||
      fs.exists(journal_path(to_root))) {
    throw store::StoreError(
        "rebalance: unfinished migration journal present — run "
        "recover_migrations first");
  }
  store::Manifest src;
  if (!store::Manifest::load(from_root, src, &fs)) {
    throw store::StoreError("rebalance: source has no manifest: " +
                            from_root);
  }
  const store::SegmentMeta* entry = nullptr;
  for (const auto& s : src.segments) {
    if (s.file == segment_file) {
      entry = &s;
      break;
    }
  }
  if (entry == nullptr) {
    throw store::StoreError("rebalance: segment not in source manifest: " +
                            segment_file);
  }

  fs.mkdirs(to_root);
  store::Manifest dst;
  (void)store::Manifest::load(to_root, dst, &fs);
  const auto taken = [&](const std::string& name) {
    if (fs.exists(to_root + "/" + name) ||
        fs.exists(to_root + "/" + name + ".incoming")) {
      return true;
    }
    for (const auto& s : dst.segments) {
      if (s.file == name) return true;
    }
    return false;
  };
  // Collisions are resolved by name, not by renumbering: a non-"segNNN"
  // prefix never perturbs the destination store's next_seq counter, and
  // orphan adoption cares only about the `.seg` suffix.
  std::string to_file = segment_file;
  while (taken(to_file)) to_file = "m" + to_file;

  MigrationJournal j;
  j.from_root = from_root;
  j.to_root = to_root;
  j.to_file = to_file;
  j.meta = *entry;

  const std::string incoming = to_root + "/" + to_file + ".incoming";
  bool journaled = false;
  try {
    j.save(fs);
    journaled = true;
    const std::vector<std::uint8_t> bytes =
        fs.read_all(from_root + "/" + segment_file);
    auto out = fs.create(incoming);
    out->write(bytes);
    out->close();
    // Full validation pass before the commit: the copy must be a
    // readable segment carrying exactly the events the manifest claims,
    // or the move never happens.
    store::SegmentReader reader(incoming, &fs);
    if (reader.events() != j.meta.events) {
      throw store::StoreError("rebalance: copied segment event count " +
                              std::to_string(reader.events()) +
                              " != manifest " +
                              std::to_string(j.meta.events));
    }
    j.state = MigrationJournal::State::kFlipped;
    j.save(fs);  // THE commit point — the shard-map flip of this segment
  } catch (...) {
    // Under a scripted crash every later write fails too; rollback here
    // is best effort and recover_migrations replays it from the journal.
    try {
      if (fs.exists(incoming)) fs.remove(incoming);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    try {
      if (journaled && fs.exists(journal_path(to_root))) {
        fs.remove(journal_path(to_root));
      }
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    throw;
  }
  finish_migration(j, fs);

  RebalanceReport report;
  report.from_file = segment_file;
  report.to_file = to_file;
  report.events = j.meta.events;
  report.bytes = j.meta.bytes;
  return report;
}

std::size_t recover_migrations(const std::vector<std::string>& roots,
                               util::Vfs* vfs) {
  util::Vfs& fs = vfs != nullptr ? *vfs : util::Vfs::real();
  std::size_t resolved = 0;
  for (const std::string& root : roots) {
    // A torn journal write can only leave the tmp file behind (the
    // rename is atomic); sweep it.
    const std::string tmp = journal_path(root) + ".tmp";
    if (fs.exists(tmp)) fs.remove(tmp);
    if (!fs.exists(journal_path(root))) continue;
    const std::vector<std::uint8_t> bytes = fs.read_all(journal_path(root));
    const MigrationJournal j =
        MigrationJournal::decode(std::string(bytes.begin(), bytes.end()));
    if (j.state == MigrationJournal::State::kFlipped) {
      finish_migration(j, fs);
    } else {
      rollback_migration(j, fs);
    }
    ++resolved;
  }
  return resolved;
}

}  // namespace exawatt::cluster
