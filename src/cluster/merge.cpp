#include "cluster/merge.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"

namespace exawatt::cluster {

void merge_window_sum(store::WindowSum& into, const store::WindowSum& from) {
  if (into.sum.empty()) {
    into = from;
    return;
  }
  if (from.sum.empty()) return;
  EXA_CHECK(into.start == from.start && into.window == from.window &&
                into.size() == from.size(),
            "window_sum grids disagree — shards answered different grids");
  for (std::size_t w = 0; w < into.size(); ++w) {
    into.sum[w] += from.sum[w];
    into.count[w] += from.count[w];
  }
}

std::vector<store::MetricRun> merge_runs(
    std::span<const telemetry::MetricId> ids,
    std::span<const std::vector<store::MetricRun>* const> parts) {
  std::unordered_map<telemetry::MetricId, std::size_t> index;
  index.reserve(ids.size());
  std::vector<store::MetricRun> out(ids.size());
  // Duplicate requested ids merge once into the first slot, then the
  // finished run is copied to the rest — Store::query_many answers every
  // duplicate with the full run, and parity says we must too.
  std::vector<std::pair<std::size_t, std::size_t>> duplicates;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    out[i].id = ids[i];
    const auto [it, fresh] = index.emplace(ids[i], i);
    if (!fresh) duplicates.emplace_back(i, it->second);
  }
  std::unordered_set<telemetry::MetricId> seen;
  for (const std::vector<store::MetricRun>* part : parts) {
    if (part == nullptr) continue;
    seen.clear();
    for (const store::MetricRun& run : *part) {
      const auto it = index.find(run.id);
      if (it == index.end()) continue;  // shard answered an id we dropped
      // A duplicate-id sub-query makes the shard answer the same full
      // run twice; folding both copies in would double-count.
      if (!seen.insert(run.id).second) continue;
      auto& samples = out[it->second].samples;
      samples.insert(samples.end(), run.samples.begin(), run.samples.end());
    }
  }
  for (store::MetricRun& run : out) {
    std::sort(run.samples.begin(), run.samples.end(), store::sample_less);
  }
  for (const auto& [slot, canonical] : duplicates) {
    out[slot].samples = out[canonical].samples;
  }
  return out;
}

}  // namespace exawatt::cluster
