#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/format.hpp"
#include "util/vfs.hpp"

namespace exawatt::cluster {

/// The write-ahead record of one segment migration, persisted in the
/// DESTINATION shard root as `MIGRATION` (checksummed text, replaced
/// only by atomic rename — the manifest idiom). Its `state` flip from
/// kCopying to kFlipped is the commit point of the move: recovery rolls
/// a kCopying journal back (destination copy discarded, source intact)
/// and a kFlipped journal forward (source retired, destination adopted),
/// so a kill at ANY write leaves the committed events in exactly one
/// shard's manifest — never zero, never two.
struct MigrationJournal {
  enum class State { kCopying = 0, kFlipped = 1 };

  std::string from_root;
  std::string to_root;
  std::string to_file;  ///< final name in the destination root
  store::SegmentMeta meta;  ///< the source manifest entry being moved
  State state = State::kCopying;

  [[nodiscard]] std::string encode() const;
  /// Throws store::StoreError on bad magic/CRC/malformed lines.
  [[nodiscard]] static MigrationJournal decode(const std::string& text);
  void save(util::Vfs& fs) const;  ///< atomic, at journal_path(to_root)
};

[[nodiscard]] inline std::string journal_path(const std::string& root) {
  return root + "/MIGRATION";
}

/// What one rebalance step did.
struct RebalanceReport {
  std::string from_file;  ///< source segment file name
  std::string to_file;    ///< (possibly renamed) destination file name
  std::uint64_t events = 0;
  std::uint64_t bytes = 0;
};

/// Move one sealed segment `segment_file` from shard root `from_root` to
/// shard root `to_root`. Both stores must be CLOSED (no Store has the
/// roots open) — this is offline rebalancing, the cluster analogue of
/// the store's own crash-safe seal. The copy lands as `<name>.incoming`
/// (invisible to Store recovery, which only adopts `*.seg`), is
/// validated by a full SegmentReader pass, and only then does the
/// journal flip commit the move; a name collision in the destination is
/// resolved by prefixing `m` until free. Throws store::StoreError /
/// util::VfsError on failure — after which `recover_migrations` (or the
/// internal rollback) restores the single-owner invariant.
RebalanceReport rebalance_segment(const std::string& from_root,
                                  const std::string& to_root,
                                  const std::string& segment_file,
                                  util::Vfs* vfs = nullptr);

/// Crash recovery for interrupted migrations: scan every root for a
/// `MIGRATION` journal and roll it back or forward. MUST run before the
/// shard stores are opened — Store recovery does not understand
/// journals, and a rolled-forward destination file must be in its
/// manifest before the store looks. Returns the number of journals
/// resolved. Idempotent: every finish step checks before acting.
std::size_t recover_migrations(const std::vector<std::string>& roots,
                               util::Vfs* vfs = nullptr);

}  // namespace exawatt::cluster
