#pragma once

#include <span>
#include <vector>

#include "store/store.hpp"
#include "telemetry/metric.hpp"

namespace exawatt::cluster {

/// Elementwise-add `from` into `into`. Window sums are exact
/// integer-valued doubles (the store's WindowSum contract), so addition
/// order cannot perturb the result: merging any shard partition of the
/// same events bit-matches the unsharded grid. `into` and `from` must
/// share (start, window, size); an empty `into` adopts `from`'s grid.
void merge_window_sum(store::WindowSum& into, const store::WindowSum& from);

/// Merge per-shard scan results back into the single-store shape:
/// one run per requested id, in `ids` order (duplicate ids each carry
/// the full run, as `Store::query_many` answers them), samples
/// re-sorted by `store::sample_less`. Because that order is a pure
/// function of the sample multiset, the merged runs are the identical
/// vectors `Store::query_many` would have produced on the union of the
/// shards.
[[nodiscard]] std::vector<store::MetricRun> merge_runs(
    std::span<const telemetry::MetricId> ids,
    std::span<const std::vector<store::MetricRun>* const> parts);

}  // namespace exawatt::cluster
